"""The DAC20 baseline [5]: loop breaking + manual features + boosted trees.

Cheng, Jiang & Ou (DAC 2020) estimate wire timing with an XGBoost model
over manually selected RC-structure features.  Tree nets are handled
natively; non-tree nets are first reduced to a spanning tree by loop
breaking, which discards loop structure — the induced error the GNNTrans
paper measures in Tables III-V.

The reproduction mirrors that pipeline: per-path features are computed on
the *broken* tree (Elmore, downstream capacitance, path resistance, ...)
plus the driver/receiver context, and two from-scratch gradient-boosted
tree ensembles predict slew and delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.estimator import EvalMetrics
from ..design.sta import WireTimingModel
from ..features.path_features import NetContext
from ..features.pipeline import (ADJACENCY_RESISTANCE_SCALE, FeatureScaler,
                                 NetSample, build_net_sample)
from ..nn.metrics import max_abs_error, r2_score
from ..rcnet.graph import RCNet
from ..robustness.errors import ModelError
from .gbdt import GradientBoostedTrees
from .loop_breaking import (break_loops, tree_downstream_caps,
                            tree_elmore_delays, tree_path_to_source)

# Raw path-feature columns (see repro.features.path_features).
_COL_INPUT_SLEW = 2
_COL_DRIVE_STRENGTH = 3
_COL_DRIVE_FUNC = 4
_COL_LOAD_STRENGTH = 5
_COL_LOAD_FUNC = 6
_COL_LOAD_CEFF = 7

DAC20_FEATURE_NAMES = (
    "broken_elmore", "broken_downstream_cap", "tree_path_resistance",
    "tree_path_length", "total_cap", "kept_resistance", "removed_edges",
    "removed_resistance", "num_nodes", "input_slew",
    "drive_strength_driver", "function_driver", "drive_strength_load",
    "function_load", "ceff_load", "fanout",
)

# ohm * fF = 1e-15 s = 1e-3 ps.
_OHM_FF_TO_PS = 1e-3


class DAC20Estimator:
    """Wire slew/delay estimator in the style of DAC20 [5].

    Parameters
    ----------
    feature_scaler:
        The dataset's fitted scaler, used to *invert* standardization so
        the manual features are computed from physical values.  Pass
        ``None`` when samples carry raw (unstandardized) features.
    n_estimators, learning_rate, max_depth:
        Boosting hyper-parameters shared by the slew and delay ensembles.
    """

    def __init__(self, feature_scaler: Optional[FeatureScaler] = None,
                 n_estimators: int = 120, learning_rate: float = 0.08,
                 max_depth: int = 4, seed: int = 0,
                 slew_parameterization: str = "quadrature") -> None:
        if slew_parameterization not in ("absolute", "residual",
                                         "quadrature"):
            raise ValueError(
                f"unknown slew parameterization {slew_parameterization!r}")
        self.feature_scaler = feature_scaler
        self.slew_parameterization = slew_parameterization
        self.slew_model = GradientBoostedTrees(
            n_estimators, learning_rate, max_depth, seed=seed)
        self.delay_model = GradientBoostedTrees(
            n_estimators, learning_rate, max_depth, seed=seed + 1)
        self._fitted = False

    # ------------------------------------------------------------------
    # Feature engineering (the "manual sorting" of RC structures in [5])
    # ------------------------------------------------------------------
    def _raw_views(self, sample: NetSample) -> Tuple[np.ndarray, np.ndarray]:
        """Undo feature standardization; returns (node_features, path_features)."""
        if self.feature_scaler is None:
            return sample.node_features, np.vstack(
                [p.features for p in sample.paths])
        s = self.feature_scaler
        nodes = sample.node_features * s.node_std + s.node_mean
        paths = (np.vstack([p.features for p in sample.paths])
                 * s.path_std + s.path_mean)
        return nodes, paths

    def features_for(self, sample: NetSample) -> np.ndarray:
        """Manual per-path feature matrix on the loop-broken tree."""
        node_feats, path_feats = self._raw_views(sample)
        caps_ff = np.maximum(node_feats[:, 0], 0.0)
        adjacency_ohm = sample.adjacency * ADJACENCY_RESISTANCE_SCALE
        source = sample.paths[0].node_indices[0]
        tree = break_loops(adjacency_ohm, source)
        downstream = tree_downstream_caps(tree, caps_ff)
        elmore_ps = tree_elmore_delays(tree, caps_ff) * _OHM_FF_TO_PS

        rows = np.empty((sample.num_paths, len(DAC20_FEATURE_NAMES)))
        total_cap = float(caps_ff.sum())
        kept_res_kohm = float(tree.parent_resistance.sum()) / 1e3
        for q, path in enumerate(sample.paths):
            tree_path = tree_path_to_source(tree, path.sink)
            path_res = sum(tree.parent_resistance[n] for n in tree_path
                           if tree.parent[n] >= 0) / 1e3
            first_stage = tree_path[-2] if len(tree_path) > 1 else tree_path[-1]
            rows[q] = (
                elmore_ps[path.sink],
                downstream[first_stage],
                path_res,
                len(tree_path),
                total_cap,
                kept_res_kohm,
                tree.removed_edges,
                tree.removed_resistance / 1e3,
                sample.num_nodes,
                path_feats[q, _COL_INPUT_SLEW],
                path_feats[q, _COL_DRIVE_STRENGTH],
                path_feats[q, _COL_DRIVE_FUNC],
                path_feats[q, _COL_LOAD_STRENGTH],
                path_feats[q, _COL_LOAD_FUNC],
                path_feats[q, _COL_LOAD_CEFF],
                sample.num_paths,
            )
        return rows

    def _dataset_matrix(self, samples: Sequence[NetSample]
                        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        features = [self.features_for(s) for s in samples]
        slews = np.array([p.label_slew for s in samples for p in s.paths])
        delays = np.array([p.label_delay for s in samples for p in s.paths])
        if self.slew_parameterization == "residual":
            slews = slews - self._input_slews(samples)
        elif self.slew_parameterization == "quadrature":
            inputs = self._input_slews(samples)
            slews = np.sqrt(np.maximum(slews ** 2 - inputs ** 2, 0.0))
        return (np.vstack(features) if features else np.zeros((0, 0)),
                slews, delays)

    @staticmethod
    def _input_slews(samples: Sequence[NetSample]) -> np.ndarray:
        return np.array(
            [p.input_slew_ps for s in samples for p in s.paths])

    # ------------------------------------------------------------------
    def fit(self, samples: Sequence[NetSample]) -> "DAC20Estimator":
        """Fit the slew and delay boosters on labeled samples."""
        if not samples:
            raise ValueError("fit() requires at least one sample")
        x, slews, delays = self._dataset_matrix(samples)
        self.slew_model.fit(x, slews)
        self.delay_model.fit(x, delays)
        self._fitted = True
        return self

    def predict(self, samples: Sequence[NetSample]
                ) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenated per-path ``(slew_ps, delay_ps)`` predictions."""
        if not self._fitted:
            raise RuntimeError("DAC20Estimator is not fitted")
        if not samples:
            return np.zeros(0), np.zeros(0)
        x = np.vstack([self.features_for(s) for s in samples])
        slews = self.slew_model.predict(x)
        if self.slew_parameterization == "residual":
            slews = slews + self._input_slews(samples)
        elif self.slew_parameterization == "quadrature":
            inputs = self._input_slews(samples)
            slews = np.sqrt(inputs ** 2 + np.maximum(slews, 0.0) ** 2)
        return slews, self.delay_model.predict(x)

    def predict_sample(self, sample: NetSample
                       ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-path predictions for a single net."""
        return self.predict([sample])

    def evaluate(self, samples: Sequence[NetSample]) -> EvalMetrics:
        """R^2 / max-error against golden labels (same metrics as core)."""
        pred_slew, pred_delay = self.predict(samples)
        true_slew = np.array([p.label_slew for s in samples for p in s.paths])
        true_delay = np.array([p.label_delay for s in samples for p in s.paths])
        return EvalMetrics(
            r2_slew=r2_score(true_slew, pred_slew),
            r2_delay=r2_score(true_delay, pred_delay),
            max_err_slew_ps=max_abs_error(true_slew, pred_slew),
            max_err_delay_ps=max_abs_error(true_delay, pred_delay),
            num_paths=len(true_slew),
        )


class DAC20WireModel(WireTimingModel):
    """STA adapter for the DAC20 estimator (the Table V "Prior Work" row).

    Extracts unlabeled features on the fly and predicts per-sink wire
    timing, exactly like :class:`~repro.core.estimator.LearnedWireModel`
    does for GNNTrans.
    """

    def __init__(self, estimator: DAC20Estimator,
                 feature_scaler: FeatureScaler) -> None:
        if not estimator._fitted:
            raise RuntimeError("DAC20WireModel needs a fitted estimator")
        self.estimator = estimator
        self.feature_scaler = feature_scaler

    def wire_timing(self, net: RCNet, input_slew: float,
                    sink_loads: np.ndarray, drive_resistance: float,
                    context: Optional[NetContext] = None
                    ) -> Tuple[np.ndarray, np.ndarray]:
        if context is None:
            raise ModelError(
                "DAC20WireModel needs the cell context; run it through "
                "STAEngine, which provides one",
                net=net.name, stage="dac20")
        sample = build_net_sample(net, context, labeled=False)
        sample = self.feature_scaler.transform([sample])[0]
        slew_ps, delay_ps = self.estimator.predict_sample(sample)
        return delay_ps * 1e-12, slew_ps * 1e-12

    @property
    def name(self) -> str:
        return "DAC20WireModel"
