"""Shared harness for the graph-learning baselines of Tables III/IV.

The paper evaluates GCNII, GraphSage, GAT and a graph transformer the same
way: each generates node representations, "mean pooling modules are used to
generate wire path representations", and MLPs predict slew/delay.  Unlike
GNNTrans they have **no direct path-feature pathway** — that is the
handicap the comparison isolates.

For a fair comparison the baselines do receive the per-net electrical
context (driver output slew, drive strength, driver function) broadcast
onto every node, since those are global inputs any practical deployment
would provide; the engineered *per-path* features (Elmore, D2M, stage
delay, receiver ceff, ...) remain exclusive to GNNTrans per Eq. (4).
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

from ..core.heads import TimingHeads
from ..core.pooling import pool_paths
from ..features.pipeline import NetSample
from ..nn.layers import Module
from ..nn.tensor import Tensor

# Raw path-feature columns that are constant across a net's paths and act
# as global context: input slew, driver strength, driver function.
GLOBAL_FEATURE_COLUMNS = (2, 3, 4)
NUM_GLOBAL_FEATURES = len(GLOBAL_FEATURE_COLUMNS)


def baseline_node_inputs(sample: NetSample) -> np.ndarray:
    """Node features with the per-net global context appended to each row."""
    globals_row = sample.paths[0].features[list(GLOBAL_FEATURE_COLUMNS)]
    broadcast = np.tile(globals_row, (sample.num_nodes, 1))
    return np.hstack([sample.node_features, broadcast])


def binary_adjacency(adjacency: np.ndarray, self_loops: bool = False,
                     row_normalize: bool = True) -> np.ndarray:
    """Connectivity-only adjacency as used by the baseline papers.

    GraphSage/GAT/GCNII all treat edges as binary; optionally with self
    loops and symmetric-free row normalization (mean aggregation).
    """
    binary = (adjacency > 0.0).astype(np.float64)
    if self_loops:
        binary = binary + np.eye(len(binary))
    if row_normalize:
        rows = binary.sum(axis=1, keepdims=True)
        rows[rows == 0.0] = 1.0
        binary = binary / rows
    return binary


def symmetric_normalized_adjacency(adjacency: np.ndarray) -> np.ndarray:
    """``D^{-1/2} (A + I) D^{-1/2}`` — the GCN/GCNII propagation operator."""
    binary = (adjacency > 0.0).astype(np.float64) + np.eye(len(adjacency))
    degree = binary.sum(axis=1)
    inv_sqrt = 1.0 / np.sqrt(degree)
    return binary * inv_sqrt[:, None] * inv_sqrt[None, :]


class GraphBaseline(Module):
    """Backbone + mean ‖ sum ‖ sink path pooling + independent heads.

    ``backbone`` must map ``(x: Tensor (N, d), adjacency: np.ndarray)`` to
    node representations ``(N, hidden)``.  Pooling concatenates the mean,
    the sum and the sink node's representation over the path: the sum term
    restores extensivity (total path resistance grows with stage count)
    and the sink term restores per-path identity, without which no pooled
    baseline can separate two paths of the same net.  The engineered
    per-path features remain GNNTrans-only.
    """

    def __init__(self, backbone: Module, hidden: int,
                 rng: np.random.Generator,
                 head_hidden: Sequence[int] = (64, 32)) -> None:
        super().__init__()
        self.backbone = backbone
        # Baselines predict slew and delay from the pooled representation
        # independently (no Eq. 6 conditioning — that is a GNNTrans design
        # choice being compared against).
        self.heads = TimingHeads(3 * hidden, head_hidden, rng,
                                 condition_delay_on_slew=False)

    def forward(self, sample: NetSample) -> Tuple[Tensor, Tensor]:
        x = Tensor(baseline_node_inputs(sample))
        nodes = self.backbone(x, sample.adjacency)
        representations = pool_paths(nodes, sample,
                                     include_path_features=False,
                                     extensive=True)
        return self.heads(representations)
