"""Graph-transformer baseline (Dwivedi & Bresson, 2020) — Table III col. 5.

A pure attention stack over the net's nodes: an input projection followed
by ``L`` multi-head self-attention layers (the same attention block the
GNNTrans transformer module uses), with Laplacian-eigenvector positional
encodings added to the input as in the original paper so the model receives
*some* structural signal.  What it lacks — and what Tables III/IV measure —
is the local resistance-weighted aggregation GNNTrans performs before
attention: structure only enters through the positional encoding.
"""

from __future__ import annotations

import numpy as np

from ..core.transformer_layer import MultiHeadSelfAttention
from ..nn.layers import Linear, Module
from ..nn.tensor import Tensor, concat
from ..robustness.guards import guarded_eigh


def laplacian_positional_encoding(adjacency: np.ndarray, dim: int) -> np.ndarray:
    """First ``dim`` non-trivial Laplacian eigenvectors of the connectivity.

    Uses the symmetric normalized Laplacian of the binary connectivity;
    columns are zero-padded when the graph has fewer nodes than ``dim + 1``.
    """
    n = len(adjacency)
    binary = (adjacency > 0.0).astype(np.float64)
    degree = binary.sum(axis=1)
    inv_sqrt = np.where(degree > 0.0, 1.0 / np.sqrt(np.maximum(degree, 1e-12)), 0.0)
    laplacian = np.eye(n) - binary * inv_sqrt[:, None] * inv_sqrt[None, :]
    _, vectors = guarded_eigh(laplacian, what="normalized Laplacian",
                              stage="positional-encoding")
    # Skip the trivial (constant) eigenvector; take the next `dim`.
    encoding = np.zeros((n, dim))
    available = min(dim, max(0, n - 1))
    encoding[:, :available] = vectors[:, 1:1 + available]
    return encoding


class GraphTransformerBackbone(Module):
    """Input projection + positional encoding + L attention layers."""

    def __init__(self, in_features: int, hidden: int, num_layers: int,
                 rng: np.random.Generator, num_heads: int = 4,
                 pos_dim: int = 4) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("need at least one layer")
        self.pos_dim = pos_dim
        self.input_proj = Linear(in_features + pos_dim, hidden, rng)
        self.layers = [MultiHeadSelfAttention(hidden, num_heads, rng)
                       for _ in range(num_layers)]

    def forward(self, x: Tensor, adjacency: np.ndarray) -> Tensor:
        encoding = laplacian_positional_encoding(adjacency, self.pos_dim)
        x = concat([x, Tensor(encoding)], axis=-1)
        x = self.input_proj(x)
        for layer in self.layers:
            x = layer(x)
        return x
