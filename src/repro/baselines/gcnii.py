"""GCNII baseline (Chen et al., ICML 2020) — Table III column 2.

GCNII fights over-smoothing with two mechanisms the GNNTrans paper
explicitly acknowledges adopting for this baseline ("the residual
connections and identity matrix are adopted to alleviate the
over-smoothing issue"):

* **initial residual**: every layer mixes in a fraction ``alpha`` of the
  first-layer representation ``H0``;
* **identity mapping**: the layer weight is blended with the identity,
  ``(1 - beta_l) I + beta_l W`` with ``beta_l = log(lambda / l + 1)``.

Propagation uses the symmetric-normalized GCN operator.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..nn.layers import Linear, Module
from ..nn.tensor import Tensor, matmul_const
from .common import symmetric_normalized_adjacency


class GCNIILayer(Module):
    """One GCNII layer with initial residual and identity mapping."""

    def __init__(self, features: int, layer_index: int,
                 rng: np.random.Generator, alpha: float = 0.1,
                 lam: float = 0.5) -> None:
        super().__init__()
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        self.alpha = alpha
        self.beta = math.log(lam / layer_index + 1.0)
        self.weight = Linear(features, features, rng, bias=False,
                             activation="relu")

    def forward(self, x: Tensor, x0: Tensor, propagation: np.ndarray) -> Tensor:
        propagated = matmul_const(propagation, x)
        mixed = propagated * (1.0 - self.alpha) + x0 * self.alpha
        out = mixed * (1.0 - self.beta) + self.weight(mixed) * self.beta
        return out.relu()


class GCNIIBackbone(Module):
    """Input projection followed by L GCNII layers."""

    def __init__(self, in_features: int, hidden: int, num_layers: int,
                 rng: np.random.Generator, alpha: float = 0.1,
                 lam: float = 0.5) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("need at least one layer")
        self.input_proj = Linear(in_features, hidden, rng, activation="relu")
        self.layers = [GCNIILayer(hidden, layer_index, rng, alpha, lam)
                       for layer_index in range(1, num_layers + 1)]

    def forward(self, x: Tensor, adjacency: np.ndarray) -> Tensor:
        propagation = symmetric_normalized_adjacency(adjacency)
        x0 = self.input_proj(x).relu()
        x = x0
        for layer in self.layers:
            x = layer(x, x0, propagation)
        return x
