"""Baselines compared against GNNTrans in Tables III, IV and V.

* graph-learning baselines (GCNII, GraphSage, GAT, graph transformer) —
  node representations + mean path pooling + MLP heads, all trained with
  the same :class:`~repro.core.WireTimingEstimator` machinery through the
  factories below;
* the DAC20 baseline [5] — loop breaking + manual features + from-scratch
  gradient-boosted trees.
"""

from typing import Callable, Dict

import numpy as np

from ..core.config import GNNTransConfig
from ..nn.layers import Module
from .common import (GLOBAL_FEATURE_COLUMNS, NUM_GLOBAL_FEATURES,
                     GraphBaseline, baseline_node_inputs, binary_adjacency,
                     symmetric_normalized_adjacency)
from .graphsage import GraphSageBackbone, SageLayer
from .gat import GATBackbone, GATLayer
from .gcnii import GCNIIBackbone, GCNIILayer
from .graph_transformer import (GraphTransformerBackbone,
                                laplacian_positional_encoding)
from .tree import RegressionTree
from .gbdt import GradientBoostedTrees
from .loop_breaking import (BrokenTree, break_loops, tree_downstream_caps,
                            tree_elmore_delays, tree_path_to_source)
from .dac20 import DAC20_FEATURE_NAMES, DAC20Estimator, DAC20WireModel

# Default baseline search depth: the CPU-scaled counterpart of the paper's
# L = 20 (same 1/5 ratio as the GNNTrans plan configs).
DEFAULT_BASELINE_DEPTH = 4


def make_baseline_factory(kind: str, depth: int = DEFAULT_BASELINE_DEPTH
                          ) -> Callable[[int, int, GNNTransConfig,
                                         np.random.Generator], Module]:
    """Model factory for :class:`~repro.core.WireTimingEstimator`.

    ``kind`` is one of ``"gcnii"``, ``"graphsage"``, ``"gat"``,
    ``"transformer"``.  The returned factory builds the backbone at the
    requested search depth and wraps it with mean path pooling + MLP heads.
    """
    kind = kind.lower()
    if kind not in _BACKBONES:
        raise ValueError(f"unknown baseline {kind!r}; choose from "
                         f"{sorted(_BACKBONES)}")

    def factory(num_node_features: int, num_path_features: int,
                config: GNNTransConfig, rng: np.random.Generator) -> Module:
        in_features = num_node_features + NUM_GLOBAL_FEATURES
        backbone = _BACKBONES[kind](in_features, config.hidden, depth, rng)
        return GraphBaseline(backbone, config.hidden, rng,
                             head_hidden=config.head_hidden)

    return factory


_BACKBONES = {
    "gcnii": GCNIIBackbone,
    "graphsage": GraphSageBackbone,
    "gat": GATBackbone,
    "transformer": GraphTransformerBackbone,
}

BASELINE_KINDS = tuple(sorted(_BACKBONES))

__all__ = [
    "GraphBaseline", "baseline_node_inputs", "binary_adjacency",
    "symmetric_normalized_adjacency", "GLOBAL_FEATURE_COLUMNS",
    "NUM_GLOBAL_FEATURES",
    "SageLayer", "GraphSageBackbone",
    "GATLayer", "GATBackbone",
    "GCNIILayer", "GCNIIBackbone",
    "GraphTransformerBackbone", "laplacian_positional_encoding",
    "RegressionTree", "GradientBoostedTrees",
    "BrokenTree", "break_loops", "tree_downstream_caps",
    "tree_elmore_delays", "tree_path_to_source",
    "DAC20Estimator", "DAC20WireModel", "DAC20_FEATURE_NAMES",
    "make_baseline_factory", "BASELINE_KINDS", "DEFAULT_BASELINE_DEPTH",
]
