"""GraphSage baseline (Hamilton et al., NeurIPS 2017) — Table III column 4.

Plain GraphSage as the paper describes it: "each element in the adjacency
matrix is binary and only indicates whether there is an edge or not ...
node features are always aggregated averagely without considering diverse
edge information."  Structure is otherwise identical to the GNNTrans GNN
module, which isolates the value of resistance-weighted aggregation.
"""

from __future__ import annotations

import numpy as np

from ..nn.layers import Linear, Module
from ..nn.tensor import Tensor, matmul_const
from .common import binary_adjacency


class SageLayer(Module):
    """Mean-aggregation GraphSage layer: ``ReLU(W1 x + W2 mean_u x_u)``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, residual: bool = True) -> None:
        super().__init__()
        self.w_self = Linear(in_features, out_features, rng, activation="relu")
        self.w_neigh = Linear(in_features, out_features, rng, bias=False,
                              activation="relu")
        self.residual = residual and in_features == out_features

    def forward(self, x: Tensor, mean_adjacency: np.ndarray) -> Tensor:
        aggregated = matmul_const(mean_adjacency, x)
        out = (self.w_self(x) + self.w_neigh(aggregated)).relu()
        if self.residual:
            out = out + x
        return out


class GraphSageBackbone(Module):
    """Stack of mean-aggregation Sage layers (search depth L)."""

    def __init__(self, in_features: int, hidden: int, num_layers: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("need at least one layer")
        dims = [in_features] + [hidden] * num_layers
        self.layers = [SageLayer(dims[i], dims[i + 1], rng)
                       for i in range(num_layers)]

    def forward(self, x: Tensor, adjacency: np.ndarray) -> Tensor:
        mean_adjacency = binary_adjacency(adjacency, row_normalize=True)
        for layer in self.layers:
            x = layer(x, mean_adjacency)
        return x
