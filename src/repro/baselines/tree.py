"""CART regression trees — the weak learner of the DAC20-style booster.

A plain binary regression tree with variance-reduction splits, written on
numpy.  Split search sorts each feature once per node and scans prefix
sums, so fitting is ``O(features * n log n)`` per node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class _Node:
    """Internal tree node; leaves have ``feature < 0``."""

    feature: int
    threshold: float
    left: Optional["_Node"]
    right: Optional["_Node"]
    value: float


class RegressionTree:
    """Binary regression tree minimizing squared error.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root = depth 0).
    min_samples_leaf:
        Minimum samples in each child for a split to be accepted.
    min_samples_split:
        Minimum samples at a node to consider splitting at all.
    """

    def __init__(self, max_depth: int = 4, min_samples_leaf: int = 3,
                 min_samples_split: int = 6) -> None:
        if max_depth < 0:
            raise ValueError("max_depth must be non-negative")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = max(min_samples_split, 2 * min_samples_leaf)
        self._root: Optional[_Node] = None

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "RegressionTree":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if x.ndim != 2:
            raise ValueError("x must be 2-dimensional")
        if len(x) != len(y):
            raise ValueError("x and y length mismatch")
        if len(y) == 0:
            raise ValueError("cannot fit a tree on zero samples")
        self._root = self._build(x, y, depth=0)
        return self

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        value = float(y.mean())
        if (depth >= self.max_depth or len(y) < self.min_samples_split
                or np.allclose(y, y[0])):
            return _Node(-1, 0.0, None, None, value)
        feature, threshold = self._best_split(x, y)
        if feature < 0:
            return _Node(-1, 0.0, None, None, value)
        mask = x[:, feature] <= threshold
        left = self._build(x[mask], y[mask], depth + 1)
        right = self._build(x[~mask], y[~mask], depth + 1)
        return _Node(feature, threshold, left, right, value)

    def _best_split(self, x: np.ndarray, y: np.ndarray) -> tuple:
        n = len(y)
        best_gain = 1e-12
        best = (-1, 0.0)
        total_sum = y.sum()
        total_sq = float(np.sum(y ** 2))
        base_sse = total_sq - total_sum ** 2 / n
        for feature in range(x.shape[1]):
            order = np.argsort(x[:, feature], kind="stable")
            xs = x[order, feature]
            ys = y[order]
            prefix = np.cumsum(ys)
            # Candidate split after position i (1-based sizes).
            sizes_left = np.arange(1, n)
            valid = ((sizes_left >= self.min_samples_leaf)
                     & (n - sizes_left >= self.min_samples_leaf)
                     & (xs[:-1] < xs[1:]))  # no split inside ties
            if not valid.any():
                continue
            left_sum = prefix[:-1]
            right_sum = total_sum - left_sum
            # SSE decomposition: gain = base - (sse_left + sse_right)
            # = left_sum^2/n_l + right_sum^2/n_r - total^2/n  (+ const)
            score = (left_sum ** 2 / sizes_left
                     + right_sum ** 2 / (n - sizes_left)
                     - total_sum ** 2 / n)
            score[~valid] = -np.inf
            idx = int(np.argmax(score))
            gain = float(score[idx])
            if gain > best_gain:
                best_gain = gain
                best = (feature, float(0.5 * (xs[idx] + xs[idx + 1])))
        return best

    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        x = np.asarray(x, dtype=np.float64)
        out = np.empty(len(x), dtype=np.float64)
        for i, row in enumerate(x):
            node = self._root
            while node.feature >= 0:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        def walk(node: Optional[_Node]) -> int:
            if node is None or node.feature < 0:
                return 0
            return 1 + max(walk(node.left), walk(node.right))
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        return walk(self._root)
