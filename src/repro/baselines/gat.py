"""Graph attention network baseline (Velickovic et al., 2017) — Table III.

Dense-mask implementation of GAT: attention logits
``e_ij = LeakyReLU(a_src . W x_i + a_dst . W x_j)`` are computed for every
pair, non-edges are masked to ``-inf`` before the row softmax, and the
attention-weighted neighborhood (including a self loop) is aggregated.
Multi-head outputs are averaged, the variant GAT uses on its final layer.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..nn.layers import Linear, Module, Parameter
from ..nn.init import xavier_uniform
from ..nn.tensor import Tensor
from .common import binary_adjacency

_MASK_VALUE = -1e9


class GATLayer(Module):
    """One multi-head graph-attention layer over a dense edge mask."""

    def __init__(self, in_features: int, out_features: int, num_heads: int,
                 rng: np.random.Generator, residual: bool = True,
                 negative_slope: float = 0.2) -> None:
        super().__init__()
        self.num_heads = num_heads
        self.negative_slope = negative_slope
        self.projections = [Linear(in_features, out_features, rng, bias=False)
                            for _ in range(num_heads)]
        self.attn_src = [Parameter(xavier_uniform((out_features, 1), rng))
                         for _ in range(num_heads)]
        self.attn_dst = [Parameter(xavier_uniform((out_features, 1), rng))
                         for _ in range(num_heads)]
        self.residual = residual and in_features == out_features

    def forward(self, x: Tensor, mask: np.ndarray) -> Tensor:
        """``mask``: (N, N) with 0 on allowed pairs, -1e9 on non-edges."""
        head_outputs: List[Tensor] = []
        for k in range(self.num_heads):
            projected = self.projections[k](x)                  # (N, F)
            src_score = projected @ self.attn_src[k]            # (N, 1)
            dst_score = projected @ self.attn_dst[k]            # (N, 1)
            logits = (src_score + dst_score.T).leaky_relu(self.negative_slope)
            attention = (logits + mask).softmax(axis=-1)        # (N, N)
            head_outputs.append(attention @ projected)
        out = head_outputs[0]
        for head in head_outputs[1:]:
            out = out + head
        out = (out * (1.0 / self.num_heads)).relu()
        if self.residual:
            out = out + x
        return out


class GATBackbone(Module):
    """Stack of GAT layers with shared edge mask."""

    def __init__(self, in_features: int, hidden: int, num_layers: int,
                 rng: np.random.Generator, num_heads: int = 2) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("need at least one layer")
        dims = [in_features] + [hidden] * num_layers
        self.layers = [GATLayer(dims[i], dims[i + 1], num_heads, rng)
                       for i in range(num_layers)]

    def forward(self, x: Tensor, adjacency: np.ndarray) -> Tensor:
        connectivity = binary_adjacency(adjacency, self_loops=True,
                                        row_normalize=False)
        mask = np.where(connectivity > 0.0, 0.0, _MASK_VALUE)
        for layer in self.layers:
            x = layer(x, mask)
        return x
