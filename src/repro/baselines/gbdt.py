"""Gradient-boosted regression trees (the "XGBoost model" of DAC20 [5]).

Standard least-squares gradient boosting: start from the target mean, then
repeatedly fit a shallow :class:`RegressionTree` to the current residuals
and add it with a learning-rate shrinkage.  Subsampling (stochastic
gradient boosting) is supported for regularization.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .tree import RegressionTree


class GradientBoostedTrees:
    """Least-squares gradient boosting over CART trees.

    Parameters
    ----------
    n_estimators:
        Number of boosting rounds.
    learning_rate:
        Shrinkage applied to each tree's contribution.
    max_depth, min_samples_leaf:
        Weak-learner shape.
    subsample:
        Row-sampling fraction per round (1.0 = deterministic boosting).
    seed:
        RNG seed for subsampling.
    """

    def __init__(self, n_estimators: int = 100, learning_rate: float = 0.1,
                 max_depth: int = 4, min_samples_leaf: int = 3,
                 subsample: float = 1.0, seed: int = 0) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.seed = seed
        self._base: float = 0.0
        self._trees: List[RegressionTree] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GradientBoostedTrees":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if len(x) != len(y):
            raise ValueError("x and y length mismatch")
        rng = np.random.default_rng(self.seed)
        self._base = float(y.mean())
        self._trees = []
        current = np.full_like(y, self._base)
        n = len(y)
        for _ in range(self.n_estimators):
            residual = y - current
            if self.subsample < 1.0:
                take = max(2 * self.min_samples_leaf,
                           int(round(self.subsample * n)))
                idx = rng.choice(n, size=min(take, n), replace=False)
            else:
                idx = slice(None)
            tree = RegressionTree(self.max_depth, self.min_samples_leaf)
            tree.fit(x[idx], residual[idx])
            update = tree.predict(x)
            current = current + self.learning_rate * update
            self._trees.append(tree)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("model is not fitted")
        x = np.asarray(x, dtype=np.float64)
        out = np.full(len(x), self._base, dtype=np.float64)
        for tree in self._trees:
            out += self.learning_rate * tree.predict(x)
        return out

    def staged_predict(self, x: np.ndarray) -> np.ndarray:
        """Predictions after each boosting round, shape (rounds, n)."""
        if not self._trees:
            raise RuntimeError("model is not fitted")
        x = np.asarray(x, dtype=np.float64)
        out = np.full(len(x), self._base, dtype=np.float64)
        stages = np.empty((len(self._trees), len(x)))
        for i, tree in enumerate(self._trees):
            out = out + self.learning_rate * tree.predict(x)
            stages[i] = out
        return stages
