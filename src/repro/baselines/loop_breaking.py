"""Loop breaking — the non-tree workaround of the DAC20 baseline [5].

DAC20's estimator only understands tree topologies, so non-tree nets are
first *broken* into a spanning tree and all analysis runs on that tree.
The paper attributes the baseline's poor non-tree accuracy precisely to
this step ("the loop-breaking algorithm brings much more induced error"),
so we reproduce that failure mode faithfully: the spanning tree is chosen
by plain breadth-first traversal from the source — a topological heuristic
with no electrical awareness, like the original algorithm — and every loop
edge is dropped.  Downstream capacitance and Elmore delays are then
recomputed on the broken tree only, which misroutes current on nets whose
loops actually carry charge.

Functions here operate on a sample's dense weighted adjacency plus node
capacitances, so the DAC20 pipeline can run directly from stored
:class:`~repro.features.NetSample` data.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass
class BrokenTree:
    """Spanning tree produced by loop breaking.

    Attributes
    ----------
    parent:
        ``parent[i]`` is the tree parent of node ``i`` (-1 at the root).
    parent_resistance:
        Resistance of the edge to the parent (0 at the root).
    removed_edges:
        Number of loop edges dropped.
    removed_resistance:
        Total resistance of the dropped edges (the "information" lost).
    """

    parent: np.ndarray
    parent_resistance: np.ndarray
    removed_edges: int
    removed_resistance: float

    @property
    def num_nodes(self) -> int:
        return len(self.parent)


def break_loops(adjacency: np.ndarray, source: int) -> BrokenTree:
    """Reduce a weighted adjacency matrix to a source-rooted BFS tree.

    ``adjacency[i, j]`` is the resistance between nodes i and j (0 = no
    edge).  The spanning tree minimizes *hop count*, not resistance —
    mirroring the topological (electrically blind) loop breaking of the
    DAC20 baseline; every off-tree edge is counted as removed.
    """
    n = adjacency.shape[0]
    if adjacency.shape != (n, n):
        raise ValueError("adjacency must be square")
    dist = np.full(n, np.inf)
    parent = np.full(n, -1, dtype=np.intp)
    parent_resistance = np.zeros(n)
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    visited = np.zeros(n, dtype=bool)
    while heap:
        d, node = heapq.heappop(heap)
        if visited[node]:
            continue
        visited[node] = True
        for neighbor in np.nonzero(adjacency[node])[0]:
            nd = d + 1.0
            if nd < dist[neighbor]:
                dist[neighbor] = nd
                parent[neighbor] = node
                parent_resistance[neighbor] = adjacency[node, neighbor]
                heapq.heappush(heap, (nd, int(neighbor)))

    total_edges = int(np.count_nonzero(np.triu(adjacency)))
    kept_edges = int(np.sum(parent >= 0))
    kept_resistance = float(parent_resistance.sum())
    total_resistance = float(np.triu(adjacency).sum())
    return BrokenTree(
        parent=parent,
        parent_resistance=parent_resistance,
        removed_edges=total_edges - kept_edges,
        removed_resistance=total_resistance - kept_resistance,
    )


def tree_downstream_caps(tree: BrokenTree, caps: np.ndarray) -> np.ndarray:
    """Subtree capacitance of every node of the broken tree."""
    n = tree.num_nodes
    if caps.shape != (n,):
        raise ValueError("caps length mismatch")
    children: List[List[int]] = [[] for _ in range(n)]
    root = -1
    for node in range(n):
        p = int(tree.parent[node])
        if p >= 0:
            children[p].append(node)
        else:
            root = node
    downstream = np.array(caps, dtype=np.float64)
    order: List[int] = []
    stack = [root]
    while stack:
        node = stack.pop()
        order.append(node)
        stack.extend(children[node])
    for node in reversed(order):
        p = int(tree.parent[node])
        if p >= 0:
            downstream[p] += downstream[node]
    return downstream


def tree_elmore_delays(tree: BrokenTree, caps: np.ndarray) -> np.ndarray:
    """Elmore delay of every node computed on the broken tree.

    ``elmore(child) = elmore(parent) + R_edge * downstream_cap(child)`` —
    exact on trees, but systematically wrong on nets that actually contain
    loops (the induced error of DAC20's approach).
    """
    downstream = tree_downstream_caps(tree, caps)
    n = tree.num_nodes
    elmore = np.zeros(n)
    children: List[List[int]] = [[] for _ in range(n)]
    root = -1
    for node in range(n):
        p = int(tree.parent[node])
        if p >= 0:
            children[p].append(node)
        else:
            root = node
    stack = [root]
    while stack:
        node = stack.pop()
        for child in children[node]:
            elmore[child] = (elmore[node]
                             + tree.parent_resistance[child] * downstream[child])
            stack.append(child)
    return elmore


def tree_path_to_source(tree: BrokenTree, node: int) -> List[int]:
    """Nodes from ``node`` up to the root of the broken tree, inclusive."""
    path = [node]
    current = node
    while tree.parent[current] >= 0:
        current = int(tree.parent[current])
        path.append(current)
    return path
