"""Dataset filtering and splitting utilities.

Tables III and IV differ only in the evaluated subset: non-tree nets versus
all nets.  These helpers express those subsets, plus generic per-design
grouping and a seeded train/validation split.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..features.pipeline import NetSample


def nontree_only(samples: Sequence[NetSample]) -> List[NetSample]:
    """Samples whose net contains at least one resistive loop (Table III)."""
    return [s for s in samples if not s.is_tree]


def tree_only(samples: Sequence[NetSample]) -> List[NetSample]:
    """Samples whose net is loop-free."""
    return [s for s in samples if s.is_tree]


def by_design(samples: Sequence[NetSample]) -> Dict[str, List[NetSample]]:
    """Group samples by owning design name."""
    grouped: Dict[str, List[NetSample]] = {}
    for sample in samples:
        grouped.setdefault(sample.design, []).append(sample)
    return grouped


def train_val_split(samples: Sequence[NetSample], val_fraction: float = 0.1,
                    seed: int = 0) -> Tuple[List[NetSample], List[NetSample]]:
    """Random train/validation split at the net granularity."""
    if not 0.0 < val_fraction < 1.0:
        raise ValueError("val_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    indices = rng.permutation(len(samples))
    n_val = max(1, int(round(val_fraction * len(samples))))
    val_idx = set(int(i) for i in indices[:n_val])
    train = [s for i, s in enumerate(samples) if i not in val_idx]
    val = [s for i, s in enumerate(samples) if i in val_idx]
    return train, val


def collect_labels(samples: Sequence[NetSample]) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate (slew, delay) labels over all paths of ``samples``, ps."""
    slews: List[float] = []
    delays: List[float] = []
    for sample in samples:
        for path in sample.paths:
            slews.append(path.label_slew)
            delays.append(path.label_delay)
    return np.array(slews), np.array(delays)
