"""End-to-end dataset generation: designs → nets → features → golden labels.

This is the reproduction of the paper's data pipeline (StarRC parasitics +
PrimeTime-SI golden reports): for every net of a generated benchmark design
we derive the electrical context from the actual driving/receiving cells,
run the golden timer, and package a :class:`~repro.features.NetSample`.

Golden labeling is the generation bottleneck (the paper parallelized the
analogous stage over 4 GPUs), so the stage is decomposed into picklable
per-net :class:`NetLabelTask` units executed through
:func:`repro.parallel.parallel_map`: ``n_jobs`` worker processes label nets
concurrently, results are collected in task order, and every random choice
draws from ``SeedSequence`` children spawned per design and per net from
the workload seed — so any ``n_jobs`` produces a bit-identical dataset,
including which nets were sampled and which were skipped.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.simulator import GoldenTimer
from ..obs import get_metrics, get_tracer
from ..parallel import MapFailure, parallel_map, spawn_seeds
from ..robustness.errors import EstimationError
from ..design.benchmarks import (DEFAULT_SCALE, TEST_BENCHMARKS,
                                 TRAIN_BENCHMARKS, generate_benchmark)
from ..design.netlist import Netlist
from ..features.path_features import NetContext
from ..features.pipeline import FeatureScaler, NetSample, build_net_sample
from ..liberty.ceff import effective_capacitance
from ..liberty.library import Library, make_default_library

_LAUNCH_SLEW = 20e-12

logger = logging.getLogger(__name__)

_NETS_LABELED = get_metrics().counter("dataset.nets_labeled")
_NETS_SKIPPED = get_metrics().counter("dataset.nets_skipped")


@dataclass(frozen=True)
class SkippedSample:
    """One net dropped from a dataset build, with its typed failure reason."""

    net: str
    design: str
    reason: str


@dataclass
class WireTimingDataset:
    """A train/test split of net samples with a fitted feature scaler.

    ``train`` and ``test`` hold *standardized* samples; ``scaler`` carries
    the training-set statistics so new nets can be normalized identically
    at inference time.  ``skipped`` records nets whose golden labeling
    failed with a typed error and were dropped instead of aborting the
    build.
    """

    train: List[NetSample] = field(default_factory=list)
    test: List[NetSample] = field(default_factory=list)
    scaler: Optional[FeatureScaler] = None
    skipped: List[SkippedSample] = field(default_factory=list)

    def test_by_design(self) -> Dict[str, List[NetSample]]:
        """Test samples grouped per benchmark, for per-row table output."""
        grouped: Dict[str, List[NetSample]] = {}
        for sample in self.test:
            grouped.setdefault(sample.design, []).append(sample)
        return grouped

    @property
    def num_train_paths(self) -> int:
        return sum(s.num_paths for s in self.train)

    @property
    def num_test_paths(self) -> int:
        return sum(s.num_paths for s in self.test)


@dataclass(frozen=True)
class NetLabelTask:
    """One golden-labeling work unit: a net plus its electrical context.

    Tasks are self-contained and picklable — the RC net, the driving cell
    and the receiving cells travel with the task, so workers need no shared
    library object.  ``seed`` is the net's private ``SeedSequence`` child
    (spawned from the workload seed); golden labeling is currently fully
    deterministic, but any future stochastic component (Monte-Carlo SI
    sampling, parasitic jitter) must draw from it so that results stay
    independent of the worker count.
    """

    design: str
    net_name: str
    rcnet: object            # RCNet
    drive_cell: object       # liberty Cell
    load_cells: Tuple[object, ...]
    si_mode: bool = True
    on_error: str = "skip"
    seed: Optional[np.random.SeedSequence] = None


def _label_net(task: NetLabelTask
               ) -> Tuple[Optional[NetSample], Optional[SkippedSample]]:
    """Worker entry point: golden-label one net (exactly one result).

    Returns ``(sample, None)`` on success and ``(None, skip_record)`` when
    the net fails with a typed error and the task is in skip mode; in raise
    mode the typed error propagates (through the pool, when parallel).
    """
    try:
        sink_loads = np.array([c.input_cap for c in task.load_cells])
        ceff = effective_capacitance(task.rcnet,
                                     task.drive_cell.drive_resistance,
                                     sink_loads)
        _, input_slew = task.drive_cell.delay_and_slew(_LAUNCH_SLEW, ceff)
        context = NetContext(input_slew=input_slew,
                             drive_cell=task.drive_cell,
                             load_cells=list(task.load_cells))
        timer = GoldenTimer(drive_resistance=task.drive_cell.drive_resistance,
                            si_mode=task.si_mode)
        sample = build_net_sample(task.rcnet, context, design=task.design,
                                  timer=timer)
        return sample, None
    except (EstimationError, np.linalg.LinAlgError) as exc:
        if task.on_error == "raise":
            raise
        return None, SkippedSample(task.net_name, task.design, str(exc))


def _label_nets_batched(tasks: Sequence[NetLabelTask]
                        ) -> List[Tuple[Optional[NetSample],
                                        Optional[SkippedSample]]]:
    """Serial fast path: golden-label all tasks through the batch engine.

    Produces exactly what mapping :func:`_label_net` over ``tasks`` would —
    same samples bit for bit (the batched solver is bitwise-identical to
    the scalar one), same skip records, same raise-mode behaviour — with
    the per-net eigendecompositions and crossing searches fused into
    stacked calls by :func:`repro.analysis.batch.golden_analyze_many`.
    """
    from ..analysis.batch import GoldenNetJob, golden_analyze_many
    from ..features.path_features import analyze_nets_for_features

    results: List[Optional[Tuple[Optional[NetSample],
                                 Optional[SkippedSample]]]] = \
        [None] * len(tasks)
    prepared: List[Tuple[int, NetLabelTask, NetContext, GoldenTimer,
                         np.ndarray, float]] = []
    for index, task in enumerate(tasks):
        try:
            sink_loads = np.array([c.input_cap for c in task.load_cells])
            ceff = effective_capacitance(task.rcnet,
                                         task.drive_cell.drive_resistance,
                                         sink_loads)
            _, input_slew = task.drive_cell.delay_and_slew(_LAUNCH_SLEW,
                                                           ceff)
            context = NetContext(input_slew=input_slew,
                                 drive_cell=task.drive_cell,
                                 load_cells=list(task.load_cells))
            timer = GoldenTimer(
                drive_resistance=task.drive_cell.drive_resistance,
                si_mode=task.si_mode)
        except (EstimationError, np.linalg.LinAlgError) as exc:
            if task.on_error == "raise":
                raise
            results[index] = (None, SkippedSample(task.net_name,
                                                  task.design, str(exc)))
            continue
        prepared.append((index, task, context, timer, sink_loads,
                         input_slew))
    # One grouped moment pass serves both the feature vectors and the
    # golden settling horizon (GoldenNetJob.elmore); failed entries stay
    # None and take the scalar path inside build_net_sample.
    analyses = analyze_nets_for_features(
        [(task.rcnet, sink_loads)
         for _, task, _, _, sink_loads, _ in prepared])
    jobs = [GoldenNetJob(timer, task.rcnet, input_slew, sink_loads,
                         elmore=None if analysis is None
                         else analysis.elmore)
            for (_, task, _, timer, sink_loads, input_slew), analysis
            in zip(prepared, analyses)]
    outcomes = golden_analyze_many(jobs)
    for (index, task, context, timer, _, _), analysis, outcome in zip(
            prepared, analyses, outcomes):
        try:
            if isinstance(outcome, Exception):
                raise outcome
            sample = build_net_sample(task.rcnet, context,
                                      design=task.design, timer=timer,
                                      golden=outcome, analysis=analysis)
            results[index] = (sample, None)
        except (EstimationError, np.linalg.LinAlgError) as exc:
            if task.on_error == "raise":
                raise
            results[index] = (None, SkippedSample(task.net_name,
                                                  task.design, str(exc)))
    return results  # type: ignore[return-value]


def _net_tasks(netlist: Netlist, max_nets: Optional[int] = None,
               rng: Optional[np.random.Generator] = None,
               si_mode: bool = True, on_error: str = "skip",
               seed_seq: Optional[np.random.SeedSequence] = None
               ) -> List[NetLabelTask]:
    """Decompose one design into per-net labeling tasks (optionally subsampled).

    The input slew of each net is the actual output slew of its driving
    cell at the net's effective capacitance, so features and labels see a
    self-consistent operating point — exactly what a timer would propagate.
    """
    nets = list(netlist.nets.values())
    if max_nets is not None and len(nets) > max_nets:
        rng = rng or np.random.default_rng(0)
        picked = rng.choice(len(nets), size=max_nets, replace=False)
        nets = [nets[int(i)] for i in sorted(picked)]
    net_seeds: Sequence[Optional[np.random.SeedSequence]]
    net_seeds = seed_seq.spawn(len(nets)) if seed_seq is not None \
        else [None] * len(nets)
    tasks: List[NetLabelTask] = []
    for net, child in zip(nets, net_seeds):
        tasks.append(NetLabelTask(
            design=netlist.name,
            net_name=net.name,
            rcnet=net.rcnet,
            drive_cell=netlist.gates[net.driver].cell,
            load_cells=tuple(netlist.gates[load.gate].cell
                             for load in net.loads),
            si_mode=si_mode,
            on_error=on_error,
            seed=child,
        ))
    return tasks


def design_net_samples(netlist: Netlist, max_nets: Optional[int] = None,
                       rng: Optional[np.random.Generator] = None,
                       si_mode: bool = True, on_error: str = "skip",
                       skipped: Optional[List[SkippedSample]] = None,
                       jobs: int = 1) -> List[NetSample]:
    """Build one sample per net of ``netlist`` (optionally a random subset).

    A net whose golden labeling fails with a typed
    :class:`~repro.robustness.errors.EstimationError` (ill-conditioned MNA,
    non-finite parasitics, ...) is skipped and logged by default — one
    pathological net must not abort an hours-long dataset build.  Pass
    ``on_error="raise"`` to fail fast instead, and a ``skipped`` list to
    collect the per-net :class:`SkippedSample` records.  ``jobs`` labels
    nets across worker processes; results are identical for any value.
    """
    if on_error not in ("skip", "raise"):
        raise ValueError(f"on_error must be 'skip' or 'raise', got {on_error!r}")
    tasks = _net_tasks(netlist, max_nets, rng, si_mode, on_error)
    if jobs == 1:
        results = _label_nets_batched(tasks)
    else:
        results = parallel_map(_label_net, tasks, jobs=jobs,
                               label="label_nets")
    return _collect(tasks, results, skipped)


def _collect(tasks: Sequence[NetLabelTask],
             results: Sequence[Tuple[Optional[NetSample],
                                     Optional[SkippedSample]]],
             skipped: Optional[List[SkippedSample]]) -> List[NetSample]:
    """Fold ordered worker results into samples + skip records + counters."""
    samples: List[NetSample] = []
    for task, (sample, skip) in zip(tasks, results):
        if sample is not None:
            samples.append(sample)
            _NETS_LABELED.inc()
        else:
            _NETS_SKIPPED.inc()
            logger.warning("skipping net %r of design %r: %s",
                           skip.net, skip.design, skip.reason)
            if skipped is not None:
                skipped.append(skip)
    return samples


@dataclass(frozen=True)
class _DesignJob:
    """Worker unit of the design-generation phase (picklable)."""

    name: str
    scale: int
    nets_per_design: Optional[int]
    si_mode: bool
    seed: np.random.SeedSequence
    library: Optional[Library] = None


def _design_tasks(job: _DesignJob) -> List[NetLabelTask]:
    """Worker entry point: generate one benchmark and emit its net tasks.

    Subsampling draws from the design's own ``SeedSequence`` child, and the
    per-net seeds are spawned from the same child in sampled-net order —
    both independent of which process runs the job.
    """
    with get_tracer().span("dataset.design", design=job.name,
                           scale=job.scale):
        library = job.library if job.library is not None \
            else make_default_library()
        netlist = generate_benchmark(job.name, library, job.scale)
        rng = np.random.default_rng(job.seed)
        return _net_tasks(netlist, job.nets_per_design, rng, job.si_mode,
                          seed_seq=job.seed)


def generate_dataset(train_names: Sequence[str] = tuple(TRAIN_BENCHMARKS),
                     test_names: Sequence[str] = tuple(TEST_BENCHMARKS),
                     scale: int = DEFAULT_SCALE,
                     nets_per_design: Optional[int] = 60,
                     library: Optional[Library] = None,
                     si_mode: bool = True,
                     seed: int = 7,
                     n_jobs: int = 1) -> WireTimingDataset:
    """Generate and standardize the full benchmark dataset.

    Parameters
    ----------
    train_names, test_names:
        Benchmark names (defaults: the paper's Table II split).
    scale:
        Design down-scaling factor (see :mod:`repro.design.benchmarks`).
    nets_per_design:
        Cap on sampled nets per design (None = all nets).
    library:
        Cell library (default synthetic library).  Cells travel inside the
        per-net tasks, so custom libraries work with any ``n_jobs``.
    si_mode:
        Whether golden labels include SI coupling effects.
    seed:
        Workload seed.  Per-design and per-net RNG streams are spawned from
        it via ``numpy.random.SeedSequence.spawn``, so the sampled nets,
        the labels and the skipped-net records are bit-identical for every
        ``n_jobs`` value.
    n_jobs:
        Worker processes for design generation and golden labeling (the
        generation bottleneck).  A worker crash degrades to an in-parent
        serial retry (see :mod:`repro.parallel`) instead of aborting.
    """
    names = list(train_names) + list(test_names)
    # Build the (deterministic) default library once here rather than once
    # per design inside the workers — cells travel in the tasks either way.
    library = library if library is not None else make_default_library()
    design_jobs = [
        _DesignJob(name, scale, nets_per_design, si_mode, child, library)
        for name, child in zip(names, spawn_seeds(seed, len(names)))]

    tracer = get_tracer()
    with tracer.span("dataset.generate", designs=len(names), scale=scale,
                     nets_per_design=nets_per_design, jobs=n_jobs) as span:
        crashes: List[MapFailure] = []
        per_design = parallel_map(_design_tasks, design_jobs, jobs=n_jobs,
                                  label="generate_designs", failures=crashes)
        tasks = [task for design_tasks in per_design
                 for task in design_tasks]
        if n_jobs == 1:
            # Serial builds take the batched labeler: one stacked solve
            # across all nets, bitwise equal to the per-net path (the
            # jobs-invariance CI gate holds either way).
            results = _label_nets_batched(tasks)
        else:
            results = parallel_map(_label_net, tasks, jobs=n_jobs,
                                   label="label_nets", failures=crashes)

        train: List[NetSample] = []
        test: List[NetSample] = []
        skipped: List[SkippedSample] = []
        train_set = set(train_names)
        samples = _collect(tasks, results, skipped)
        for task, sample in zip(
                (t for t, (s, _) in zip(tasks, results) if s is not None),
                samples):
            (train if task.design in train_set else test).append(sample)
        span.set(train_nets=len(train), test_nets=len(test),
                 skipped_nets=len(skipped), worker_crashes=len(crashes))

        scaler = FeatureScaler().fit(train)
        return WireTimingDataset(
            train=scaler.transform(train),
            test=scaler.transform(test),
            scaler=scaler,
            skipped=skipped,
        )
