"""End-to-end dataset generation: designs → nets → features → golden labels.

This is the reproduction of the paper's data pipeline (StarRC parasitics +
PrimeTime-SI golden reports): for every net of a generated benchmark design
we derive the electrical context from the actual driving/receiving cells,
run the golden timer, and package a :class:`~repro.features.NetSample`.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.simulator import GoldenTimer
from ..obs import get_metrics, get_tracer
from ..robustness.errors import EstimationError
from ..design.benchmarks import (DEFAULT_SCALE, TEST_BENCHMARKS,
                                 TRAIN_BENCHMARKS, generate_benchmark)
from ..design.netlist import Netlist
from ..features.path_features import NetContext
from ..features.pipeline import FeatureScaler, NetSample, build_net_sample
from ..liberty.ceff import effective_capacitance
from ..liberty.library import Library, make_default_library

_LAUNCH_SLEW = 20e-12

logger = logging.getLogger(__name__)

_NETS_LABELED = get_metrics().counter("dataset.nets_labeled")
_NETS_SKIPPED = get_metrics().counter("dataset.nets_skipped")


@dataclass(frozen=True)
class SkippedSample:
    """One net dropped from a dataset build, with its typed failure reason."""

    net: str
    design: str
    reason: str


@dataclass
class WireTimingDataset:
    """A train/test split of net samples with a fitted feature scaler.

    ``train`` and ``test`` hold *standardized* samples; ``scaler`` carries
    the training-set statistics so new nets can be normalized identically
    at inference time.  ``skipped`` records nets whose golden labeling
    failed with a typed error and were dropped instead of aborting the
    build.
    """

    train: List[NetSample] = field(default_factory=list)
    test: List[NetSample] = field(default_factory=list)
    scaler: Optional[FeatureScaler] = None
    skipped: List[SkippedSample] = field(default_factory=list)

    def test_by_design(self) -> Dict[str, List[NetSample]]:
        """Test samples grouped per benchmark, for per-row table output."""
        grouped: Dict[str, List[NetSample]] = {}
        for sample in self.test:
            grouped.setdefault(sample.design, []).append(sample)
        return grouped

    @property
    def num_train_paths(self) -> int:
        return sum(s.num_paths for s in self.train)

    @property
    def num_test_paths(self) -> int:
        return sum(s.num_paths for s in self.test)


def design_net_samples(netlist: Netlist, max_nets: Optional[int] = None,
                       rng: Optional[np.random.Generator] = None,
                       si_mode: bool = True, on_error: str = "skip",
                       skipped: Optional[List[SkippedSample]] = None
                       ) -> List[NetSample]:
    """Build one sample per net of ``netlist`` (optionally a random subset).

    The input slew of each net is the actual output slew of its driving
    cell at the net's effective capacitance, so features and labels see a
    self-consistent operating point — exactly what a timer would propagate.

    A net whose golden labeling fails with a typed
    :class:`~repro.robustness.errors.EstimationError` (ill-conditioned MNA,
    non-finite parasitics, ...) is skipped and logged by default — one
    pathological net must not abort an hours-long dataset build.  Pass
    ``on_error="raise"`` to fail fast instead, and a ``skipped`` list to
    collect the per-net :class:`SkippedSample` records.
    """
    if on_error not in ("skip", "raise"):
        raise ValueError(f"on_error must be 'skip' or 'raise', got {on_error!r}")
    nets = list(netlist.nets.values())
    if max_nets is not None and len(nets) > max_nets:
        rng = rng or np.random.default_rng(0)
        picked = rng.choice(len(nets), size=max_nets, replace=False)
        nets = [nets[int(i)] for i in sorted(picked)]
    samples: List[NetSample] = []
    for net in nets:
        drive_cell = netlist.gates[net.driver].cell
        load_cells = [netlist.gates[load.gate].cell for load in net.loads]
        sink_loads = np.array([c.input_cap for c in load_cells])
        try:
            ceff = effective_capacitance(net.rcnet,
                                         drive_cell.drive_resistance,
                                         sink_loads)
            _, input_slew = drive_cell.delay_and_slew(_LAUNCH_SLEW, ceff)
            context = NetContext(input_slew=input_slew, drive_cell=drive_cell,
                                 load_cells=load_cells)
            timer = GoldenTimer(drive_resistance=drive_cell.drive_resistance,
                                si_mode=si_mode)
            samples.append(build_net_sample(net.rcnet, context,
                                            design=netlist.name, timer=timer))
            _NETS_LABELED.inc()
        except (EstimationError, np.linalg.LinAlgError) as exc:
            if on_error == "raise":
                raise
            _NETS_SKIPPED.inc()
            logger.warning("skipping net %r of design %r: %s",
                           net.name, netlist.name, exc)
            if skipped is not None:
                skipped.append(SkippedSample(net.name, netlist.name, str(exc)))
    return samples


def _samples_for_benchmark(args) -> Tuple[List[NetSample], List[SkippedSample]]:
    """Worker entry point: one benchmark's samples (picklable args)."""
    name, scale, nets_per_design, si_mode, worker_seed = args
    with get_tracer().span("dataset.design", design=name, scale=scale):
        library = make_default_library()
        netlist = generate_benchmark(name, library, scale)
        rng = np.random.default_rng(worker_seed)
        skipped: List[SkippedSample] = []
        samples = design_net_samples(netlist, nets_per_design, rng, si_mode,
                                     skipped=skipped)
    return samples, skipped


def generate_dataset(train_names: Sequence[str] = tuple(TRAIN_BENCHMARKS),
                     test_names: Sequence[str] = tuple(TEST_BENCHMARKS),
                     scale: int = DEFAULT_SCALE,
                     nets_per_design: Optional[int] = 60,
                     library: Optional[Library] = None,
                     si_mode: bool = True,
                     seed: int = 7,
                     n_jobs: int = 1) -> WireTimingDataset:
    """Generate and standardize the full benchmark dataset.

    Parameters
    ----------
    train_names, test_names:
        Benchmark names (defaults: the paper's Table II split).
    scale:
        Design down-scaling factor (see :mod:`repro.design.benchmarks`).
    nets_per_design:
        Cap on sampled nets per design (None = all nets).
    library:
        Cell library (default synthetic library).
    si_mode:
        Whether golden labels include SI coupling effects.
    seed:
        Seed for net subsampling.
    n_jobs:
        Worker processes for golden labeling (the generation bottleneck;
        the paper parallelized the analogous stage over 4 GPUs).  Results
        are identical for any ``n_jobs`` because each benchmark owns a
        deterministic per-design seed.
    """
    if library is not None and n_jobs > 1:
        raise ValueError(
            "a custom library cannot be shipped to worker processes; "
            "use n_jobs=1 or the default library")
    names = list(train_names) + list(test_names)
    jobs = [(name, scale, nets_per_design, si_mode, seed + index)
            for index, name in enumerate(names)]

    tracer = get_tracer()
    with tracer.span("dataset.generate", designs=len(names), scale=scale,
                     nets_per_design=nets_per_design) as span:
        if n_jobs > 1:
            # Spans inside workers land in each worker's own (disabled)
            # tracer; only the enclosing span is visible to this process.
            import multiprocessing

            with multiprocessing.Pool(processes=n_jobs) as pool:
                per_benchmark = pool.map(_samples_for_benchmark, jobs)
        elif library is not None:
            # In-process path with the caller's library.
            per_benchmark = []
            for name, _, _, _, worker_seed in jobs:
                with tracer.span("dataset.design", design=name, scale=scale):
                    netlist = generate_benchmark(name, library, scale)
                    rng = np.random.default_rng(worker_seed)
                    design_skipped: List[SkippedSample] = []
                    per_benchmark.append(
                        (design_net_samples(netlist, nets_per_design, rng,
                                            si_mode, skipped=design_skipped),
                         design_skipped))
        else:
            per_benchmark = [_samples_for_benchmark(job) for job in jobs]

        train: List[NetSample] = []
        test: List[NetSample] = []
        skipped: List[SkippedSample] = []
        for name, (samples, design_skipped) in zip(names, per_benchmark):
            (train if name in train_names else test).extend(samples)
            skipped.extend(design_skipped)
        span.set(train_nets=len(train), test_nets=len(test),
                 skipped_nets=len(skipped))

        scaler = FeatureScaler().fit(train)
        return WireTimingDataset(
            train=scaler.transform(train),
            test=scaler.transform(test),
            scaler=scaler,
            skipped=skipped,
        )
