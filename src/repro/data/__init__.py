"""Dataset pipeline: generation, splitting and serialization.

``generate_dataset`` drives the full labeling flow: generate (or load) each
benchmark design, extract per-net RC graphs, label every wire path with the
golden transient simulator (crosstalk-injected when ``si_mode``), and
package the result as a :class:`WireTimingDataset` with paper-style
train/test splits by design.  Nets whose simulation fails with a typed
error are skipped and recorded (``dataset.skipped``), never fatal.

Splitting helpers mirror the paper's evaluation subsets (``nontree_only``
for Table III, ``by_design`` for per-design rows) and ``save_dataset`` /
``load_dataset`` round-trip everything through pickle-free ``.npz`` files.
"""

from .generate import (SkippedSample, WireTimingDataset, design_net_samples,
                       generate_dataset)
from .split import (by_design, collect_labels, nontree_only, train_val_split,
                    tree_only)
from .io import load_dataset, save_dataset

__all__ = [
    "WireTimingDataset", "SkippedSample", "generate_dataset",
    "design_net_samples",
    "nontree_only", "tree_only", "by_design", "train_val_split",
    "collect_labels",
    "save_dataset", "load_dataset",
]
