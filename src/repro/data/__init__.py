"""Dataset pipeline: generation, splitting and serialization."""

from .generate import (SkippedSample, WireTimingDataset, design_net_samples,
                       generate_dataset)
from .split import (by_design, collect_labels, nontree_only, train_val_split,
                    tree_only)
from .io import load_dataset, save_dataset

__all__ = [
    "WireTimingDataset", "SkippedSample", "generate_dataset",
    "design_net_samples",
    "nontree_only", "tree_only", "by_design", "train_val_split",
    "collect_labels",
    "save_dataset", "load_dataset",
]
