"""Pickle-free dataset serialization to ``.npz``.

Net samples are ragged (variable node/path counts), so they are flattened
into offset-indexed arrays — the same trick sparse-matrix formats use —
keeping the files portable and free of ``allow_pickle`` security issues.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..features.pipeline import FeatureScaler, NetSample, PathRecord
from .generate import WireTimingDataset


def _pack(samples: Sequence[NetSample], prefix: str) -> dict:
    arrays: dict = {}
    names = [s.name for s in samples]
    designs = [s.design for s in samples]
    arrays[f"{prefix}_names"] = np.array(names, dtype=np.str_)
    arrays[f"{prefix}_designs"] = np.array(designs, dtype=np.str_)
    arrays[f"{prefix}_is_tree"] = np.array([s.is_tree for s in samples], dtype=bool)
    arrays[f"{prefix}_num_nodes"] = np.array([s.num_nodes for s in samples],
                                             dtype=np.int64)

    node_offsets = np.zeros(len(samples) + 1, dtype=np.int64)
    for i, s in enumerate(samples):
        node_offsets[i + 1] = node_offsets[i] + s.num_nodes
    arrays[f"{prefix}_node_offsets"] = node_offsets
    arrays[f"{prefix}_node_features"] = (
        np.vstack([s.node_features for s in samples]) if samples
        else np.zeros((0, 0)))

    rows: List[np.ndarray] = []
    cols: List[np.ndarray] = []
    vals: List[np.ndarray] = []
    adj_offsets = np.zeros(len(samples) + 1, dtype=np.int64)
    for i, s in enumerate(samples):
        r, c = np.nonzero(s.adjacency)
        keep = r < c  # store the upper triangle once; matrix is symmetric
        rows.append(r[keep])
        cols.append(c[keep])
        vals.append(s.adjacency[r[keep], c[keep]])
        adj_offsets[i + 1] = adj_offsets[i] + int(keep.sum())
    arrays[f"{prefix}_adj_offsets"] = adj_offsets
    arrays[f"{prefix}_adj_rows"] = (np.concatenate(rows) if rows
                                    else np.zeros(0, dtype=np.int64))
    arrays[f"{prefix}_adj_cols"] = (np.concatenate(cols) if cols
                                    else np.zeros(0, dtype=np.int64))
    arrays[f"{prefix}_adj_vals"] = (np.concatenate(vals) if vals
                                    else np.zeros(0))

    path_offsets = np.zeros(len(samples) + 1, dtype=np.int64)
    all_paths: List[PathRecord] = []
    for i, s in enumerate(samples):
        path_offsets[i + 1] = path_offsets[i] + s.num_paths
        all_paths.extend(s.paths)
    arrays[f"{prefix}_path_offsets"] = path_offsets
    arrays[f"{prefix}_path_sinks"] = np.array([p.sink for p in all_paths],
                                              dtype=np.int64)
    arrays[f"{prefix}_path_features"] = (
        np.vstack([p.features for p in all_paths]) if all_paths
        else np.zeros((0, 0)))
    arrays[f"{prefix}_path_slews"] = np.array([p.label_slew for p in all_paths])
    arrays[f"{prefix}_path_delays"] = np.array([p.label_delay for p in all_paths])
    arrays[f"{prefix}_path_input_slews"] = np.array(
        [p.input_slew_ps for p in all_paths])

    pnode_offsets = np.zeros(len(all_paths) + 1, dtype=np.int64)
    pnode_values: List[int] = []
    for i, p in enumerate(all_paths):
        pnode_offsets[i + 1] = pnode_offsets[i] + len(p.node_indices)
        pnode_values.extend(p.node_indices)
    arrays[f"{prefix}_pnode_offsets"] = pnode_offsets
    arrays[f"{prefix}_pnode_values"] = np.array(pnode_values, dtype=np.int64)
    return arrays


def _unpack(data, prefix: str) -> List[NetSample]:
    names = data[f"{prefix}_names"]
    designs = data[f"{prefix}_designs"]
    is_tree = data[f"{prefix}_is_tree"]
    num_nodes = data[f"{prefix}_num_nodes"]
    node_offsets = data[f"{prefix}_node_offsets"]
    node_features = data[f"{prefix}_node_features"]
    adj_offsets = data[f"{prefix}_adj_offsets"]
    adj_rows = data[f"{prefix}_adj_rows"]
    adj_cols = data[f"{prefix}_adj_cols"]
    adj_vals = data[f"{prefix}_adj_vals"]
    path_offsets = data[f"{prefix}_path_offsets"]
    path_sinks = data[f"{prefix}_path_sinks"]
    path_features = data[f"{prefix}_path_features"]
    path_slews = data[f"{prefix}_path_slews"]
    path_delays = data[f"{prefix}_path_delays"]
    path_input_slews = data[f"{prefix}_path_input_slews"]
    pnode_offsets = data[f"{prefix}_pnode_offsets"]
    pnode_values = data[f"{prefix}_pnode_values"]

    samples: List[NetSample] = []
    for i in range(len(names)):
        n = int(num_nodes[i])
        adjacency = np.zeros((n, n))
        lo, hi = int(adj_offsets[i]), int(adj_offsets[i + 1])
        r, c, v = adj_rows[lo:hi], adj_cols[lo:hi], adj_vals[lo:hi]
        adjacency[r, c] = v
        adjacency[c, r] = v
        paths: List[PathRecord] = []
        for j in range(int(path_offsets[i]), int(path_offsets[i + 1])):
            plo, phi = int(pnode_offsets[j]), int(pnode_offsets[j + 1])
            paths.append(PathRecord(
                sink=int(path_sinks[j]),
                node_indices=tuple(int(x) for x in pnode_values[plo:phi]),
                features=np.asarray(path_features[j], dtype=np.float64),
                label_slew=float(path_slews[j]),
                label_delay=float(path_delays[j]),
                input_slew_ps=float(path_input_slews[j]),
            ))
        samples.append(NetSample(
            name=str(names[i]),
            design=str(designs[i]),
            is_tree=bool(is_tree[i]),
            node_features=np.asarray(
                node_features[int(node_offsets[i]):int(node_offsets[i + 1])],
                dtype=np.float64),
            adjacency=adjacency,
            paths=paths,
        ))
    return samples


def save_dataset(path: str, dataset: WireTimingDataset) -> None:
    """Write a dataset (both splits + scaler) to a compressed ``.npz``."""
    arrays = {}
    arrays.update(_pack(dataset.train, "train"))
    arrays.update(_pack(dataset.test, "test"))
    if dataset.scaler is not None:
        for key, value in dataset.scaler.state().items():
            arrays[f"scaler_{key}"] = value
    np.savez_compressed(path, **arrays)


def load_dataset(path: str) -> WireTimingDataset:
    """Read a dataset previously written by :func:`save_dataset`."""
    with np.load(path, allow_pickle=False) as data:
        train = _unpack(data, "train")
        test = _unpack(data, "test")
        scaler: Optional[FeatureScaler] = None
        if "scaler_node_mean" in data:
            scaler = FeatureScaler.from_state({
                "node_mean": data["scaler_node_mean"],
                "node_std": data["scaler_node_std"],
                "path_mean": data["scaler_path_mean"],
                "path_std": data["scaler_path_std"],
            })
    return WireTimingDataset(train=train, test=test, scaler=scaler)
