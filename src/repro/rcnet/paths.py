"""Wire-path extraction.

Definition 1 of the paper: a *wire path* runs from the net source to one
target sink, so a net with ``k`` sinks has exactly ``k`` wire paths.  On a
tree the path is unique; on a non-tree net the paper defines the wire path
as the *shortest* path from source to sink (Section II-B), with remaining
nodes/edges regarded as branches.  We use resistance as the edge length for
the shortest-path computation, which matches the electrical notion of the
dominant signal route.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .graph import RCNet, RCNetError
from ..robustness.errors import InputError


@dataclass(frozen=True)
class WirePath:
    """One source-to-sink route through an RC net.

    Attributes
    ----------
    net_name:
        Name of the owning net.
    sink:
        Target sink node index.
    nodes:
        Node indices visited, source first, sink last.
    edges:
        Edge indices traversed, aligned with consecutive node pairs
        (``len(edges) == len(nodes) - 1``).
    resistance:
        Total resistance along the path in ohms.
    """

    net_name: str
    sink: int
    nodes: Tuple[int, ...]
    edges: Tuple[int, ...]
    resistance: float

    @property
    def num_stages(self) -> int:
        """Number of RC stages: one per traversed edge (Section II-B)."""
        return len(self.edges)

    def __len__(self) -> int:
        return len(self.nodes)


def shortest_path_tree(net: RCNet, weight: str = "resistance"
                       ) -> Tuple[List[float], List[int], List[Optional[int]]]:
    """Single-source Dijkstra over the net from its source node.

    Returns ``(distance, parent_node, parent_edge)`` lists indexed by node.
    ``weight`` selects the edge length: ``"resistance"`` (default) or
    ``"hops"`` for unweighted BFS-style distances.
    """
    if weight not in ("resistance", "hops"):
        raise InputError(f"unknown weight {weight!r}",
                         net=net.name, stage="paths")
    n = net.num_nodes
    dist = [float("inf")] * n
    parent: List[int] = [-1] * n
    parent_edge: List[Optional[int]] = [None] * n
    dist[net.source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, net.source)]
    while heap:
        d, node = heapq.heappop(heap)
        if d > dist[node]:
            continue
        for neighbor, edge_index in net.adjacency[node]:
            step = net.edges[edge_index].resistance if weight == "resistance" else 1.0
            nd = d + step
            if nd < dist[neighbor]:
                dist[neighbor] = nd
                parent[neighbor] = node
                parent_edge[neighbor] = edge_index
                heapq.heappush(heap, (nd, neighbor))
    return dist, parent, parent_edge


def extract_wire_paths(net: RCNet) -> List[WirePath]:
    """Return the wire path of every sink of ``net``.

    For a tree net each path is the unique route; for a non-tree net it is
    the minimum-resistance route, as defined in Section II-B of the paper.
    """
    dist, parent, parent_edge = shortest_path_tree(net)
    paths: List[WirePath] = []
    for sink in net.sinks:
        if dist[sink] == float("inf"):
            raise RCNetError(f"net {net.name!r}: sink {sink} unreachable")
        node_seq: List[int] = []
        edge_seq: List[int] = []
        node = sink
        while node != net.source:
            node_seq.append(node)
            edge = parent_edge[node]
            assert edge is not None
            edge_seq.append(edge)
            node = parent[node]
        node_seq.append(net.source)
        node_seq.reverse()
        edge_seq.reverse()
        paths.append(WirePath(
            net_name=net.name,
            sink=sink,
            nodes=tuple(node_seq),
            edges=tuple(edge_seq),
            resistance=dist[sink],
        ))
    return paths


def branch_nodes(net: RCNet, path: WirePath) -> List[int]:
    """Nodes of ``net`` that are *not* on ``path`` (the path's branches)."""
    on_path = set(path.nodes)
    return [node.index for node in net.nodes if node.index not in on_path]


def count_wire_paths(net: RCNet) -> int:
    """Number of wire paths of a net — one per sink (Definition 1)."""
    return net.num_sinks
