"""Core RC-network data structure.

An RC net is the parasitic model of one routed wire: grounded capacitances at
electrical nodes, resistances between nodes, a single driver (*source*) and
one or more receivers (*sinks*).  Following Section II-B of the paper, the
net is viewed as a graph ``G = (V, E, P)`` whose nodes are capacitances,
whose edges are resistances, and whose wire paths ``P`` connect the source to
each sink.

Units are SI throughout the library: ohms, farads, seconds.  Helper
constants :data:`OHM`, :data:`KOHM`, :data:`FF`, :data:`PF`, :data:`PS` and
:data:`NS` make literals readable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

# Readable unit constants (SI multipliers).
OHM = 1.0
KOHM = 1e3
FF = 1e-15
PF = 1e-12
PS = 1e-12
NS = 1e-9


class RCNetError(ValueError):
    """Raised when an RC net is structurally invalid."""


@dataclass(frozen=True)
class RCNode:
    """One electrical node of the net: a grounded parasitic capacitance.

    Attributes
    ----------
    index:
        Position in the net's node list; stable identifier used everywhere.
    name:
        Human-readable name (SPEF-style, e.g. ``"net42:3"``).
    cap:
        Grounded capacitance in farads.  May be zero for pure junction
        nodes, never negative.
    """

    index: int
    name: str
    cap: float

    def __post_init__(self) -> None:
        if self.cap < 0.0:
            raise RCNetError(f"node {self.name!r} has negative capacitance {self.cap}")


@dataclass(frozen=True)
class RCEdge:
    """A resistance connecting two nodes of the net."""

    u: int
    v: int
    resistance: float

    def __post_init__(self) -> None:
        if self.resistance <= 0.0:
            raise RCNetError(
                f"edge ({self.u}, {self.v}) has non-positive resistance {self.resistance}")
        if self.u == self.v:
            raise RCNetError(f"self-loop resistance at node {self.u}")

    def other(self, node: int) -> int:
        """Return the endpoint that is not ``node``."""
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise ValueError(f"node {node} is not an endpoint of edge ({self.u}, {self.v})")


@dataclass(frozen=True)
class CouplingCap:
    """A coupling capacitance from one node to an aggressor net.

    Sign-off SI analysis injects aggressor switching noise through these.
    ``victim`` indexes a node of this net; the aggressor side is abstracted
    to a name plus an activity factor in [0, 1] describing how often the
    aggressor switches against the victim.
    """

    victim: int
    aggressor_name: str
    cap: float
    activity: float = 0.5

    def __post_init__(self) -> None:
        if self.cap < 0.0:
            raise RCNetError(f"coupling cap at node {self.victim} is negative")
        if not 0.0 <= self.activity <= 1.0:
            raise RCNetError(f"activity must be in [0, 1], got {self.activity}")


class RCNet:
    """An immutable parasitic RC network with one source and N sinks.

    Use :class:`repro.rcnet.builder.RCNetBuilder` (or the topology
    generators) rather than constructing directly, unless the inputs are
    already validated.

    Parameters
    ----------
    name:
        Net name.
    nodes, edges:
        Node and edge lists; node indices must be ``0..len(nodes)-1`` in
        order.
    source:
        Index of the driver node.
    sinks:
        Indices of receiver nodes (at least one, none equal to the source).
    couplings:
        Optional coupling capacitances for SI analysis.
    """

    def __init__(self, name: str, nodes: Sequence[RCNode], edges: Sequence[RCEdge],
                 source: int, sinks: Sequence[int],
                 couplings: Sequence[CouplingCap] = ()) -> None:
        self.name = name
        self.nodes: Tuple[RCNode, ...] = tuple(nodes)
        self.edges: Tuple[RCEdge, ...] = tuple(edges)
        self.source = int(source)
        self.sinks: Tuple[int, ...] = tuple(int(s) for s in sinks)
        self.couplings: Tuple[CouplingCap, ...] = tuple(couplings)
        self._validate()
        self._adjacency: Optional[List[List[Tuple[int, int]]]] = None

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        n = len(self.nodes)
        if n == 0:
            raise RCNetError(f"net {self.name!r} has no nodes")
        for i, node in enumerate(self.nodes):
            if node.index != i:
                raise RCNetError(
                    f"net {self.name!r}: node at position {i} has index {node.index}")
        for edge in self.edges:
            if not (0 <= edge.u < n and 0 <= edge.v < n):
                raise RCNetError(
                    f"net {self.name!r}: edge ({edge.u}, {edge.v}) out of range")
        if not 0 <= self.source < n:
            raise RCNetError(f"net {self.name!r}: source {self.source} out of range")
        if not self.sinks:
            raise RCNetError(f"net {self.name!r} has no sinks")
        for sink in self.sinks:
            if not 0 <= sink < n:
                raise RCNetError(f"net {self.name!r}: sink {sink} out of range")
            if sink == self.source:
                raise RCNetError(f"net {self.name!r}: sink equals source")
        if len(set(self.sinks)) != len(self.sinks):
            raise RCNetError(f"net {self.name!r} has duplicate sinks")
        for coupling in self.couplings:
            if not 0 <= coupling.victim < n:
                raise RCNetError(
                    f"net {self.name!r}: coupling victim {coupling.victim} out of range")
        self._check_connected()

    def _check_connected(self) -> None:
        n = len(self.nodes)
        if n == 1:
            if self.edges:
                return
            raise RCNetError(f"net {self.name!r}: single node net cannot have sinks")
        seen = [False] * n
        stack = [self.source]
        seen[self.source] = True
        adjacency = self._build_adjacency()
        while stack:
            node = stack.pop()
            for neighbor, _ in adjacency[node]:
                if not seen[neighbor]:
                    seen[neighbor] = True
                    stack.append(neighbor)
        unreachable = [i for i, s in enumerate(seen) if not s]
        if unreachable:
            raise RCNetError(
                f"net {self.name!r}: nodes {unreachable} unreachable from source")

    # ------------------------------------------------------------------
    # Topology accessors
    # ------------------------------------------------------------------
    def _build_adjacency(self) -> List[List[Tuple[int, int]]]:
        adjacency: List[List[Tuple[int, int]]] = [[] for _ in self.nodes]
        for edge_index, edge in enumerate(self.edges):
            adjacency[edge.u].append((edge.v, edge_index))
            adjacency[edge.v].append((edge.u, edge_index))
        return adjacency

    @property
    def adjacency(self) -> List[List[Tuple[int, int]]]:
        """``adjacency[i]`` is a list of ``(neighbor, edge_index)`` pairs."""
        if self._adjacency is None:
            self._adjacency = self._build_adjacency()
        return self._adjacency

    def neighbors(self, node: int) -> List[int]:
        """Indices of the nodes directly connected to ``node``."""
        return [v for v, _ in self.adjacency[node]]

    def degree(self, node: int) -> int:
        """Number of resistances incident to ``node``."""
        return len(self.adjacency[node])

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @property
    def num_sinks(self) -> int:
        return len(self.sinks)

    def is_tree(self) -> bool:
        """True when the net has no resistive loops.

        A connected graph is a tree iff ``|E| = |V| - 1``; connectivity is
        guaranteed by construction.
        """
        return self.num_edges == self.num_nodes - 1

    @property
    def total_cap(self) -> float:
        """Sum of all grounded capacitances (farads)."""
        return sum(node.cap for node in self.nodes)

    @property
    def total_coupling_cap(self) -> float:
        """Sum of all coupling capacitances (farads)."""
        return sum(c.cap for c in self.couplings)

    @property
    def total_resistance(self) -> float:
        """Sum of all segment resistances (ohms)."""
        return sum(edge.resistance for edge in self.edges)

    def cap_vector(self) -> np.ndarray:
        """Grounded capacitance of each node as a vector, in farads."""
        return np.array([node.cap for node in self.nodes], dtype=np.float64)

    def coupling_cap_vector(self) -> np.ndarray:
        """Total coupling capacitance attached to each node, in farads."""
        caps = np.zeros(self.num_nodes, dtype=np.float64)
        for coupling in self.couplings:
            caps[coupling.victim] += coupling.cap
        return caps

    def weighted_adjacency(self) -> np.ndarray:
        """Dense symmetric matrix of resistance values (Section III-B).

        ``A[i, j]`` is the resistance between nodes i and j (0 when not
        directly connected).  Parallel resistors are combined.
        """
        matrix = np.zeros((self.num_nodes, self.num_nodes), dtype=np.float64)
        for edge in self.edges:
            if matrix[edge.u, edge.v] > 0.0:
                # Parallel combination.
                existing = matrix[edge.u, edge.v]
                combined = existing * edge.resistance / (existing + edge.resistance)
                matrix[edge.u, edge.v] = matrix[edge.v, edge.u] = combined
            else:
                matrix[edge.u, edge.v] = matrix[edge.v, edge.u] = edge.resistance
        return matrix

    def scaled(self, r_factor: float = 1.0, c_factor: float = 1.0,
               name: Optional[str] = None) -> "RCNet":
        """A copy with every resistance and capacitance scaled uniformly.

        The standard ECO primitive for layer re-assignment and width
        changes: ``r_factor`` multiplies each segment resistance,
        ``c_factor`` each grounded and coupling capacitance.  Topology,
        source, sinks and node names are unchanged, so the scaled net
        drops into the same :class:`~repro.design.netlist.DesignNet` slot.
        Both factors must be positive (``RCEdge`` forbids non-positive
        resistance and negative caps are rejected by :class:`RCNode`).
        """
        if r_factor <= 0.0 or c_factor <= 0.0:
            raise RCNetError(
                f"net {self.name!r}: scale factors must be positive, got "
                f"r_factor={r_factor}, c_factor={c_factor}")
        nodes = [RCNode(n.index, n.name, n.cap * c_factor) for n in self.nodes]
        edges = [RCEdge(e.u, e.v, e.resistance * r_factor) for e in self.edges]
        couplings = [CouplingCap(c.victim, c.aggressor_name,
                                 c.cap * c_factor, c.activity)
                     for c in self.couplings]
        return RCNet(name or self.name, nodes, edges, self.source,
                     self.sinks, couplings)

    def to_networkx(self):
        """Export to a ``networkx.Graph`` (node attr ``cap``, edge attr ``resistance``)."""
        import networkx as nx

        graph = nx.Graph(name=self.name)
        for node in self.nodes:
            graph.add_node(node.index, cap=node.cap, name=node.name)
        for edge in self.edges:
            graph.add_edge(edge.u, edge.v, resistance=edge.resistance)
        return graph

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        kind = "tree" if self.is_tree() else "non-tree"
        return (f"RCNet({self.name!r}, nodes={self.num_nodes}, edges={self.num_edges}, "
                f"sinks={self.num_sinks}, {kind})")

    def __iter__(self) -> Iterator[RCNode]:
        return iter(self.nodes)
