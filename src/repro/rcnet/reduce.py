"""RC network reduction (TICER-style node elimination).

Extracted SPEF nets carry many electrically redundant internal nodes;
timers reduce them before analysis.  This module implements the classic
first-moment-preserving elimination of internal nodes:

* eliminating node ``m`` replaces its star of resistances by the
  equivalent mesh — for every neighbor pair (a, b):
  ``G_ab += G_am * G_mb / G_m``  with ``G_m = sum of m's conductances``
  (exact Y-Δ / Kron reduction of the conductance matrix);
* node ``m``'s capacitance is redistributed onto its neighbors in
  proportion to their conductance to ``m`` — the TICER rule, which
  preserves the network's total capacitance and every node's first moment
  (Elmore delay) exactly for the eliminated-node star.

Sources, sinks and coupling-cap victims are never eliminated.  Reduction
order targets lowest-degree nodes first, which keeps fill-in small on
tree-like nets (degree-1 and degree-2 chains collapse without any
fill-in at all).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from .builder import RCNetBuilder
from .graph import RCNet


def reduce_net(net: RCNet, max_degree: int = 3,
               keep: Optional[Set[int]] = None) -> RCNet:
    """Eliminate internal nodes of degree <= ``max_degree``.

    Parameters
    ----------
    net:
        The net to reduce.
    max_degree:
        Only nodes with at most this many neighbors are eliminated
        (higher degrees cause quadratic fill-in; 2-3 is the sweet spot).
    keep:
        Extra node indices to protect (besides source, sinks and coupling
        victims).

    Returns
    -------
    RCNet
        A new net over the surviving nodes.  Total capacitance is
        preserved exactly; Elmore delays of surviving nodes are preserved
        exactly (Kron reduction is exact for the conductance matrix, and
        the TICER capacitance split preserves first moments).
    """
    protected = {net.source, *net.sinks}
    protected.update(c.victim for c in net.couplings)
    if keep:
        protected.update(keep)

    # Working state: conductance maps and capacitances, by original index.
    conductance: Dict[int, Dict[int, float]] = {
        i: {} for i in range(net.num_nodes)}
    for edge in net.edges:
        g = 1.0 / edge.resistance
        conductance[edge.u][edge.v] = conductance[edge.u].get(edge.v, 0.0) + g
        conductance[edge.v][edge.u] = conductance[edge.v].get(edge.u, 0.0) + g
    caps = {i: net.nodes[i].cap for i in range(net.num_nodes)}
    alive = set(range(net.num_nodes))

    heap: List[Tuple[int, int]] = [
        (len(conductance[i]), i) for i in alive if i not in protected]
    heapq.heapify(heap)
    while heap:
        degree, node = heapq.heappop(heap)
        if node not in alive or len(conductance[node]) != degree:
            continue  # stale entry
        if degree > max_degree:
            continue
        neighbors = list(conductance[node].items())
        total_g = sum(g for _, g in neighbors)
        if total_g <= 0.0:
            continue
        # Kron reduction: mesh between neighbor pairs.
        for i, (a, g_am) in enumerate(neighbors):
            for b, g_bm in neighbors[i + 1:]:
                g_new = g_am * g_bm / total_g
                conductance[a][b] = conductance[a].get(b, 0.0) + g_new
                conductance[b][a] = conductance[b].get(a, 0.0) + g_new
        # TICER capacitance split.
        for a, g_am in neighbors:
            caps[a] += caps[node] * g_am / total_g
        # Remove the node.
        for a, _ in neighbors:
            del conductance[a][node]
        del conductance[node]
        del caps[node]
        alive.discard(node)
        for a, _ in neighbors:
            if a not in protected:
                heapq.heappush(heap, (len(conductance[a]), a))

    return _rebuild(net, alive, conductance, caps)


def _rebuild(net: RCNet, alive: Set[int],
             conductance: Dict[int, Dict[int, float]],
             caps: Dict[int, float]) -> RCNet:
    builder = RCNetBuilder(net.name)
    ordered = sorted(alive)
    for index in ordered:
        builder.add_node(net.nodes[index].name, cap=caps[index])
    emitted = set()
    for u in ordered:
        for v, g in conductance[u].items():
            key = (min(u, v), max(u, v))
            if key in emitted or g <= 0.0:
                continue
            emitted.add(key)
            builder.add_edge(net.nodes[u].name, net.nodes[v].name, 1.0 / g)
    builder.set_source(net.nodes[net.source].name)
    for sink in net.sinks:
        builder.add_sink(net.nodes[sink].name)
    for coupling in net.couplings:
        builder.add_coupling(net.nodes[coupling.victim].name,
                             coupling.aggressor_name, coupling.cap,
                             coupling.activity)
    return builder.build()


def reduction_stats(original: RCNet, reduced: RCNet) -> Dict[str, float]:
    """Summary of a reduction: node/edge ratios and cap conservation."""
    return {
        "nodes_before": original.num_nodes,
        "nodes_after": reduced.num_nodes,
        "edges_before": original.num_edges,
        "edges_after": reduced.num_edges,
        "node_ratio": reduced.num_nodes / original.num_nodes,
        "cap_error": abs(reduced.total_cap - original.total_cap)
        / max(original.total_cap, 1e-30),
    }
