"""Synthetic RC-net topology generators.

The paper extracts parasitics from routed OpenCore designs with StarRC; this
module is the substitution: deterministic, seedable generators producing the
same structural families —

* **chain** nets: the classic RC ladder of a point-to-point route;
* **star** nets: a short trunk fanning out to many sinks;
* **tree** nets: random routing trees with realistic branching;
* **non-tree** nets: trees with extra resistive loops, as created by via
  arrays, redundant routing and coupling-aware extraction on advanced nodes.

Value ranges default to plausible advanced-node wire parasitics (segment
resistance tens of ohms, segment capacitance around a femtofarad) so Elmore
delays land in the picosecond range the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .builder import RCNetBuilder
from .graph import FF, OHM, RCNet


@dataclass
class ParasiticRanges:
    """Log-uniform sampling ranges for parasitic values.

    Attributes
    ----------
    res_min, res_max:
        Segment resistance bounds in ohms.
    cap_min, cap_max:
        Per-node grounded capacitance bounds in farads.
    coupling_min, coupling_max:
        Coupling capacitance bounds in farads.
    """

    res_min: float = 5.0 * OHM
    res_max: float = 200.0 * OHM
    cap_min: float = 0.2 * FF
    cap_max: float = 4.0 * FF
    coupling_min: float = 0.3 * FF
    coupling_max: float = 3.0 * FF

    def __post_init__(self) -> None:
        # Log bounds are recomputed per sample otherwise — a measurable
        # cost at dataset-generation volume.  Same np.log values, so the
        # sampled parasitics are bit-identical.
        self._log_res = (np.log(self.res_min), np.log(self.res_max))
        self._log_cap = (np.log(self.cap_min), np.log(self.cap_max))
        self._log_coupling = (np.log(self.coupling_min),
                              np.log(self.coupling_max))

    def sample_resistance(self, rng: np.random.Generator) -> float:
        return float(np.exp(rng.uniform(*self._log_res)))

    def sample_cap(self, rng: np.random.Generator) -> float:
        return float(np.exp(rng.uniform(*self._log_cap)))

    def sample_coupling(self, rng: np.random.Generator) -> float:
        return float(np.exp(rng.uniform(*self._log_coupling)))


def chain_net(n_nodes: int, name: str = "chain",
              resistance: float = 50.0 * OHM, cap: float = 1.0 * FF) -> RCNet:
    """Uniform RC ladder with the far end as the only sink.

    The textbook distributed-wire model; Elmore delay has the closed form
    ``sum_i R_i * C_downstream(i)``, which the analysis tests check against.
    """
    if n_nodes < 2:
        raise ValueError("chain_net needs at least 2 nodes")
    builder = RCNetBuilder(name)
    for i in range(n_nodes):
        builder.add_node(f"{name}:{i}", cap=cap)
    for i in range(n_nodes - 1):
        builder.add_edge(f"{name}:{i}", f"{name}:{i + 1}", resistance)
    builder.set_source(f"{name}:0")
    builder.add_sink(f"{name}:{n_nodes - 1}")
    return builder.build()


def star_net(n_sinks: int, name: str = "star",
             resistance: float = 50.0 * OHM, cap: float = 1.0 * FF) -> RCNet:
    """One hub node fanning out to ``n_sinks`` sinks (high-fanout net)."""
    if n_sinks < 1:
        raise ValueError("star_net needs at least 1 sink")
    builder = RCNetBuilder(name)
    builder.add_node(f"{name}:src", cap=cap)
    builder.add_node(f"{name}:hub", cap=cap)
    builder.add_edge(f"{name}:src", f"{name}:hub", resistance)
    builder.set_source(f"{name}:src")
    for i in range(n_sinks):
        builder.add_node(f"{name}:s{i}", cap=cap)
        builder.add_edge(f"{name}:hub", f"{name}:s{i}", resistance)
        builder.add_sink(f"{name}:s{i}")
    return builder.build()


def random_tree_net(rng: np.random.Generator, n_nodes: int,
                    n_sinks: Optional[int] = None, name: str = "tree",
                    ranges: Optional[ParasiticRanges] = None,
                    coupling_prob: float = 0.0,
                    max_branching: int = 3) -> RCNet:
    """Random routing tree with log-uniform parasitics.

    Nodes are attached one at a time to a random existing node whose degree
    is below ``max_branching + 1``, mimicking Steiner-tree-like routing.
    Sinks are drawn from the leaves (all leaves when ``n_sinks`` is None or
    exceeds the leaf count).
    """
    if n_nodes < 2:
        raise ValueError("random_tree_net needs at least 2 nodes")
    ranges = ranges or ParasiticRanges()
    builder = RCNetBuilder(name)
    builder.add_node(f"{name}:0", cap=ranges.sample_cap(rng))
    degree = [0]
    for i in range(1, n_nodes):
        candidates = [j for j in range(i) if degree[j] <= max_branching]
        # Uniform replace=True choice IS one integers(0, len) draw inside
        # numpy's Generator, so indexing directly keeps the stream (and
        # every generated net) bit-identical while skipping the array
        # conversion overhead of rng.choice on a Python list.
        if candidates:
            parent = candidates[int(rng.integers(0, len(candidates)))]
        else:
            parent = int(rng.integers(0, i))
        builder.add_node(f"{name}:{i}", cap=ranges.sample_cap(rng))
        builder.add_edge(f"{name}:{parent}", f"{name}:{i}",
                         ranges.sample_resistance(rng))
        degree[parent] += 1
        degree.append(1)
    builder.set_source(f"{name}:0")

    leaves = [i for i in range(1, n_nodes) if degree[i] == 1]
    if not leaves:
        leaves = [n_nodes - 1]
    if n_sinks is None or n_sinks >= len(leaves):
        sinks = leaves
    else:
        sinks = sorted(int(s) for s in
                       rng.choice(leaves, size=n_sinks, replace=False))
    for sink in sinks:
        builder.add_sink(f"{name}:{sink}")

    _attach_couplings(builder, rng, n_nodes, name, ranges, coupling_prob)
    return builder.build()


def random_nontree_net(rng: np.random.Generator, n_nodes: int,
                       n_sinks: Optional[int] = None, n_loops: int = 2,
                       name: str = "nontree",
                       ranges: Optional[ParasiticRanges] = None,
                       coupling_prob: float = 0.3,
                       max_branching: int = 3) -> RCNet:
    """Random tree plus ``n_loops`` extra resistive edges, creating loops.

    This is the structural family the paper singles out (Table III): the
    loops defeat simple path tracing and the DAC20 loop-breaking heuristic.
    """
    tree = random_tree_net(rng, n_nodes, n_sinks, name, ranges,
                           coupling_prob=0.0, max_branching=max_branching)
    ranges = ranges or ParasiticRanges()
    builder = RCNetBuilder(name)
    for node in tree.nodes:
        builder.add_node(node.name, cap=node.cap)
    for edge in tree.edges:
        builder.add_edge(tree.nodes[edge.u].name, tree.nodes[edge.v].name,
                         edge.resistance)
    builder.set_source(tree.nodes[tree.source].name)
    for sink in tree.sinks:
        builder.add_sink(tree.nodes[sink].name)

    existing = {frozenset((e.u, e.v)) for e in tree.edges}
    added = 0
    attempts = 0
    while added < n_loops and attempts < 50 * max(1, n_loops):
        attempts += 1
        u, v = rng.choice(n_nodes, size=2, replace=False)
        key = frozenset((int(u), int(v)))
        if key in existing:
            continue
        existing.add(key)
        # Loop resistances skew slightly *low*: redundant routes carry real
        # current, so the loop visibly shifts delays versus any loop-broken
        # approximation (the failure mode of the DAC20 baseline).
        builder.add_edge(tree.nodes[int(u)].name, tree.nodes[int(v)].name,
                         ranges.sample_resistance(rng) * 0.7)
        added += 1

    _attach_couplings(builder, rng, n_nodes, name, ranges, coupling_prob)
    return builder.build()


def random_net(rng: np.random.Generator, name: str = "net",
               n_nodes_range: Sequence[int] = (6, 40),
               n_sinks_range: Sequence[int] = (1, 8),
               non_tree_prob: float = 0.3,
               ranges: Optional[ParasiticRanges] = None,
               coupling_prob: float = 0.25) -> RCNet:
    """Sample one net from the mixed tree / non-tree population.

    This is the workhorse of dataset generation: node count, sink count and
    tree-ness are drawn per net so a design contains the same structural mix
    the paper's Table II reports (roughly 25-40% non-tree nets).
    """
    n_nodes = int(rng.integers(n_nodes_range[0], n_nodes_range[1] + 1))
    max_sinks = max(1, min(n_sinks_range[1], n_nodes - 1))
    n_sinks = int(rng.integers(n_sinks_range[0], max_sinks + 1))
    if rng.random() < non_tree_prob:
        n_loops = int(rng.integers(1, 4))
        return random_nontree_net(rng, n_nodes, n_sinks, n_loops, name,
                                  ranges, coupling_prob)
    return random_tree_net(rng, n_nodes, n_sinks, name, ranges, coupling_prob)


def _attach_couplings(builder: RCNetBuilder, rng: np.random.Generator,
                      n_nodes: int, name: str, ranges: ParasiticRanges,
                      coupling_prob: float) -> None:
    """Attach coupling caps to random nodes with probability ``coupling_prob``."""
    if coupling_prob <= 0.0:
        return
    for i in range(n_nodes):
        if rng.random() < coupling_prob:
            builder.add_coupling(
                f"{name}:{i}", aggressor_name=f"aggr_{name}_{i}",
                cap=ranges.sample_coupling(rng),
                activity=float(rng.uniform(0.1, 0.9)))
