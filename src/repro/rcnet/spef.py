"""SPEF (IEEE 1481) reader / writer for the subset the estimator consumes.

The paper's parasitics come from StarRC as SPEF.  This module implements the
slice of the standard that carries RC-net information:

* header (``*SPEF``, ``*DESIGN``, ``*DIVIDER``, ``*DELIMITER``, unit
  declarations ``*T_UNIT`` / ``*C_UNIT`` / ``*R_UNIT``);
* ``*D_NET`` blocks with ``*CONN``, ``*CAP`` (grounded and coupling) and
  ``*RES`` sections.

Name maps (``*NAME_MAP``) are supported on read.  Writing always emits
expanded names.  Values are scaled to SI units on read and from SI units on
write, so :class:`~repro.rcnet.graph.RCNet` objects always carry ohms and
farads regardless of the file's declared units.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, TextIO, Tuple

from .builder import RCNetBuilder
from .graph import RCNet, RCNetError

_UNIT_SCALE = {
    "S": 1.0, "MS": 1e-3, "US": 1e-6, "NS": 1e-9, "PS": 1e-12, "FS": 1e-15,
    "F": 1.0, "PF": 1e-12, "FF": 1e-15,
    "OHM": 1.0, "KOHM": 1e3, "MOHM": 1e6,
}


class SPEFError(ValueError):
    """Raised on malformed SPEF input."""


@dataclass(frozen=True)
class SkippedNet:
    """One ``*D_NET`` block dropped by lenient parsing, with its reason."""

    name: str
    line: int
    reason: str


@dataclass
class SPEFDesign:
    """Parsed contents of one SPEF file.

    ``skipped`` is populated only by lenient parsing
    (``parse_spef(text, strict=False)``): one record per malformed
    ``*D_NET`` block that was dropped instead of aborting the file.
    """

    design: str
    nets: List[RCNet] = field(default_factory=list)
    divider: str = "/"
    delimiter: str = ":"
    skipped: List[SkippedNet] = field(default_factory=list)

    def net_by_name(self, name: str) -> RCNet:
        for net in self.nets:
            if net.name == name:
                return net
        raise KeyError(f"no net named {name!r} in design {self.design!r}")

    def replace_net(self, new_net: RCNet) -> RCNet:
        """Swap in ``new_net`` for the same-named net; returns the old one.

        The SPEF-level half of an ECO parasitic update: callers hand the
        returned pre-edit net to cache invalidation before discarding it.
        """
        for index, net in enumerate(self.nets):
            if net.name == new_net.name:
                self.nets[index] = new_net
                return net
        raise KeyError(
            f"no net named {new_net.name!r} in design {self.design!r}")

    def scale_net_rc(self, name: str, r_factor: float = 1.0,
                     c_factor: float = 1.0) -> RCNet:
        """Uniformly scale one net's parasitics in place; returns the old net.

        Mirrors :meth:`~repro.design.netlist.Netlist.scale_net_rc` for
        designs that live as parsed SPEF rather than a full netlist.
        """
        old = self.net_by_name(name)
        self.replace_net(old.scaled(r_factor=r_factor, c_factor=c_factor))
        return old

    def __len__(self) -> int:
        return len(self.nets)


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
def write_spef(nets: Sequence[RCNet], design: str = "repro_design") -> str:
    """Serialize ``nets`` to SPEF text.

    Units are fixed at 1 PS / 1 FF / 1 OHM so values in the file are the
    natural magnitudes for on-chip wires.
    """
    lines: List[str] = [
        '*SPEF "IEEE 1481-1998"',
        f'*DESIGN "{design}"',
        '*DATE "generated"',
        '*VENDOR "repro"',
        '*PROGRAM "repro.rcnet.spef"',
        '*VERSION "1.0"',
        '*DESIGN_FLOW "SYNTHETIC"',
        "*DIVIDER /",
        "*DELIMITER :",
        "*BUS_DELIMITER [ ]",
        "*T_UNIT 1 PS",
        "*C_UNIT 1 FF",
        "*R_UNIT 1 OHM",
        "*L_UNIT 1 HENRY",
        "",
    ]
    for net in nets:
        lines.extend(_write_net(net))
        lines.append("")
    return "\n".join(lines)


def _write_net(net: RCNet) -> List[str]:
    total_cap_ff = (net.total_cap + net.total_coupling_cap) / 1e-15
    lines = [f"*D_NET {net.name} {total_cap_ff:.6g}"]
    lines.append("*CONN")
    lines.append(f"*I {net.nodes[net.source].name} O")
    for sink in net.sinks:
        lines.append(f"*I {net.nodes[sink].name} I")
    cap_id = 1
    lines.append("*CAP")
    for node in net.nodes:
        if node.cap > 0.0:
            lines.append(f"{cap_id} {node.name} {node.cap / 1e-15:.6g}")
            cap_id += 1
    for coupling in net.couplings:
        victim = net.nodes[coupling.victim].name
        lines.append(
            f"{cap_id} {victim} {coupling.aggressor_name} "
            f"{coupling.cap / 1e-15:.6g}")
        cap_id += 1
    lines.append("*RES")
    for res_id, edge in enumerate(net.edges, start=1):
        lines.append(
            f"{res_id} {net.nodes[edge.u].name} {net.nodes[edge.v].name} "
            f"{edge.resistance:.6g}")
    lines.append("*END")
    return lines


def save_spef(path: str, nets: Sequence[RCNet], design: str = "repro_design") -> None:
    """Write ``nets`` to ``path`` as a SPEF file."""
    with open(path, "w") as handle:
        handle.write(write_spef(nets, design))


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def parse_spef(text: str, strict: bool = True) -> SPEFDesign:
    """Parse SPEF text into a :class:`SPEFDesign`.

    In strict mode (default) any structural problem — missing sections,
    values before units, malformed records — raises :class:`SPEFError`.
    With ``strict=False`` a malformed ``*D_NET`` block is skipped and
    recorded in :attr:`SPEFDesign.skipped` with its line number and reason,
    so one corrupt net no longer discards a whole extraction run; header
    problems (missing ``*SPEF``, units) still raise, since nothing after
    them can be trusted.
    """
    parser = _SPEFParser(strict=strict)
    return parser.parse(text)


def load_spef(path: str, strict: bool = True) -> SPEFDesign:
    """Parse the SPEF file at ``path`` (see :func:`parse_spef`)."""
    with open(path) as handle:
        return parse_spef(handle.read(), strict=strict)


class _SPEFParser:
    """Line-oriented recursive-descent parser for the supported subset."""

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self.design = "unknown"
        self.divider = "/"
        self.delimiter = ":"
        self.cap_scale: Optional[float] = None
        self.res_scale: Optional[float] = None
        self.name_map: Dict[str, str] = {}
        self.nets: List[RCNet] = []
        self.skipped: List[SkippedNet] = []

    def parse(self, text: str) -> SPEFDesign:
        # Keep 1-based source line numbers so lenient-mode skip records can
        # point back into the file.
        lines = [(number, self._strip_comment(raw))
                 for number, raw in enumerate(text.splitlines(), start=1)]
        lines = [(number, line) for number, line in lines if line]
        i = 0
        saw_header = False
        while i < len(lines):
            _, line = lines[i]
            if line.startswith("*SPEF"):
                saw_header = True
                i += 1
            elif line.startswith("*DESIGN "):
                self.design = self._quoted(line)
                i += 1
            elif line.startswith("*DIVIDER"):
                self.divider = line.split()[1]
                i += 1
            elif line.startswith("*DELIMITER"):
                self.delimiter = line.split()[1]
                i += 1
            elif line.startswith("*C_UNIT"):
                self.cap_scale = self._unit(line)
                i += 1
            elif line.startswith("*R_UNIT"):
                self.res_scale = self._unit(line)
                i += 1
            elif line.startswith("*NAME_MAP"):
                i = self._parse_name_map(lines, i + 1)
            elif line.startswith("*D_NET"):
                i = self._net_block(lines, i)
            else:
                i += 1  # Other headers / *PORTS etc. are ignored.
        if not saw_header:
            raise SPEFError("missing *SPEF header")
        return SPEFDesign(self.design, self.nets, self.divider,
                          self.delimiter, self.skipped)

    def _net_block(self, lines: List[Tuple[int, str]], i: int) -> int:
        """Parse one ``*D_NET``; in lenient mode, skip-and-record failures."""
        if self.strict:
            return self._parse_net(lines, i)
        if self.cap_scale is None or self.res_scale is None:
            # A unit-less header poisons every value; not a per-net problem.
            raise SPEFError("*D_NET encountered before *C_UNIT/*R_UNIT")
        lineno, header = lines[i]
        try:
            return self._parse_net(lines, i)
        except ValueError as exc:  # SPEFError, RCNetError, bad numerics
            parts = header.split()
            name = parts[1] if len(parts) > 1 else "<unnamed>"
            try:
                name = self._expand(name)
            except SPEFError:
                pass
            self.skipped.append(SkippedNet(name, lineno, str(exc)))
            # Resynchronize: resume after this block's *END, or at the next
            # *D_NET when the block is unterminated.
            i += 1
            while i < len(lines):
                _, line = lines[i]
                if line.startswith("*END"):
                    return i + 1
                if line.startswith("*D_NET"):
                    return i
                i += 1
            return i

    # -- helpers ---------------------------------------------------------
    @staticmethod
    def _strip_comment(line: str) -> str:
        pos = line.find("//")
        if pos >= 0:
            line = line[:pos]
        return line.strip()

    @staticmethod
    def _quoted(line: str) -> str:
        match = re.search(r'"([^"]*)"', line)
        if not match:
            raise SPEFError(f"expected quoted string in {line!r}")
        return match.group(1)

    @staticmethod
    def _number(token: str, line: str) -> float:
        try:
            return float(token)
        except ValueError as exc:
            raise SPEFError(f"non-numeric value {token!r} in {line!r}") from exc

    @staticmethod
    def _unit(line: str) -> float:
        parts = line.split()
        if len(parts) != 3:
            raise SPEFError(f"malformed unit line {line!r}")
        factor = float(parts[1])
        unit = parts[2].upper()
        if unit not in _UNIT_SCALE:
            raise SPEFError(f"unknown unit {unit!r} in {line!r}")
        return factor * _UNIT_SCALE[unit]

    def _expand(self, token: str) -> str:
        """Apply the *NAME_MAP to a possibly-indexed token like ``*12:3``."""
        if not token.startswith("*"):
            return token
        head, sep, tail = token.partition(self.delimiter)
        mapped = self.name_map.get(head[1:])
        if mapped is None:
            raise SPEFError(f"unmapped name index {token!r}")
        return mapped + sep + tail

    def _parse_name_map(self, lines: List[Tuple[int, str]], i: int) -> int:
        while i < len(lines) and not lines[i][1].startswith("*") or (
                i < len(lines) and lines[i][1].startswith("*") and
                re.match(r"^\*\d+\s", lines[i][1])):
            match = re.match(r"^\*(\d+)\s+(\S+)$", lines[i][1])
            if not match:
                break
            self.name_map[match.group(1)] = match.group(2)
            i += 1
        return i

    def _parse_net(self, lines: List[Tuple[int, str]], i: int) -> int:
        if self.cap_scale is None or self.res_scale is None:
            raise SPEFError("*D_NET encountered before *C_UNIT/*R_UNIT")
        header = lines[i][1].split()
        if len(header) < 2:
            raise SPEFError(f"malformed *D_NET header {lines[i][1]!r}")
        net_name = self._expand(header[1])
        builder = RCNetBuilder(net_name)
        section = None
        source_set = False
        i += 1
        while i < len(lines):
            _, line = lines[i]
            if line.startswith("*END"):
                i += 1
                break
            if line.startswith("*CONN"):
                section = "conn"
            elif line.startswith("*CAP"):
                section = "cap"
            elif line.startswith("*RES"):
                section = "res"
            elif line.startswith("*INDUC"):
                section = "ignore"
            elif section == "conn" and (line.startswith("*I") or line.startswith("*P")):
                parts = line.split()
                if len(parts) < 3:
                    raise SPEFError(f"malformed connection {line!r}")
                pin = self._expand(parts[1])
                direction = parts[2].upper()
                if direction == "O":
                    builder.set_source(pin)
                    source_set = True
                elif direction == "I":
                    builder.add_sink(pin)
            elif section == "cap":
                self._parse_cap_record(builder, net_name, line)
            elif section == "res":
                parts = line.split()
                if len(parts) < 4:
                    raise SPEFError(f"malformed resistance record {line!r}")
                builder.add_edge(self._expand(parts[1]), self._expand(parts[2]),
                                 self._number(parts[3], line) * self.res_scale)
            i += 1
        else:
            raise SPEFError(f"net {net_name!r} not terminated by *END")
        if not source_set:
            raise SPEFError(f"net {net_name!r} has no driver (direction O) pin")
        try:
            self.nets.append(builder.build())
        except RCNetError as exc:
            raise SPEFError(f"invalid net {net_name!r}: {exc}") from exc
        return i

    def _parse_cap_record(self, builder: RCNetBuilder, net_name: str,
                          line: str) -> None:
        parts = line.split()
        if len(parts) == 3:
            # Grounded: id node value
            builder.add_cap(self._expand(parts[1]),
                            self._number(parts[2], line) * self.cap_scale)
        elif len(parts) == 4:
            # Coupling: id nodeA nodeB value.  The node belonging to this
            # net is the victim; the other is the aggressor reference.
            node_a = self._expand(parts[1])
            node_b = self._expand(parts[2])
            value = self._number(parts[3], line) * self.cap_scale
            prefix = net_name + self.delimiter
            if node_a.startswith(prefix) or node_a in builder:
                builder.add_coupling(node_a, node_b, value)
            elif node_b.startswith(prefix) or node_b in builder:
                builder.add_coupling(node_b, node_a, value)
            else:
                # Neither endpoint names this net explicitly; attach to the
                # first endpoint, which SPEF convention places on the owner.
                builder.add_coupling(node_a, node_b, value)
        else:
            raise SPEFError(f"malformed capacitance record {line!r}")
