"""RC-network substrate: graph structures, generators, SPEF I/O and paths.

This package models the parasitic RC networks whose timing the estimator
predicts, exactly as formalized in Section II-B of the paper: nodes are
capacitances, edges are resistances, and each source-to-sink route is a wire
path.
"""

from .graph import (FF, KOHM, NS, OHM, PF, PS, CouplingCap, RCEdge, RCNet,
                    RCNetError, RCNode)
from .builder import RCNetBuilder
from .paths import (WirePath, branch_nodes, count_wire_paths,
                    extract_wire_paths, shortest_path_tree)
from .topology import (ParasiticRanges, chain_net, random_net,
                       random_nontree_net, random_tree_net, star_net)
from .spef import (SkippedNet, SPEFDesign, SPEFError, load_spef, parse_spef,
                   save_spef, write_spef)
from .reduce import reduce_net, reduction_stats

__all__ = [
    "RCNet", "RCNode", "RCEdge", "CouplingCap", "RCNetError",
    "OHM", "KOHM", "FF", "PF", "PS", "NS",
    "RCNetBuilder",
    "WirePath", "extract_wire_paths", "shortest_path_tree", "branch_nodes",
    "count_wire_paths",
    "ParasiticRanges", "chain_net", "star_net", "random_tree_net",
    "random_nontree_net", "random_net",
    "SPEFDesign", "SPEFError", "SkippedNet", "parse_spef", "load_spef",
    "write_spef", "save_spef",
    "reduce_net", "reduction_stats",
]
