"""Incremental construction of :class:`~repro.rcnet.graph.RCNet` objects.

The builder keeps a mutable staging area (named nodes, edges, couplings) and
produces an immutable, validated net on :meth:`RCNetBuilder.build`.  It is
the programmatic counterpart of parsing a ``*D_NET`` block out of a SPEF
file, and the SPEF parser is implemented on top of it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .graph import CouplingCap, RCEdge, RCNet, RCNetError, RCNode


class RCNetBuilder:
    """Builds an :class:`RCNet` one node/edge at a time.

    Example
    -------
    >>> builder = RCNetBuilder("n1")
    >>> builder.add_node("drv", cap=1e-15)
    0
    >>> builder.add_node("load", cap=2e-15)
    1
    >>> builder.add_edge("drv", "load", resistance=100.0)
    >>> builder.set_source("drv")
    >>> builder.add_sink("load")
    >>> net = builder.build()
    >>> net.num_nodes, net.num_edges
    (2, 1)
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._names: List[str] = []
        self._caps: List[float] = []
        self._index: Dict[str, int] = {}
        self._edges: List[RCEdge] = []
        self._couplings: List[CouplingCap] = []
        self._source: Optional[int] = None
        self._sinks: List[int] = []

    # ------------------------------------------------------------------
    def add_node(self, name: str, cap: float = 0.0) -> int:
        """Register a node; returns its index.  Re-adding a name is an error."""
        if name in self._index:
            raise RCNetError(f"net {self.name!r}: duplicate node name {name!r}")
        index = len(self._names)
        self._index[name] = index
        self._names.append(name)
        self._caps.append(float(cap))
        return index

    def get_or_add_node(self, name: str, cap: float = 0.0) -> int:
        """Return the index of ``name``, creating the node if needed.

        When the node already exists, ``cap`` is *added* to its capacitance —
        matching SPEF semantics where ``*CAP`` entries accumulate onto
        connection points introduced earlier by ``*CONN`` or ``*RES``.
        """
        if name in self._index:
            index = self._index[name]
            self._caps[index] += float(cap)
            return index
        return self.add_node(name, cap)

    def add_cap(self, name: str, cap: float) -> None:
        """Add grounded capacitance to an existing or new node."""
        self.get_or_add_node(name, cap)

    def add_edge(self, u_name: str, v_name: str, resistance: float) -> None:
        """Connect two nodes (created on demand) with a resistance."""
        u = self.get_or_add_node(u_name)
        v = self.get_or_add_node(v_name)
        self._edges.append(RCEdge(u, v, float(resistance)))

    def add_coupling(self, victim_name: str, aggressor_name: str, cap: float,
                     activity: float = 0.5) -> None:
        """Attach a coupling capacitance to ``victim_name``."""
        victim = self.get_or_add_node(victim_name)
        self._couplings.append(
            CouplingCap(victim, aggressor_name, float(cap), activity))

    def set_source(self, name: str) -> None:
        """Mark the driver node."""
        self._source = self.get_or_add_node(name)

    def add_sink(self, name: str) -> None:
        """Mark a receiver node."""
        self._sinks.append(self.get_or_add_node(name))

    # ------------------------------------------------------------------
    def node_index(self, name: str) -> int:
        """Index of an already-registered node."""
        try:
            return self._index[name]
        except KeyError:
            raise RCNetError(f"net {self.name!r}: unknown node {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self._names)

    # ------------------------------------------------------------------
    def build(self) -> RCNet:
        """Validate and freeze into an :class:`RCNet`."""
        if self._source is None:
            raise RCNetError(f"net {self.name!r}: no source set")
        nodes = [RCNode(i, name, cap)
                 for i, (name, cap) in enumerate(zip(self._names, self._caps))]
        return RCNet(self.name, nodes, self._edges, self._source, self._sinks,
                     self._couplings)
