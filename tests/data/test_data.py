"""Dataset pipeline: generation, splits, serialization."""

import numpy as np
import pytest

from repro.data import (by_design, collect_labels, design_net_samples,
                        generate_dataset, load_dataset, nontree_only,
                        save_dataset, train_val_split, tree_only)
from repro.design import DesignSpec, generate_design


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(train_names=["PCI_BRIDGE"], test_names=["WB_DMA"],
                            scale=1500, nets_per_design=25)


class TestGeneration:
    def test_split_populated(self, dataset):
        assert len(dataset.train) > 0
        assert len(dataset.test) > 0
        assert dataset.scaler is not None and dataset.scaler.fitted

    def test_designs_tagged(self, dataset):
        assert {s.design for s in dataset.train} == {"PCI_BRIDGE"}
        assert {s.design for s in dataset.test} == {"WB_DMA"}

    def test_labels_present_and_positive(self, dataset):
        slews, delays = collect_labels(dataset.test)
        assert np.all(slews > 0.0)
        assert np.all(delays > 0.0)

    def test_features_standardized_on_train(self, dataset):
        nodes = np.vstack([s.node_features for s in dataset.train])
        np.testing.assert_allclose(nodes.mean(axis=0), 0.0, atol=1e-8)

    def test_nets_per_design_cap(self, library):
        nl = generate_design(DesignSpec("d", n_combinational=80, n_ffs=8,
                                        n_paths=5, seed=0), library)
        samples = design_net_samples(nl, max_nets=10)
        assert len(samples) == 10

    def test_si_mode_changes_labels(self, library):
        nl = generate_design(DesignSpec("d", n_combinational=30, n_ffs=6,
                                        n_paths=5, seed=0,
                                        nontree_frac=0.5), library)
        with_si = design_net_samples(nl, si_mode=True)
        without = design_net_samples(nl, si_mode=False)
        d_si = np.concatenate([s.labels()[1] for s in with_si])
        d_no = np.concatenate([s.labels()[1] for s in without])
        assert d_si.mean() > d_no.mean()

    def test_deterministic(self):
        a = generate_dataset(train_names=["DMA"], test_names=["WB_DMA"],
                             scale=2000, nets_per_design=10, seed=3)
        b = generate_dataset(train_names=["DMA"], test_names=["WB_DMA"],
                             scale=2000, nets_per_design=10, seed=3)
        np.testing.assert_allclose(a.train[0].node_features,
                                   b.train[0].node_features)
        assert a.train[0].paths[0].label_delay == \
            b.train[0].paths[0].label_delay


class TestSplits:
    def test_tree_nontree_partition(self, dataset):
        trees = tree_only(dataset.test)
        loops = nontree_only(dataset.test)
        assert len(trees) + len(loops) == len(dataset.test)
        assert all(s.is_tree for s in trees)
        assert all(not s.is_tree for s in loops)

    def test_by_design(self, dataset):
        grouped = by_design(dataset.train + dataset.test)
        assert set(grouped) == {"PCI_BRIDGE", "WB_DMA"}

    def test_train_val_split_disjoint(self, dataset):
        train, val = train_val_split(dataset.train, 0.2, seed=1)
        assert len(train) + len(val) == len(dataset.train)
        names = {s.name for s in train} & {s.name for s in val}
        assert not names

    def test_invalid_fraction(self, dataset):
        with pytest.raises(ValueError):
            train_val_split(dataset.train, 0.0)


class TestSerialization:
    def test_roundtrip(self, dataset, tmp_path):
        path = str(tmp_path / "ds.npz")
        save_dataset(path, dataset)
        loaded = load_dataset(path)
        assert len(loaded.train) == len(dataset.train)
        assert len(loaded.test) == len(dataset.test)
        a, b = dataset.test[3], loaded.test[3]
        assert a.name == b.name and a.design == b.design
        assert a.is_tree == b.is_tree
        np.testing.assert_allclose(a.node_features, b.node_features)
        np.testing.assert_allclose(a.adjacency, b.adjacency)
        for pa, pb in zip(a.paths, b.paths):
            assert pa.node_indices == pb.node_indices
            assert pa.sink == pb.sink
            np.testing.assert_allclose(pa.features, pb.features)
            assert pa.label_delay == pytest.approx(pb.label_delay)

    def test_scaler_restored(self, dataset, tmp_path):
        path = str(tmp_path / "ds.npz")
        save_dataset(path, dataset)
        loaded = load_dataset(path)
        np.testing.assert_allclose(loaded.scaler.node_mean,
                                   dataset.scaler.node_mean)

    def test_grouping_helpers(self, dataset):
        grouped = dataset.test_by_design()
        assert set(grouped) == {"WB_DMA"}
        assert dataset.num_train_paths == sum(
            s.num_paths for s in dataset.train)


class TestParallelGeneration:
    def test_n_jobs_matches_serial(self):
        """Worker-process generation is bit-identical to in-process."""
        kwargs = dict(train_names=["PCI_BRIDGE"], test_names=["WB_DMA"],
                      scale=2000, nets_per_design=8, seed=5)
        serial = generate_dataset(n_jobs=1, **kwargs)
        parallel = generate_dataset(n_jobs=2, **kwargs)
        assert len(serial.train) == len(parallel.train)
        for a, b in zip(serial.train + serial.test,
                        parallel.train + parallel.test):
            assert a.name == b.name
            np.testing.assert_allclose(a.node_features, b.node_features)
            for pa, pb in zip(a.paths, b.paths):
                assert pa.label_delay == pb.label_delay

    def test_custom_library_parallel(self, library):
        """Cells ship inside each task, so custom libraries parallelize."""
        kwargs = dict(train_names=["PCI_BRIDGE"], test_names=["WB_DMA"],
                      scale=2000, nets_per_design=5, library=library, seed=3)
        serial = generate_dataset(n_jobs=1, **kwargs)
        parallel = generate_dataset(n_jobs=2, **kwargs)
        assert len(serial.train) == len(parallel.train) > 0
        for a, b in zip(serial.train + serial.test,
                        parallel.train + parallel.test):
            assert a.name == b.name
            np.testing.assert_array_equal(a.node_features, b.node_features)
