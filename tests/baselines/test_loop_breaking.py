"""Loop breaking and broken-tree analysis (DAC20 failure mode)."""

import numpy as np
import pytest

from repro.baselines import (break_loops, tree_downstream_caps,
                             tree_elmore_delays, tree_path_to_source)
from repro.rcnet import chain_net, random_nontree_net, random_tree_net


def adjacency_of(net):
    return net.weighted_adjacency()


class TestBreakLoops:
    def test_tree_unchanged(self, tree_net):
        broken = break_loops(adjacency_of(tree_net), tree_net.source)
        assert broken.removed_edges == 0
        assert broken.removed_resistance == pytest.approx(0.0, abs=1e-9)
        assert int(np.sum(broken.parent >= 0)) == tree_net.num_nodes - 1

    def test_nontree_loses_loops(self, nontree_net):
        broken = break_loops(adjacency_of(nontree_net), nontree_net.source)
        expected_removed = nontree_net.num_edges - (nontree_net.num_nodes - 1)
        # Parallel edges collapse in the adjacency, so allow <=.
        assert 0 < broken.removed_edges <= expected_removed
        assert broken.removed_resistance > 0.0

    def test_spanning_tree_property(self, nontree_net):
        broken = break_loops(adjacency_of(nontree_net), nontree_net.source)
        roots = np.sum(broken.parent < 0)
        assert roots == 1
        assert broken.parent[nontree_net.source] == -1

    def test_bfs_tree_minimizes_hops(self):
        """The chosen tree path has minimal hop count even if a lower-
        resistance multi-hop route exists (the electrically blind choice
        that creates DAC20's induced error)."""
        adjacency = np.zeros((4, 4))
        # Direct heavy edge 0-3, light 2-hop route 0-1, 1-3.
        adjacency[0, 3] = adjacency[3, 0] = 1000.0
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        adjacency[1, 3] = adjacency[3, 1] = 1.0
        adjacency[1, 2] = adjacency[2, 1] = 1.0
        broken = break_loops(adjacency, 0)
        assert broken.parent[3] == 0  # picked the 1-hop route despite 1000 ohm

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            break_loops(np.zeros((2, 3)), 0)


class TestBrokenTreeAnalysis:
    def test_downstream_caps_chain_matches_exact(self, small_chain):
        broken = break_loops(adjacency_of(small_chain), small_chain.source)
        caps = small_chain.cap_vector()
        downstream = tree_downstream_caps(broken, caps)
        from repro.analysis import downstream_caps as exact

        np.testing.assert_allclose(downstream, exact(small_chain))

    def test_elmore_chain_matches_exact(self, small_chain):
        broken = break_loops(adjacency_of(small_chain), small_chain.source)
        elmore = tree_elmore_delays(broken, small_chain.cap_vector())
        from repro.analysis import elmore_delays as exact

        np.testing.assert_allclose(elmore, exact(small_chain), rtol=1e-9)

    def test_broken_elmore_differs_on_nontree(self, rng):
        """The induced error the paper attributes to loop breaking: broken-
        tree Elmore deviates from the exact non-tree Elmore."""
        from repro.analysis import elmore_delays as exact

        deviations = []
        for seed in range(10):
            local = np.random.default_rng(seed)
            net = random_nontree_net(local, 25, n_loops=4, name="nt")
            broken = break_loops(net.weighted_adjacency(), net.source)
            approx = tree_elmore_delays(broken, net.cap_vector())
            truth = exact(net)
            mask = truth > 0
            deviations.append(
                np.max(np.abs(approx[mask] - truth[mask]) / truth[mask]))
        assert max(deviations) > 0.10  # at least 10% off somewhere

    def test_path_to_source(self, small_chain):
        broken = break_loops(adjacency_of(small_chain), small_chain.source)
        path = tree_path_to_source(broken, 9)
        assert path == list(range(9, -1, -1))

    def test_caps_length_validated(self, small_chain):
        broken = break_loops(adjacency_of(small_chain), small_chain.source)
        with pytest.raises(ValueError):
            tree_downstream_caps(broken, np.zeros(3))
