"""Regression trees and gradient boosting (the DAC20 booster)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import GradientBoostedTrees, RegressionTree


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestRegressionTree:
    def test_perfect_split(self):
        """A single threshold separates two constant groups exactly."""
        x = np.array([[0.0], [1.0], [2.0], [10.0], [11.0], [12.0]])
        y = np.array([1.0, 1.0, 1.0, 5.0, 5.0, 5.0])
        tree = RegressionTree(max_depth=1, min_samples_leaf=1,
                              min_samples_split=2)
        pred = tree.fit(x, y).predict(x)
        np.testing.assert_allclose(pred, y)

    def test_depth_zero_predicts_mean(self, rng):
        x = rng.normal(size=(50, 3))
        y = rng.normal(size=50)
        tree = RegressionTree(max_depth=0).fit(x, y)
        np.testing.assert_allclose(tree.predict(x), y.mean())
        assert tree.depth == 0

    def test_depth_respected(self, rng):
        x = rng.normal(size=(200, 4))
        y = rng.normal(size=200)
        tree = RegressionTree(max_depth=3, min_samples_leaf=1,
                              min_samples_split=2).fit(x, y)
        assert tree.depth <= 3

    def test_min_samples_leaf(self, rng):
        x = rng.normal(size=(10, 1))
        y = rng.normal(size=10)
        tree = RegressionTree(max_depth=10, min_samples_leaf=5).fit(x, y)
        # With 10 points and min leaf 5 only one split is possible.
        assert tree.depth <= 1

    def test_constant_target_single_leaf(self):
        x = np.arange(20.0).reshape(-1, 1)
        y = np.full(20, 3.0)
        tree = RegressionTree().fit(x, y)
        assert tree.depth == 0
        np.testing.assert_allclose(tree.predict(x), 3.0)

    def test_reduces_training_error(self, rng):
        x = rng.normal(size=(300, 2))
        y = np.sin(x[:, 0]) + 0.5 * x[:, 1]
        tree = RegressionTree(max_depth=6, min_samples_leaf=2).fit(x, y)
        sse = np.mean((tree.predict(x) - y) ** 2)
        assert sse < np.var(y) * 0.3

    def test_tied_feature_values_no_bad_split(self):
        """Splits must not fall inside runs of identical feature values."""
        x = np.array([[1.0]] * 5 + [[2.0]] * 5)
        y = np.array([0, 1, 0, 1, 0, 5, 6, 5, 6, 5], dtype=float)
        tree = RegressionTree(max_depth=2, min_samples_leaf=2).fit(x, y)
        pred_lo = tree.predict(np.array([[1.0]]))[0]
        pred_hi = tree.predict(np.array([[2.0]]))[0]
        assert pred_lo == pytest.approx(0.4)
        assert pred_hi == pytest.approx(5.4)

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((1, 1)))

    def test_input_validation(self, rng):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((3,)), np.zeros(3))
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((3, 1)), np.zeros(4))
        with pytest.raises(ValueError):
            RegressionTree(max_depth=-1)


class TestGBDT:
    def test_fits_nonlinear_function(self, rng):
        x = rng.uniform(-3, 3, size=(500, 2))
        y = np.sin(x[:, 0]) * x[:, 1]
        model = GradientBoostedTrees(n_estimators=80, learning_rate=0.2,
                                     max_depth=3).fit(x, y)
        mse = np.mean((model.predict(x) - y) ** 2)
        assert mse < np.var(y) * 0.1

    def test_generalizes(self, rng):
        x = rng.uniform(-3, 3, size=(800, 1))
        y = x[:, 0] ** 2
        model = GradientBoostedTrees(n_estimators=100, learning_rate=0.15,
                                     max_depth=3).fit(x[:600], y[:600])
        mse = np.mean((model.predict(x[600:]) - y[600:]) ** 2)
        assert mse < np.var(y[600:]) * 0.1

    def test_staged_predictions_improve(self, rng):
        x = rng.normal(size=(300, 2))
        y = x[:, 0] * 2 + x[:, 1]
        model = GradientBoostedTrees(n_estimators=40).fit(x, y)
        stages = model.staged_predict(x)
        first_mse = np.mean((stages[0] - y) ** 2)
        last_mse = np.mean((stages[-1] - y) ** 2)
        assert last_mse < first_mse

    def test_subsample_runs(self, rng):
        x = rng.normal(size=(200, 2))
        y = x.sum(axis=1)
        model = GradientBoostedTrees(n_estimators=30, subsample=0.5,
                                     seed=4).fit(x, y)
        assert np.isfinite(model.predict(x)).all()

    def test_deterministic(self, rng):
        x = rng.normal(size=(100, 2))
        y = x.sum(axis=1)
        a = GradientBoostedTrees(n_estimators=20, seed=1).fit(x, y).predict(x)
        b = GradientBoostedTrees(n_estimators=20, seed=1).fit(x, y).predict(x)
        np.testing.assert_allclose(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostedTrees(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostedTrees(subsample=0.0)
        with pytest.raises(RuntimeError):
            GradientBoostedTrees().predict(np.zeros((1, 1)))
