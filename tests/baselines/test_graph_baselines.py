"""Graph-learning baselines: backbones, factories, DAC20 estimator."""

import numpy as np
import pytest

from repro.baselines import (BASELINE_KINDS, DAC20Estimator, GATBackbone,
                             GCNIIBackbone, GraphBaseline,
                             GraphSageBackbone, GraphTransformerBackbone,
                             baseline_node_inputs, binary_adjacency,
                             laplacian_positional_encoding,
                             make_baseline_factory,
                             symmetric_normalized_adjacency)
from repro.core import GNNTransConfig
from repro.features import NetContext, build_net_sample
from repro.nn import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(3)


@pytest.fixture
def sample(library, rng):
    from repro.rcnet import random_nontree_net

    net = random_nontree_net(rng, 14, n_sinks=3, n_loops=2, name="b")
    ctx = NetContext(22e-12, library.cell("NAND2_X2"),
                     [library.cell("INV_X1")] * net.num_sinks)
    return build_net_sample(net, ctx)


class TestCommonUtilities:
    def test_node_inputs_append_globals(self, sample):
        inputs = baseline_node_inputs(sample)
        assert inputs.shape == (sample.num_nodes, 8 + 3)
        # Broadcast columns are constant across nodes.
        for col in range(8, 11):
            assert np.allclose(inputs[:, col], inputs[0, col])

    def test_binary_adjacency_mean_rows(self, sample):
        mean_adj = binary_adjacency(sample.adjacency)
        rows = mean_adj.sum(axis=1)
        np.testing.assert_allclose(rows[rows > 0], 1.0)

    def test_binary_adjacency_unweighted(self, sample):
        raw = binary_adjacency(sample.adjacency, row_normalize=False)
        assert set(np.unique(raw)) <= {0.0, 1.0}

    def test_symmetric_normalized_spectrum(self, sample):
        p = symmetric_normalized_adjacency(sample.adjacency)
        np.testing.assert_allclose(p, p.T)
        eigenvalues = np.linalg.eigvalsh(p)
        assert eigenvalues.max() <= 1.0 + 1e-9
        assert eigenvalues.min() >= -1.0 - 1e-9

    def test_laplacian_pe_shape_and_padding(self, sample):
        pe = laplacian_positional_encoding(sample.adjacency, 4)
        assert pe.shape == (sample.num_nodes, 4)
        tiny = laplacian_positional_encoding(np.zeros((2, 2)), 4)
        assert tiny.shape == (2, 4)


class TestBackbones:
    @pytest.mark.parametrize("backbone_cls", [
        GraphSageBackbone, GCNIIBackbone, GATBackbone,
        GraphTransformerBackbone])
    def test_shapes_and_gradients(self, backbone_cls, sample, rng):
        backbone = backbone_cls(11, 16, 2, rng)
        x = Tensor(baseline_node_inputs(sample))
        out = backbone(x, sample.adjacency)
        assert out.shape == (sample.num_nodes, 16)
        (out * out).sum().backward()
        assert all(p.grad is not None for p in backbone.parameters())

    @pytest.mark.parametrize("backbone_cls", [
        GraphSageBackbone, GCNIIBackbone, GATBackbone,
        GraphTransformerBackbone])
    def test_layer_count_validated(self, backbone_cls, rng):
        with pytest.raises(ValueError):
            backbone_cls(11, 16, 0, rng)

    def test_sage_ignores_edge_weights(self, sample, rng):
        """Plain GraphSage sees only connectivity: scaling all resistances
        must not change its output (unlike GNNTrans's Eq. 1)."""
        backbone = GraphSageBackbone(11, 16, 2, rng)
        x = Tensor(baseline_node_inputs(sample))
        out1 = backbone(x, sample.adjacency).data
        out2 = backbone(x, sample.adjacency * 7.0).data
        np.testing.assert_allclose(out1, out2)

    def test_gcnii_initial_residual_limits_oversmoothing(self, sample, rng):
        """Even at depth 16, GCNII outputs stay node-distinguishable."""
        backbone = GCNIIBackbone(11, 16, 16, rng)
        x = Tensor(baseline_node_inputs(sample))
        out = backbone(x, sample.adjacency).data
        spread = out.std(axis=0).mean()
        assert spread > 1e-3


class TestFactories:
    def test_all_kinds_construct(self, sample):
        config = GNNTransConfig(l1=2, l2=1, hidden=16, num_heads=2)
        for kind in BASELINE_KINDS:
            factory = make_baseline_factory(kind, depth=2)
            model = factory(8, 10, config, np.random.default_rng(0))
            assert isinstance(model, GraphBaseline)
            slew, delay = model(sample)
            assert slew.shape == (sample.num_paths,)
            assert delay.shape == (sample.num_paths,)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_baseline_factory("resnet")


class TestDAC20:
    @pytest.fixture(scope="class")
    def small_dataset(self):
        from repro.data import generate_dataset

        return generate_dataset(train_names=["PCI_BRIDGE"],
                                test_names=["WB_DMA"], scale=1500,
                                nets_per_design=25)

    def test_feature_matrix_shape(self, small_dataset):
        from repro.baselines.dac20 import DAC20_FEATURE_NAMES

        estimator = DAC20Estimator(feature_scaler=small_dataset.scaler)
        sample = small_dataset.train[0]
        feats = estimator.features_for(sample)
        assert feats.shape == (sample.num_paths, len(DAC20_FEATURE_NAMES))
        assert np.all(np.isfinite(feats))

    def test_fit_evaluate(self, small_dataset):
        estimator = DAC20Estimator(feature_scaler=small_dataset.scaler,
                                   n_estimators=40)
        estimator.fit(small_dataset.train)
        metrics = estimator.evaluate(small_dataset.test)
        assert metrics.r2_slew > 0.5
        assert np.isfinite(metrics.r2_delay)

    def test_predict_sample(self, small_dataset):
        estimator = DAC20Estimator(feature_scaler=small_dataset.scaler,
                                   n_estimators=20)
        estimator.fit(small_dataset.train)
        sample = small_dataset.test[0]
        slews, delays = estimator.predict_sample(sample)
        assert slews.shape == (sample.num_paths,)

    def test_unfitted_raises(self, small_dataset):
        with pytest.raises(RuntimeError):
            DAC20Estimator().predict(small_dataset.test)

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            DAC20Estimator().fit([])

    def test_raw_feature_inversion(self, small_dataset):
        """With the scaler provided, DAC20 features must be physical —
        broken-tree Elmore values positive, in ps range."""
        estimator = DAC20Estimator(feature_scaler=small_dataset.scaler)
        feats = np.vstack([estimator.features_for(s)
                           for s in small_dataset.test])
        assert np.all(feats[:, 0] >= 0.0)        # broken elmore
        assert feats[:, 0].max() < 1000.0        # stays in ps territory
        assert np.all(feats[:, 9] > 0.0)         # input slew positive
