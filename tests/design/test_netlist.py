"""Netlist structure and validation."""

import numpy as np
import pytest

from repro.design import (DesignNet, Gate, LoadPin, Netlist, PathStage,
                          TimingPath, make_net_with_sinks)


@pytest.fixture
def simple_netlist(library, rng):
    nl = Netlist("d")
    nl.add_gate(Gate("g0", library.cell("INV_X1")))
    nl.add_gate(Gate("g1", library.cell("BUF_X2")))
    nl.add_gate(Gate("ff", library.cell("DFF_X1")))
    rc0 = make_net_with_sinks(rng, "n0", 1, non_tree=False)
    nl.add_net(DesignNet("n0", "g0", [LoadPin("g1", "A")], rc0))
    rc1 = make_net_with_sinks(rng, "n1", 1, non_tree=True)
    nl.add_net(DesignNet("n1", "g1", [LoadPin("ff", "D")], rc1))
    return nl


class TestNetlist:
    def test_counts(self, simple_netlist):
        assert simple_netlist.num_cells == 3
        assert simple_netlist.num_nets == 2
        assert simple_netlist.num_ffs == 1

    def test_net_driven_by(self, simple_netlist):
        assert simple_netlist.net_driven_by("g0").name == "n0"
        assert simple_netlist.net_driven_by("ff") is None

    def test_sink_loads_match_cells(self, simple_netlist, library):
        net = simple_netlist.nets["n0"]
        loads = simple_netlist.sink_loads(net)
        assert loads[0] == pytest.approx(library.cell("BUF_X2").input_cap)

    def test_duplicate_gate_rejected(self, simple_netlist, library):
        with pytest.raises(ValueError):
            simple_netlist.add_gate(Gate("g0", library.cell("INV_X1")))

    def test_duplicate_net_rejected(self, simple_netlist, rng):
        rc = make_net_with_sinks(rng, "n0", 1, non_tree=False)
        with pytest.raises(ValueError):
            simple_netlist.add_net(DesignNet("n0", "ff", [LoadPin("g0", "A")], rc))

    def test_one_net_per_driver(self, simple_netlist, rng):
        rc = make_net_with_sinks(rng, "nX", 1, non_tree=False)
        with pytest.raises(ValueError, match="already drives"):
            simple_netlist.add_net(DesignNet("nX", "g0", [LoadPin("ff", "D")], rc))

    def test_unknown_driver_rejected(self, simple_netlist, rng):
        rc = make_net_with_sinks(rng, "nY", 1, non_tree=False)
        with pytest.raises(ValueError, match="unknown driver"):
            simple_netlist.add_net(DesignNet("nY", "ghost", [LoadPin("g0", "A")], rc))

    def test_load_sink_count_mismatch(self, rng):
        rc = make_net_with_sinks(rng, "nZ", 2, non_tree=False)
        with pytest.raises(ValueError, match="loads"):
            DesignNet("nZ", "g0", [LoadPin("g1", "A")], rc)

    def test_path_validation(self, simple_netlist):
        good = TimingPath("p", [PathStage("g0", "A", "n0", 0)])
        simple_netlist.add_path(good)
        with pytest.raises(ValueError, match="unknown gate"):
            simple_netlist.add_path(
                TimingPath("p2", [PathStage("nope", "A", "n0", 0)]))
        with pytest.raises(ValueError, match="sink index"):
            simple_netlist.add_path(
                TimingPath("p3", [PathStage("g0", "A", "n0", 5)]))

    def test_statistics(self, simple_netlist):
        stats = simple_netlist.statistics()
        assert stats["cells"] == 3
        assert stats["nets"] == 2
        assert stats["nontree_nets"] == 1
