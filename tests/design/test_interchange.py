"""Verilog writer/parser and the Verilog+SPEF+Liberty design interchange."""

import numpy as np
import pytest

from repro.design import (DesignSpec, InterchangeError, VerilogError,
                          connectivity_from_module, export_design,
                          generate_benchmark, generate_design, import_design,
                          parse_verilog, write_verilog)


@pytest.fixture(scope="module")
def design(library):
    return generate_design(
        DesignSpec("vtest", n_combinational=50, n_ffs=8, n_paths=10, seed=21),
        library)


@pytest.fixture(scope="module")
def library():
    from repro.liberty import make_default_library

    return make_default_library()


class TestVerilogWriter:
    def test_module_header(self, design):
        text = write_verilog(design)
        assert text.startswith("// structural netlist")
        assert "module vtest (clk);" in text
        assert text.rstrip().endswith("endmodule")

    def test_every_net_declared(self, design):
        text = write_verilog(design)
        for net_name in design.nets:
            assert net_name in text

    def test_every_gate_instantiated(self, design):
        text = write_verilog(design)
        for gate_name, gate in design.gates.items():
            assert gate_name in text
            assert gate.cell.name in text

    def test_escaped_identifiers(self, design):
        """Hierarchical names must use the backslash escape."""
        text = write_verilog(design)
        assert "\\vtest/" in text


class TestVerilogParser:
    def test_roundtrip_connectivity(self, design, library):
        module = parse_verilog(write_verilog(design))
        assert module.name == design.name
        assert len(module.instances) == design.num_cells
        gates, nets = connectivity_from_module(module, library)
        assert set(gates) == set(design.gates)
        assert set(nets) == set(design.nets)
        for name, net in design.nets.items():
            driver, loads = nets[name]
            assert driver == net.driver
            assert sorted((l.gate, l.pin) for l in loads) == \
                sorted((l.gate, l.pin) for l in net.loads)

    def test_no_module_rejected(self):
        with pytest.raises(VerilogError, match="module"):
            parse_verilog("wire x;")

    def test_no_instances_rejected(self):
        with pytest.raises(VerilogError, match="instances"):
            parse_verilog("module m (clk);\n  wire a;\nendmodule\n")

    def test_unknown_cell_rejected(self, design, library):
        text = write_verilog(design).replace("INV_X", "MYSTERY_X")
        module = parse_verilog(text)
        with pytest.raises(VerilogError, match="unknown cell"):
            connectivity_from_module(module, library)

    def test_multiple_drivers_rejected(self, library):
        text = """
module m (clk);
  wire n1;
  INV_X1 g1 ( .A(1'b0), .Z(n1) );
  INV_X1 g2 ( .A(1'b0), .Z(n1) );
endmodule
"""
        module = parse_verilog(text)
        with pytest.raises(VerilogError, match="multiple drivers"):
            connectivity_from_module(module, library)


class TestDesignInterchange:
    def test_full_roundtrip_structure(self, design, library):
        verilog, spef = export_design(design)
        rebuilt = import_design(verilog, spef, library)
        assert rebuilt.num_cells == design.num_cells
        assert rebuilt.num_nets == design.num_nets
        assert rebuilt.num_ffs == design.num_ffs
        assert rebuilt.num_nontree_nets == design.num_nontree_nets

    def test_roundtrip_preserves_golden_timing(self, design, library):
        """The rebuilt design times identically (quiet mode): connectivity,
        parasitics and load caps all survive the file formats."""
        from repro.analysis import GoldenTimer

        verilog, spef = export_design(design)
        rebuilt = import_design(verilog, spef, library)
        timer = GoldenTimer(si_mode=False)
        for name, net in design.nets.items():
            original = timer.analyze(net.rcnet, 20e-12,
                                     design.sink_loads(net)).delays()
            clone_net = rebuilt.nets[name]
            clone = timer.analyze(clone_net.rcnet, 20e-12,
                                  rebuilt.sink_loads(clone_net)).delays()
            np.testing.assert_allclose(np.sort(clone), np.sort(original),
                                       rtol=1e-4)

    def test_sink_load_mapping_preserved(self, design, library):
        """Each RC sink maps back to the same receiving cell."""
        verilog, spef = export_design(design)
        rebuilt = import_design(verilog, spef, library)
        for name, net in design.nets.items():
            clone = rebuilt.nets[name]
            original_pairs = {(l.gate, l.pin) for l in net.loads}
            clone_pairs = {(l.gate, l.pin) for l in clone.loads}
            assert original_pairs == clone_pairs

    def test_missing_spef_net_rejected(self, design, library):
        verilog, spef = export_design(design)
        some_net = next(iter(design.nets))
        broken = spef.replace(f"*D_NET {some_net} ", "*D_NET renamed_away ")
        with pytest.raises(InterchangeError):
            import_design(verilog, broken, library)

    def test_spef_connection_points_named_by_pin(self, design):
        _, spef = export_design(design)
        assert ":Z" in spef   # driver connection points
        assert ":D" in spef or ":A" in spef  # receiver connection points

    def test_benchmark_roundtrip(self, library):
        netlist = generate_benchmark("LDPC", library, scale=1500)
        verilog, spef = export_design(netlist)
        rebuilt = import_design(verilog, spef, library)
        assert rebuilt.num_nets == netlist.num_nets
