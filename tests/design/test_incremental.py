"""Incremental STA: cache correctness and invalidation."""

import numpy as np
import pytest

from repro.design import (DesignSpec, ElmoreWireModel, Gate,
                          GoldenWireModel, IncrementalSTAEngine, STAEngine,
                          generate_design)


@pytest.fixture
def design(library):
    return generate_design(
        DesignSpec("inc", n_combinational=40, n_ffs=6, n_paths=10, seed=17),
        library)


@pytest.fixture(scope="module")
def library():
    from repro.liberty import make_default_library

    return make_default_library()


class TestCacheCorrectness:
    def test_matches_cold_engine(self, design):
        """Incremental results equal the plain engine's on a cold cache."""
        plain = STAEngine(design, ElmoreWireModel()).analyze_design()
        incremental = IncrementalSTAEngine(design, ElmoreWireModel())
        results = incremental.analyze_paths()
        # Slew-quantized cache keys allow reuse within one quantum, so
        # agreement is to quantization precision, not bit-exact.
        np.testing.assert_allclose(
            [p.arrival for p in results],
            plain.arrivals(), rtol=1e-4)

    def test_second_pass_hits_cache(self, design):
        engine = IncrementalSTAEngine(design, ElmoreWireModel())
        engine.analyze_paths()
        misses_first = engine.misses
        engine.analyze_paths()
        assert engine.misses == misses_first  # everything reused
        assert engine.hit_rate > 0.4

    def test_repeat_pass_identical(self, design):
        engine = IncrementalSTAEngine(design, ElmoreWireModel())
        a = [p.arrival for p in engine.analyze_paths()]
        b = [p.arrival for p in engine.analyze_paths()]
        np.testing.assert_allclose(a, b)

    def test_invalid_quantum(self, design):
        with pytest.raises(ValueError):
            IncrementalSTAEngine(design, ElmoreWireModel(), slew_quantum=0.0)


class TestInvalidation:
    def _upsize(self, design, library, gate_name):
        gate = design.gates[gate_name]
        stronger = f"{gate.cell.function}_X{gate.cell.drive_strength * 2}"
        design.gates[gate_name] = Gate(gate_name, library.cell(stronger))

    def test_gate_swap_reflected_after_invalidation(self, design, library):
        engine = IncrementalSTAEngine(design, ElmoreWireModel())
        before = [p.arrival for p in engine.analyze_paths()]

        # Upsize any upsizable combinational gate on a recorded path.
        victim = next(
            s.gate for path in design.paths for s in path.stages
            if not design.gates[s.gate].is_sequential
            and design.gates[s.gate].cell.drive_strength < 8)
        self._upsize(design, library, victim)
        dropped = engine.invalidate_gate(victim)
        assert dropped >= 1

        after = engine.analyze_paths()
        fresh = IncrementalSTAEngine(design, ElmoreWireModel()).analyze_paths()
        np.testing.assert_allclose([p.arrival for p in after],
                                   [p.arrival for p in fresh], rtol=1e-4)

    def test_invalidate_covers_loaded_nets(self, design):
        """Invalidation drops entries for nets the gate loads, not just the
        one it drives (its pin capacitance affects upstream timing)."""
        engine = IncrementalSTAEngine(design, ElmoreWireModel())
        engine.analyze_paths()
        some_load = None
        for net in design.nets.values():
            for load in net.loads:
                if not design.gates[load.gate].is_sequential:
                    some_load = load.gate
                    break
            if some_load:
                break
        dropped = engine.invalidate_gate(some_load)
        assert dropped >= 0  # no stale entries may remain
        # After invalidation a re-analysis still matches a cold engine.
        after = engine.analyze_paths()
        fresh = IncrementalSTAEngine(design, ElmoreWireModel()).analyze_paths()
        np.testing.assert_allclose([p.arrival for p in after],
                                   [p.arrival for p in fresh], rtol=1e-4)

    def test_clear(self, design):
        engine = IncrementalSTAEngine(design, ElmoreWireModel())
        engine.analyze_paths()
        engine.clear()
        assert engine._cache == {}
