"""Incremental STA: cache correctness and invalidation."""

import numpy as np
import pytest

from repro.design import (DesignSpec, ElmoreWireModel, Gate,
                          GoldenWireModel, IncrementalSTAEngine, STAEngine,
                          generate_design)


@pytest.fixture
def design(library):
    return generate_design(
        DesignSpec("inc", n_combinational=40, n_ffs=6, n_paths=10, seed=17),
        library)


@pytest.fixture(scope="module")
def library():
    from repro.liberty import make_default_library

    return make_default_library()


class TestCacheCorrectness:
    def test_matches_cold_engine(self, design):
        """Incremental results equal the plain engine's on a cold cache."""
        plain = STAEngine(design, ElmoreWireModel()).analyze_design()
        incremental = IncrementalSTAEngine(design, ElmoreWireModel())
        results = incremental.analyze_paths()
        # Slew-quantized cache keys allow reuse within one quantum, so
        # agreement is to quantization precision, not bit-exact.
        np.testing.assert_allclose(
            [p.arrival for p in results],
            plain.arrivals(), rtol=1e-4)

    def test_second_pass_hits_cache(self, design):
        engine = IncrementalSTAEngine(design, ElmoreWireModel())
        engine.analyze_paths()
        misses_first = engine.misses
        engine.analyze_paths()
        assert engine.misses == misses_first  # everything reused
        assert engine.hit_rate > 0.4

    def test_repeat_pass_identical(self, design):
        engine = IncrementalSTAEngine(design, ElmoreWireModel())
        a = [p.arrival for p in engine.analyze_paths()]
        b = [p.arrival for p in engine.analyze_paths()]
        np.testing.assert_allclose(a, b)

    def test_invalid_quantum(self, design):
        with pytest.raises(ValueError):
            IncrementalSTAEngine(design, ElmoreWireModel(), slew_quantum=0.0)


class TestInvalidation:
    def _upsize(self, design, library, gate_name):
        gate = design.gates[gate_name]
        stronger = f"{gate.cell.function}_X{gate.cell.drive_strength * 2}"
        design.gates[gate_name] = Gate(gate_name, library.cell(stronger))

    def test_gate_swap_reflected_after_invalidation(self, design, library):
        engine = IncrementalSTAEngine(design, ElmoreWireModel())
        before = [p.arrival for p in engine.analyze_paths()]

        # Upsize any upsizable combinational gate on a recorded path.
        victim = next(
            s.gate for path in design.paths for s in path.stages
            if not design.gates[s.gate].is_sequential
            and design.gates[s.gate].cell.drive_strength < 8)
        self._upsize(design, library, victim)
        dropped = engine.invalidate_gate(victim)
        assert dropped >= 1

        after = engine.analyze_paths()
        fresh = IncrementalSTAEngine(design, ElmoreWireModel()).analyze_paths()
        np.testing.assert_allclose([p.arrival for p in after],
                                   [p.arrival for p in fresh], rtol=1e-4)

    def test_invalidate_covers_loaded_nets(self, design):
        """Invalidation drops entries for nets the gate loads, not just the
        one it drives (its pin capacitance affects upstream timing)."""
        engine = IncrementalSTAEngine(design, ElmoreWireModel())
        engine.analyze_paths()
        some_load = None
        for net in design.nets.values():
            for load in net.loads:
                if not design.gates[load.gate].is_sequential:
                    some_load = load.gate
                    break
            if some_load:
                break
        dropped = engine.invalidate_gate(some_load)
        assert dropped >= 0  # no stale entries may remain
        # After invalidation a re-analysis still matches a cold engine.
        after = engine.analyze_paths()
        fresh = IncrementalSTAEngine(design, ElmoreWireModel()).analyze_paths()
        np.testing.assert_allclose([p.arrival for p in after],
                                   [p.arrival for p in fresh], rtol=1e-4)

    def test_clear(self, design):
        engine = IncrementalSTAEngine(design, ElmoreWireModel())
        engine.analyze_paths()
        engine.clear()
        assert engine._cache == {}


class TestConcurrency:
    """The ECO stage memo is shared between serve threads and edit threads;
    the timing math must stay correct while both run at once."""

    def test_parallel_analysis_matches_cold_engine(self, design):
        import threading

        engine = IncrementalSTAEngine(design, ElmoreWireModel())
        results = {}
        errors = []
        barrier = threading.Barrier(4)

        def analyze(index):
            try:
                barrier.wait(timeout=10.0)
                results[index] = [p.arrival for p in engine.analyze_paths()]
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=analyze, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors
        fresh = [p.arrival
                 for p in IncrementalSTAEngine(
                     design, ElmoreWireModel()).analyze_paths()]
        for arrivals in results.values():
            np.testing.assert_allclose(arrivals, fresh, rtol=1e-4)
        # Concurrent same-key misses may double-compute (documented), so
        # hits+misses can exceed one pass's stage count — but the counters
        # themselves must not lose updates: every lookup is accounted.
        stages = sum(len(p.stages) for p in design.paths)
        assert engine.hits + engine.misses == 4 * stages

    def test_analysis_races_invalidation_without_corruption(self, design):
        import threading

        engine = IncrementalSTAEngine(design, ElmoreWireModel())
        net_names = list(design.nets)[:8]
        stop = threading.Event()
        errors = []

        def invalidate_loop():
            try:
                while not stop.is_set():
                    engine.invalidate_nets(net_names)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        churn = threading.Thread(target=invalidate_loop)
        churn.start()
        try:
            for _ in range(3):
                arrivals = [p.arrival for p in engine.analyze_paths()]
        finally:
            stop.set()
            churn.join(timeout=30.0)
        assert not errors
        fresh = [p.arrival
                 for p in IncrementalSTAEngine(
                     design, ElmoreWireModel()).analyze_paths()]
        np.testing.assert_allclose(arrivals, fresh, rtol=1e-4)
