"""ECO timing: net edits, dirty propagation, stale-cache regressions.

The headline invariant under test is the **parity contract**: after any
sequence of edits, :class:`ECOTimingEngine` results are bitwise identical
to a cold full :class:`STAEngine` pass over the edited netlist.
"""

import numpy as np
import pytest

from repro.analysis import GoldenTimer
from repro.design import (DesignSpec, ECOTimingEngine, EditCommand,
                          ElmoreWireModel, Gate, GoldenWireModel,
                          IncrementalSTAEngine, LoadPin, Netlist, PathStage,
                          STAEngine, TimingPath, apply_edit_command,
                          generate_design, load_edit_script)
from repro.design.netlist import DesignNet
from repro.liberty import Cell, TimingArc, make_default_library
from repro.rcnet import RCNetBuilder
from repro.robustness.errors import InputError


@pytest.fixture(scope="module")
def library():
    return make_default_library()


@pytest.fixture
def design(library):
    return generate_design(
        DesignSpec("eco", n_combinational=30, n_ffs=5, n_paths=8, seed=11),
        library)


def _stub_net(name, n_sinks=1):
    builder = RCNetBuilder(name)
    builder.add_node(f"{name}:0", cap=0.3e-15)
    builder.set_source(f"{name}:0")
    for i in range(n_sinks):
        builder.add_node(f"{name}:{i + 1}", cap=0.25e-15)
        builder.add_edge(f"{name}:0", f"{name}:{i + 1}",
                         resistance=30.0 + 5.0 * i)
        builder.add_sink(f"{name}:{i + 1}")
    return builder.build()


def _two_arc_cell(library):
    """A two-input cell whose A and B arcs have genuinely different tables.

    The default library characterizes every pin of a cell identically, so
    a cache key that forgot the input pin would still produce the right
    numbers there.  Borrowing the X1 tables for pin A and the X4 tables
    for pin B makes the two arcs observably different.
    """
    slow = library.cell("INV_X1").arcs["A"]
    fast = library.cell("INV_X4").arcs["A"]
    return Cell(name="NAND2_AB", function="NAND2", drive_strength=2,
                num_inputs=2, input_cap=1.2e-15, drive_resistance=1400.0,
                arcs={"A": TimingArc("A", slow.delay, slow.output_slew),
                      "B": TimingArc("B", fast.delay, fast.output_slew)})


def _two_arc_netlist(library):
    """ff0 -CK-> n0 -> g1 (two-arc cell) -> n1 -> ff1, one path per arc."""
    netlist = Netlist("two_arc")
    netlist.add_gate(Gate("ff0", library.cell("DFF_X1")))
    netlist.add_gate(Gate("g1", _two_arc_cell(library)))
    netlist.add_gate(Gate("ff1", library.cell("DFF_X1")))
    netlist.add_net(DesignNet("n0", driver="ff0",
                              loads=[LoadPin("g1", "A")],
                              rcnet=_stub_net("n0")))
    netlist.add_net(DesignNet("n1", driver="g1",
                              loads=[LoadPin("ff1", "D")],
                              rcnet=_stub_net("n1")))
    netlist.add_path(TimingPath("via_a", [PathStage("ff0", "CK", "n0", 0),
                                          PathStage("g1", "A", "n1", 0)]))
    netlist.add_path(TimingPath("via_b", [PathStage("ff0", "CK", "n0", 0),
                                          PathStage("g1", "B", "n1", 0)]))
    return netlist


class TestStageKeyCarriesInputPin:
    """Regression: the stage-cache key must include the resolved arc pin.

    The old key was ``(net, cell, slew)``: two paths entering the same
    gate through different arcs at the same input slew collided, and the
    second silently replayed the first's timing.  Both paths here reach
    g1 at the identical slew (same launch stage), so under the old key
    ``via_b`` would be served ``via_a``'s numbers and diverge from a
    cold pass — exactly what this test rejects.
    """

    def test_distinct_arcs_do_not_share_an_entry(self, library):
        netlist = _two_arc_netlist(library)
        engine = IncrementalSTAEngine(netlist, ElmoreWireModel(),
                                      slew_quantum=None)
        via_a, via_b = engine.analyze_paths()
        # The arcs have different tables, so sharing would be observable.
        assert via_a.arrival != via_b.arrival
        # Each result is bitwise what a cold engine computes for it.
        cold = STAEngine(netlist, ElmoreWireModel(), lenient_pins=False)
        assert via_a.arrival == cold.path_arrival(netlist.paths[0]).arrival
        assert via_b.arrival == cold.path_arrival(netlist.paths[1]).arrival

    def test_cache_holds_one_entry_per_arc(self, library):
        netlist = _two_arc_netlist(library)
        engine = IncrementalSTAEngine(netlist, ElmoreWireModel(),
                                      slew_quantum=None)
        engine.analyze_paths()
        pins = {key[2] for key in engine._cache if key[0] == "n1"}
        assert pins == {"A", "B"}

    def test_second_pass_still_hits(self, library):
        netlist = _two_arc_netlist(library)
        engine = IncrementalSTAEngine(netlist, ElmoreWireModel(),
                                      slew_quantum=None)
        first = [p.arrival for p in engine.analyze_paths()]
        misses = engine.misses
        second = [p.arrival for p in engine.analyze_paths()]
        assert engine.misses == misses
        assert first == second


class TestStrictPinResolution:
    """Regression: a stage pin with no timing arc must not silently fall
    back to the cell's first arc unless the caller opted in."""

    def _netlist_with_bad_pin(self, library):
        netlist = _two_arc_netlist(library)
        netlist.paths[1] = TimingPath(
            "bad", [PathStage("ff0", "CK", "n0", 0),
                    PathStage("g1", "Z", "n1", 0)])
        return netlist

    def test_strict_engine_raises_typed_error(self, library):
        netlist = self._netlist_with_bad_pin(library)
        engine = IncrementalSTAEngine(netlist, ElmoreWireModel(),
                                      lenient_pins=False)
        with pytest.raises(InputError, match="no timing arc for pin 'Z'"):
            engine.analyze_paths()

    def test_error_carries_provenance(self, library):
        netlist = self._netlist_with_bad_pin(library)
        engine = IncrementalSTAEngine(netlist, ElmoreWireModel(),
                                      lenient_pins=False)
        with pytest.raises(InputError) as excinfo:
            engine.analyze_paths()
        message = str(excinfo.value)
        assert "n1" in message and "lenient_pins" in message

    def test_lenient_optin_times_through_first_arc(self, library):
        netlist = self._netlist_with_bad_pin(library)
        lenient = IncrementalSTAEngine(netlist, ElmoreWireModel(),
                                       slew_quantum=None, lenient_pins=True)
        results = lenient.analyze_paths()
        # Legacy behavior: pin Z resolves to the first arc, which is A.
        assert results[1].arrival == results[0].arrival

    def test_sta_engine_strict_mode_raises_too(self, library):
        netlist = self._netlist_with_bad_pin(library)
        strict = STAEngine(netlist, ElmoreWireModel(), lenient_pins=False)
        with pytest.raises(InputError, match="no timing arc"):
            strict.analyze_design()


class TestReverseLoadIndex:
    """Regression: gate invalidation used an O(nets x loads) scan; the
    reverse index must agree with that scan exactly."""

    def _scan_loaded_nets(self, netlist, gate_name):
        return {net.name for net in netlist.nets.values()
                if any(load.gate == gate_name for load in net.loads)}

    def test_index_matches_scan_for_every_gate(self, design):
        for gate_name in design.gates:
            assert set(design.nets_loaded_by(gate_name)) == \
                self._scan_loaded_nets(design, gate_name)

    def test_index_tracks_buffer_insertion(self, design, library):
        net_name = design.paths[0].stages[0].net
        design.insert_buffer(net_name, 0, library.cell("BUF_X2"))
        for gate_name in design.gates:
            assert set(design.nets_loaded_by(gate_name)) == \
                self._scan_loaded_nets(design, gate_name)

    def test_invalidation_set_identical_to_scan(self, design):
        engine = IncrementalSTAEngine(design, ElmoreWireModel())
        engine.analyze_paths()
        victim = design.paths[0].stages[1].gate
        stale = self._scan_loaded_nets(design, victim)
        driven = design.net_driven_by(victim)
        if driven is not None:
            stale.add(driven.name)
        before = set(engine._cache)
        expected_dropped = {key for key in before if key[0] in stale}
        dropped = engine.invalidate_gate(victim)
        assert before - set(engine._cache) == expected_dropped
        assert dropped == len(expected_dropped)


class TestNetEditAPI:
    def test_resize_dirties_driven_and_loaded_nets(self, design, library):
        victim = next(g for g in design.gates.values()
                      if not g.is_sequential and g.cell.drive_strength == 1)
        stronger = library.cell(f"{victim.cell.function}_X2")
        edit = design.resize_gate(victim.name, stronger)
        assert design.gates[victim.name].cell is stronger
        expected = set(design.nets_loaded_by(victim.name))
        driven = design.net_driven_by(victim.name)
        if driven is not None:
            expected.add(driven.name)
        assert set(edit.dirty_nets) == expected
        assert edit.rewritten_paths == ()
        assert edit.details["new_cell"] == stronger.name

    def test_resize_rejects_cell_missing_arcs(self, design, library):
        victim = next(g for g in design.gates.values()
                      if g.cell.num_inputs == 2 and not g.is_sequential)
        with pytest.raises(InputError, match="lacks timing arcs"):
            design.resize_gate(victim.name, library.cell("INV_X4"))

    def test_resize_allows_arcless_load_pins(self, design, library):
        # A flip-flop's capture D pin has no timing arc; resizing the FF
        # must still be legal (the pin is capacitance-only).
        ff = next(g for g in design.gates.values() if g.is_sequential)
        edit = design.resize_gate(ff.name, library.cell("DFF_X2"))
        assert edit.kind == "resize_gate"

    def test_resize_unknown_gate(self, design, library):
        with pytest.raises(InputError, match="unknown gate"):
            design.resize_gate("nope", library.cell("INV_X1"))

    def test_reconnect_rewrites_downstream_stage_pin(self, library):
        netlist = _two_arc_netlist(library)
        edit = netlist.reconnect_sink("n0", 0, "B")
        assert netlist.nets["n0"].loads[0].pin == "B"
        assert edit.dirty_nets == ()
        assert set(edit.rewritten_paths) == {0, 1}
        assert all(p.stages[1].input_pin == "B" for p in netlist.paths)

    def test_reconnect_requires_an_arc(self, library):
        netlist = _two_arc_netlist(library)
        with pytest.raises(InputError, match="no arc for pin 'Q'"):
            netlist.reconnect_sink("n0", 0, "Q")

    def test_scale_swaps_rcnet_and_keeps_old(self, library):
        netlist = _two_arc_netlist(library)
        old = netlist.nets["n0"].rcnet
        edit = netlist.scale_net_rc("n0", r_factor=2.0, c_factor=0.5)
        assert edit.old_rcnet is old
        assert edit.dirty_nets == ("n0",)
        assert netlist.nets["n0"].rcnet is not old

    def test_scale_unknown_net(self, library):
        netlist = _two_arc_netlist(library)
        with pytest.raises(InputError, match="unknown net"):
            netlist.scale_net_rc("n9")

    def test_insert_buffer_rewires_sink_and_paths(self, library):
        netlist = _two_arc_netlist(library)
        edit = netlist.insert_buffer("n1", 0, library.cell("BUF_X2"))
        buf = edit.details["buffer_gate"]
        stub = edit.details["new_net"]
        assert netlist.nets["n1"].loads[0] == LoadPin(buf, "A")
        assert netlist.nets[stub].loads == [LoadPin("ff1", "D")]
        assert edit.dirty_nets == ("n1",)
        assert set(edit.rewritten_paths) == {0, 1}
        for path in netlist.paths:
            assert len(path.stages) == 3
            assert path.stages[2] == PathStage(buf, "A", stub, 0)
        # The edited netlist still times cleanly with a cold engine.
        report = STAEngine(netlist, ElmoreWireModel(),
                           lenient_pins=False).analyze_design()
        assert all(np.isfinite(report.arrivals()))

    def test_insert_buffer_bad_sink_index(self, library):
        netlist = _two_arc_netlist(library)
        with pytest.raises(InputError, match="out of range"):
            netlist.insert_buffer("n1", 3, library.cell("BUF_X2"))


class TestEditScripts:
    def _document(self, edits):
        return {"schema": "repro-eco-edits/1", "edits": edits}

    def test_roundtrip_all_ops(self, library):
        netlist = _two_arc_netlist(library)
        commands = load_edit_script(self._document([
            {"op": "scale_net_rc", "net": "n0", "r_factor": 1.2},
            {"op": "reconnect_sink", "net": "n0", "sink_index": 0,
             "new_pin": "B"},
            {"op": "insert_buffer", "net": "n1", "sink_index": 0,
             "cell": "BUF_X2"},
        ]))
        assert [c.op for c in commands] == ["scale_net_rc",
                                            "reconnect_sink",
                                            "insert_buffer"]
        assert commands[0].params["c_factor"] == 1.0  # defaulted
        for command in commands:
            edit = apply_edit_command(netlist, library, command)
            assert edit.kind == command.op

    def test_wrong_schema_rejected(self):
        with pytest.raises(InputError, match="schema"):
            load_edit_script({"schema": "repro-eco-edits/0", "edits": []})

    def test_unknown_op_rejected(self):
        with pytest.raises(InputError, match="unknown op"):
            load_edit_script(self._document([{"op": "demolish"}]))

    def test_missing_field_rejected(self):
        with pytest.raises(InputError, match="missing field 'cell'"):
            load_edit_script(self._document([{"op": "resize_gate",
                                              "gate": "g1"}]))

    def test_bool_is_not_an_int(self):
        with pytest.raises(InputError, match="sink_index"):
            load_edit_script(self._document(
                [{"op": "reconnect_sink", "net": "n0", "sink_index": True,
                  "new_pin": "B"}]))

    def test_unknown_cell_surfaces_as_input_error(self, library):
        netlist = _two_arc_netlist(library)
        command = EditCommand("resize_gate", {"gate": "g1",
                                              "cell": "UNOBTAINIUM_X9"})
        with pytest.raises(InputError, match="resize_gate"):
            apply_edit_command(netlist, library, command)


def _random_edit(netlist, library, rng):
    """One random applicable edit; returns its NetEdit record."""
    op = rng.choice(["resize", "scale", "reconnect", "buffer"])
    if op == "resize":
        name = str(rng.choice(sorted(netlist.gates)))
        gate = netlist.gates[name]
        strength = int(rng.choice([1, 2] if gate.is_sequential
                                  else [1, 2, 4, 8]))
        return netlist.resize_gate(
            name, library.cell(f"{gate.cell.function}_X{strength}"))
    net_name = str(rng.choice(sorted(netlist.nets)))
    net = netlist.nets[net_name]
    if net.fanout == 0:
        op = "scale"
    if op == "scale":
        return netlist.scale_net_rc(
            net_name, r_factor=float(rng.uniform(0.7, 1.4)),
            c_factor=float(rng.uniform(0.7, 1.4)))
    sink = int(rng.integers(net.fanout))
    if op == "buffer":
        return netlist.insert_buffer(net_name, sink,
                                     library.cell("BUF_X2"))
    load = net.loads[sink]
    pins = sorted(netlist.gates[load.gate].cell.arcs)
    return netlist.reconnect_sink(net_name, sink, str(rng.choice(pins)))


class TestParityContract:
    """Property: random edit scripts preserve bitwise parity with a cold
    full pass — arrivals, totals, and per-stage breakdowns."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_edit_script_is_bitwise_identical(self, library, seed):
        rng = np.random.default_rng(seed)
        netlist = generate_design(
            DesignSpec(f"eco_prop{seed}", n_combinational=24, n_ffs=4,
                       n_paths=6, seed=50 + seed), library)
        engine = ECOTimingEngine(netlist, ElmoreWireModel())
        engine.full_pass()
        applied = 0
        for _ in range(60):
            if applied == 8:
                break
            try:
                edit = _random_edit(netlist, library, rng)
            except InputError:
                continue  # e.g. resize target lacking the drawn arcs
            engine.apply(edit)
            applied += 1
        assert applied == 8
        assert engine.verify_parity() == []

    def test_parity_holds_after_every_single_edit(self, library):
        netlist = _two_arc_netlist(library)
        engine = ECOTimingEngine(netlist, ElmoreWireModel())
        engine.full_pass()
        for edit in (netlist.scale_net_rc("n0", c_factor=1.3),
                     netlist.reconnect_sink("n1", 0, "CK"),
                     netlist.insert_buffer("n0", 0,
                                           library.cell("BUF_X4"))):
            engine.apply(edit)
            assert engine.verify_parity() == []

    def test_apply_before_full_pass_rejected(self, library):
        netlist = _two_arc_netlist(library)
        engine = ECOTimingEngine(netlist, ElmoreWireModel())
        edit = netlist.scale_net_rc("n0", c_factor=1.1)
        with pytest.raises(InputError, match="full_pass"):
            engine.apply(edit)


class TestDirtyConeReuse:
    """A single-net edit must re-time only the paths crossing that net,
    serving everything upstream of the edit from the warm memo."""

    def _target_net(self, design, engine):
        total = len(design.paths)
        for path in design.paths:
            name = path.stages[-1].net
            if 0 < len(engine.cone([name])) < total:
                return name
        pytest.skip("generated design has no partially-shared net")

    def test_retimed_set_is_exactly_the_cone(self, design):
        engine = ECOTimingEngine(design, ElmoreWireModel())
        engine.full_pass()
        target = self._target_net(design, engine)
        cone = engine.cone([target])
        outcome = engine.apply(design.scale_net_rc(target, c_factor=1.1))
        assert set(outcome.retimed_paths) == cone
        assert outcome.cone_size < len(design.paths)
        assert engine.verify_parity() == []

    def test_upstream_stages_served_from_memo(self, design):
        engine = ECOTimingEngine(design, ElmoreWireModel())
        engine.full_pass()
        target = self._target_net(design, engine)
        misses_before = engine.engine.misses
        outcome = engine.apply(design.scale_net_rc(target, c_factor=1.1))
        # Hit-rate floor: every stage strictly upstream of the edited net
        # replays from the memo; only the edit and its downstream slew
        # cone recompute.
        floor = sum(
            next(i for i, s in enumerate(design.paths[p].stages)
                 if s.net == target)
            for p in outcome.retimed_paths)
        assert outcome.stages_reused >= floor
        recomputed = engine.engine.misses - misses_before
        total_stages = sum(len(design.paths[p].stages)
                           for p in outcome.retimed_paths)
        assert outcome.stages_reused + recomputed == total_stages

    def test_counters_advance(self, design):
        from repro.obs import get_metrics

        registry = get_metrics()
        engine = ECOTimingEngine(design, ElmoreWireModel())
        engine.full_pass()
        edits_before = registry.counter("incremental.edits_applied").value
        retimed_before = registry.counter("incremental.paths_retimed").value
        outcome = engine.apply(
            design.scale_net_rc(design.paths[0].stages[0].net,
                                c_factor=1.05))
        assert registry.counter("incremental.edits_applied").value == \
            edits_before + 1
        assert registry.counter("incremental.paths_retimed").value == \
            retimed_before + outcome.cone_size


class TestSolveCacheHygiene:
    def test_rc_rewrite_drops_the_primed_eigensolve(self, library):
        from repro.analysis import configure_solve_cache

        netlist = _two_arc_netlist(library)
        configure_solve_cache(64)  # fresh, enabled, process-wide
        try:
            engine = ECOTimingEngine(netlist,
                                     GoldenWireModel(GoldenTimer()))
            engine.full_pass()
            outcome = engine.apply(
                netlist.scale_net_rc("n0", r_factor=1.5))
            assert outcome.solves_invalidated == 1
            assert engine.verify_parity() == []
        finally:
            configure_solve_cache(512)  # the process-wide default

    def test_non_rc_edit_invalidates_nothing(self, library):
        netlist = _two_arc_netlist(library)
        engine = ECOTimingEngine(netlist, ElmoreWireModel())
        engine.full_pass()
        outcome = engine.apply(netlist.reconnect_sink("n0", 0, "B"))
        assert outcome.solves_invalidated == 0
