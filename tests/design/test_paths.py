"""Path counting (the Fig. 2 statistics)."""

import pytest

from repro.design import (DesignNet, DesignSpec, Gate, LoadPin, Netlist,
                          count_netlist_paths, generate_design,
                          make_net_with_sinks, max_wire_paths,
                          wire_path_histogram)


def chain_of_gates(library, rng, n_gates):
    """FF -> g0 -> g1 -> ... -> FF, single path."""
    nl = Netlist("chain")
    nl.add_gate(Gate("lff", library.cell("DFF_X1")))
    nl.add_gate(Gate("cff", library.cell("DFF_X1")))
    names = ["lff"] + [f"g{i}" for i in range(n_gates)]
    for name in names[1:]:
        nl.add_gate(Gate(name, library.cell("BUF_X1")))
    targets = names[1:] + ["cff"]
    for i, (driver, load) in enumerate(zip(names, targets)):
        rc = make_net_with_sinks(rng, f"n{i}", 1, non_tree=False)
        nl.add_net(DesignNet(f"n{i}", driver, [LoadPin(load, "A" if load != "cff" else "D")], rc))
    return nl


class TestNetlistPathCounting:
    def test_single_chain_is_one_path(self, library, rng):
        nl = chain_of_gates(library, rng, 5)
        assert count_netlist_paths(nl) == 1

    def test_fanout_multiplies_paths(self, library, rng):
        """FF drives two parallel branches that reconverge: 2 paths."""
        nl = Netlist("fan")
        nl.add_gate(Gate("lff", library.cell("DFF_X1")))
        nl.add_gate(Gate("cff", library.cell("DFF_X1")))
        for g in ("a", "b", "m"):
            nl.add_gate(Gate(g, library.cell("BUF_X1")))
        nl.add_net(DesignNet("n0", "lff",
                             [LoadPin("a", "A"), LoadPin("b", "A")],
                             make_net_with_sinks(rng, "n0", 2, False)))
        nl.add_net(DesignNet("n1", "a", [LoadPin("m", "A")],
                             make_net_with_sinks(rng, "n1", 1, False)))
        nl.add_net(DesignNet("n2", "b", [LoadPin("m", "A")],
                             make_net_with_sinks(rng, "n2", 1, False)))
        nl.add_net(DesignNet("n3", "m", [LoadPin("cff", "D")],
                             make_net_with_sinks(rng, "n3", 1, False)))
        assert count_netlist_paths(nl) == 2

    def test_exponential_growth_with_layers(self, library, rng):
        """k layers of 2-way fanout-reconvergence: 2^k paths."""
        nl = Netlist("exp")
        nl.add_gate(Gate("lff", library.cell("DFF_X1")))
        nl.add_gate(Gate("cff", library.cell("DFF_X1")))
        k = 6
        prev = "lff"
        net_id = 0
        for layer in range(k):
            a, b, m = f"a{layer}", f"b{layer}", f"m{layer}"
            for g in (a, b, m):
                nl.add_gate(Gate(g, library.cell("BUF_X1")))
            nl.add_net(DesignNet(f"n{net_id}", prev,
                                 [LoadPin(a, "A"), LoadPin(b, "A")],
                                 make_net_with_sinks(rng, f"n{net_id}", 2, False)))
            net_id += 1
            for g in (a, b):
                nl.add_net(DesignNet(f"n{net_id}", g, [LoadPin(m, "A")],
                                     make_net_with_sinks(rng, f"n{net_id}", 1, False)))
                net_id += 1
            prev = m
        nl.add_net(DesignNet(f"n{net_id}", prev, [LoadPin("cff", "D")],
                             make_net_with_sinks(rng, f"n{net_id}", 1, False)))
        assert count_netlist_paths(nl) == 2 ** k

    def test_generated_design_has_many_more_netlist_than_wire_paths(
            self, library):
        """The paper's Fig. 2 asymmetry: netlist paths >> wire paths/net."""
        nl = generate_design(DesignSpec("d", n_combinational=120, n_ffs=10,
                                        n_paths=5, seed=2), library)
        assert count_netlist_paths(nl) > max_wire_paths(nl)


class TestWirePathHistogram:
    def test_histogram_counts_nets(self, library):
        nl = generate_design(DesignSpec("d", n_combinational=80, n_ffs=8,
                                        n_paths=5, seed=4), library)
        histogram = wire_path_histogram(nl)
        assert sum(histogram.values()) == nl.num_nets
        assert max_wire_paths(nl) == max(histogram)

    def test_wire_paths_bounded(self, library):
        """Fig. 2(b): per-net wire path count stays small (tens, not 1e6)."""
        nl = generate_design(DesignSpec("d", n_combinational=200, n_ffs=12,
                                        n_paths=5, seed=5), library)
        assert max_wire_paths(nl) < 64
