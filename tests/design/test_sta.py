"""STA engine: wire models, arrival propagation, runtime split."""

import numpy as np
import pytest

from repro.design import (D2MWireModel, DesignSpec, ElmoreWireModel,
                          GoldenWireModel, STAEngine, generate_design)


@pytest.fixture
def design(library):
    return generate_design(
        DesignSpec("sta_d", n_combinational=50, n_ffs=6, n_paths=12, seed=11),
        library)


class TestWireModels:
    def test_elmore_upper_bounds_golden(self, design):
        """Elmore wire delay >= golden (quiet) wire delay on tree nets."""
        golden = GoldenWireModel()
        elmore = ElmoreWireModel()
        from repro.analysis import GoldenTimer
        quiet = GoldenWireModel(GoldenTimer(si_mode=False))
        checked = 0
        for net in list(design.nets.values())[:10]:
            if not net.rcnet.is_tree():
                continue
            loads = design.sink_loads(net)
            d_golden, _ = quiet.wire_timing(net.rcnet, 20e-12, loads, 100.0)
            d_elmore, _ = elmore.wire_timing(net.rcnet, 20e-12, loads, 100.0)
            assert np.all(d_elmore >= d_golden * 0.999)
            checked += 1
        assert checked > 0

    def test_d2m_below_elmore(self, design):
        d2m = D2MWireModel()
        elmore = ElmoreWireModel()
        net = next(iter(design.nets.values()))
        loads = design.sink_loads(net)
        d_d2m, _ = d2m.wire_timing(net.rcnet, 20e-12, loads, 100.0)
        d_elm, _ = elmore.wire_timing(net.rcnet, 20e-12, loads, 100.0)
        assert np.all(d_d2m <= d_elm * 1.0000001)

    def test_model_names(self):
        assert GoldenWireModel().name == "GoldenWireModel"
        assert ElmoreWireModel().name == "ElmoreWireModel"


class TestSTAEngine:
    def test_arrival_is_sum_of_stages(self, design):
        engine = STAEngine(design, ElmoreWireModel())
        timing = engine.path_arrival(design.paths[0])
        total = sum(s.gate_delay + s.wire_delay for s in timing.stages)
        assert timing.arrival == pytest.approx(total)
        assert timing.gate_delay_total + timing.wire_delay_total == \
            pytest.approx(timing.arrival)

    def test_arrivals_positive_and_plausible(self, design):
        engine = STAEngine(design, GoldenWireModel())
        report = engine.analyze_design()
        arrivals = report.arrivals()
        assert len(arrivals) == len(design.paths)
        assert np.all(arrivals > 0.0)
        assert np.all(arrivals < 10e-9)  # well under a clock period

    def test_runtime_split_reported(self, design):
        report = STAEngine(design, GoldenWireModel()).analyze_design()
        assert report.wire_seconds > 0.0
        assert report.gate_seconds > 0.0
        assert report.total_seconds == pytest.approx(
            report.gate_seconds + report.wire_seconds)

    def test_elmore_wire_model_is_faster_than_golden(self, design):
        golden = STAEngine(design, GoldenWireModel()).analyze_design()
        elmore = STAEngine(design, ElmoreWireModel()).analyze_design()
        assert elmore.wire_seconds < golden.wire_seconds

    def test_golden_vs_elmore_arrival_correlated(self, design):
        golden = STAEngine(design, GoldenWireModel()).analyze_design()
        elmore = STAEngine(design, ElmoreWireModel()).analyze_design()
        a, b = golden.arrivals(), elmore.arrivals()
        assert np.corrcoef(a, b)[0, 1] > 0.95

    def test_invalid_launch_slew(self, design):
        with pytest.raises(ValueError):
            STAEngine(design, ElmoreWireModel(), launch_slew=0.0)


class TestSlewModelProtocol:
    """The Table V protocol: wire delays from one engine, slews/operating
    points from another (the sign-off reference)."""

    def test_golden_slew_model_matches_golden_when_delays_also_golden(
            self, design):
        golden = GoldenWireModel()
        plain = STAEngine(design, golden).analyze_design().arrivals()
        split = STAEngine(design, golden,
                          slew_model=golden).analyze_design().arrivals()
        np.testing.assert_allclose(plain, split, rtol=1e-12)

    def test_slew_model_decouples_slew_errors(self, design):
        """With golden slews, Elmore-based arrival error shrinks to the
        pure wire-delay error (no slew compounding through gate tables)."""
        golden = GoldenWireModel()
        reference = STAEngine(design, golden).analyze_design().arrivals()
        self_consistent = STAEngine(
            design, ElmoreWireModel()).analyze_design().arrivals()
        protocol = STAEngine(
            design, ElmoreWireModel(),
            slew_model=golden).analyze_design().arrivals()
        err_self = np.max(np.abs(self_consistent - reference))
        err_protocol = np.max(np.abs(protocol - reference))
        assert err_protocol <= err_self + 1e-15
