"""Timing report formatting."""

import pytest

from repro.design import (DesignSpec, ElmoreWireModel, STAEngine,
                          format_design_report, format_path_report,
                          generate_design)


@pytest.fixture(scope="module")
def report(library):
    design = generate_design(
        DesignSpec("rpt", n_combinational=40, n_ffs=6, n_paths=8, seed=8),
        library)
    engine = STAEngine(design, ElmoreWireModel())
    return design, engine.analyze_design()


@pytest.fixture(scope="module")
def library():
    from repro.liberty import make_default_library

    return make_default_library()


class TestPathReport:
    def test_contains_stages_and_total(self, report):
        design, sta = report
        timing = sta.paths[0]
        text = format_path_report(timing, design)
        assert "data arrival time" in text
        assert f"{timing.arrival / 1e-12:.2f}" in text
        for stage in timing.stages:
            assert stage.net.split("/")[-1] in text

    def test_cell_names_shown(self, report):
        design, sta = report
        text = format_path_report(sta.paths[0], design)
        first_gate = sta.paths[0].stages[0].gate
        assert design.gates[first_gate].cell.name in text

    def test_slack_met(self, report):
        design, sta = report
        text = format_path_report(sta.paths[0], design, clock_period=1.5e-9)
        assert "slack (MET)" in text

    def test_slack_violated(self, report):
        design, sta = report
        text = format_path_report(sta.paths[0], design, clock_period=1e-15)
        assert "slack (VIOLATED)" in text


class TestDesignReport:
    def test_critical_path_first(self, report):
        _, sta = report
        text = format_design_report(sta, top=5)
        worst = max(sta.paths, key=lambda p: p.arrival)
        lines = text.splitlines()
        data_lines = [l for l in lines if l.startswith(("rpt", "..."))]
        assert worst.path_name.split("/")[-1] in data_lines[0]

    def test_runtime_split_reported(self, report):
        _, sta = report
        text = format_design_report(sta)
        assert "runtime gate" in text
        assert f"paths analyzed: {len(sta.paths)}" in text

    def test_top_limits_rows(self, report):
        _, sta = report
        text = format_design_report(sta, top=2)
        data_lines = [l for l in text.splitlines()
                      if l.startswith(("rpt", "..."))]
        assert len(data_lines) == 2

    def test_worst_slack_line(self, report):
        _, sta = report
        text = format_design_report(sta, clock_period=1.5e-9)
        assert "worst slack" in text
