"""Design generator and the Table II benchmark suite."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.design import (DesignSpec, PAPER_BENCHMARKS, TEST_BENCHMARKS,
                          TRAIN_BENCHMARKS, benchmark_spec, generate_benchmark,
                          generate_design, make_net_with_sinks)


class TestMakeNetWithSinks:
    @given(st.integers(min_value=1, max_value=12),
           st.booleans(),
           st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=40, deadline=None)
    def test_exact_sink_count(self, n_sinks, non_tree, seed):
        rng = np.random.default_rng(seed)
        net = make_net_with_sinks(rng, f"n{seed}", n_sinks, non_tree)
        assert net.num_sinks == n_sinks

    def test_large_fanout_padded(self, rng):
        net = make_net_with_sinks(rng, "big", 20, non_tree=False,
                                  nodes_range=(6, 10))
        assert net.num_sinks == 20
        assert net.num_nodes >= 21


class TestGenerateDesign:
    def test_structure(self, library):
        spec = DesignSpec("d", n_combinational=60, n_ffs=8, n_paths=15, seed=3)
        nl = generate_design(spec, library)
        # FF count may exceed the request: every zero-fanout gate that
        # cannot be rewired gets a dedicated capture FF (single-driver
        # semantics), but the overshoot stays bounded.
        assert 8 <= nl.num_ffs <= 8 + 15
        assert nl.num_cells == 60 + nl.num_ffs
        assert len(nl.paths) == 15
        # Every gate with fanout drives exactly one net.
        assert nl.num_nets <= nl.num_cells

    def test_single_driver_per_pin(self, library):
        """No (gate, pin) pair is loaded by two nets — the invariant that
        makes the design expressible in structural Verilog."""
        spec = DesignSpec("d", n_combinational=80, n_ffs=10, n_paths=5,
                          seed=12)
        nl = generate_design(spec, library)
        seen = set()
        for net in nl.nets.values():
            for load in net.loads:
                key = (load.gate, load.pin)
                assert key not in seen, f"{key} driven twice"
                seen.add(key)

    def test_paths_end_at_capture_ff(self, library):
        spec = DesignSpec("d", n_combinational=60, n_ffs=8, n_paths=10, seed=3)
        nl = generate_design(spec, library)
        for path in nl.paths:
            last = path.stages[-1]
            end_gate = nl.nets[last.net].loads[last.sink_index].gate
            assert nl.gates[end_gate].is_sequential

    def test_paths_start_at_launch_ff(self, library):
        spec = DesignSpec("d", n_combinational=60, n_ffs=8, n_paths=10, seed=3)
        nl = generate_design(spec, library)
        for path in nl.paths:
            assert nl.gates[path.stages[0].gate].is_sequential

    def test_deterministic(self, library):
        spec = DesignSpec("d", n_combinational=40, n_ffs=6, n_paths=5, seed=9)
        a = generate_design(spec, library)
        b = generate_design(spec, library)
        assert a.statistics() == b.statistics()
        assert list(a.nets) == list(b.nets)

    def test_nontree_fraction_controlled(self, library):
        lo = generate_design(DesignSpec("lo", n_combinational=150, n_ffs=8,
                                        n_paths=5, nontree_frac=0.05, seed=1),
                             library)
        hi = generate_design(DesignSpec("hi", n_combinational=150, n_ffs=8,
                                        n_paths=5, nontree_frac=0.8, seed=1),
                             library)
        frac_lo = lo.num_nontree_nets / lo.num_nets
        frac_hi = hi.num_nontree_nets / hi.num_nets
        assert frac_lo < 0.25 < frac_hi

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            DesignSpec("x", n_combinational=2, levels=5)
        with pytest.raises(ValueError):
            DesignSpec("x", n_ffs=2)
        with pytest.raises(ValueError):
            DesignSpec("x", nontree_frac=1.5)


class TestBenchmarkSuite:
    def test_table2_split(self):
        assert len(TRAIN_BENCHMARKS) == 11
        assert len(TEST_BENCHMARKS) == 7
        assert "WB_DMA" in TEST_BENCHMARKS
        assert "LEON3MP" in TRAIN_BENCHMARKS

    def test_paper_stats_recorded(self):
        stats = PAPER_BENCHMARKS["WB_DMA"]
        assert stats.cells == 40962
        assert stats.nontree_nets == 9493
        assert stats.split == "test"

    def test_spec_scaling(self):
        spec = benchmark_spec("JPEG", scale=1000)
        assert spec.n_combinational + spec.n_ffs == pytest.approx(
            219064 // 1000, abs=5)
        assert spec.nontree_frac == pytest.approx(73915 / 231934)

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            benchmark_spec("NOT_A_DESIGN")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            benchmark_spec("DMA", scale=0)

    def test_generated_benchmark_matches_fraction(self, library):
        nl = generate_benchmark("AES-128", library, scale=500)
        target = PAPER_BENCHMARKS["AES-128"].nontree_frac
        actual = nl.num_nontree_nets / nl.num_nets
        assert abs(actual - target) < 0.15

    def test_benchmarks_are_distinct(self, library):
        a = generate_benchmark("WB_DMA", library, scale=1500)
        b = generate_benchmark("LDPC", library, scale=1500)
        assert a.statistics() != b.statistics() or list(a.nets) != list(b.nets)
