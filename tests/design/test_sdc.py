"""SDC-lite constraint parsing."""

import pytest

from repro.design import SDCError, TimingConstraints, parse_sdc, write_sdc

EXAMPLE = """
# constraints for the repro flow
create_clock -name core_clk -period 1.5 [get_ports clk]
set_input_transition 0.02 [all_inputs]
set_load 0.005 [get_ports out_a]
set_load 0.003 [get_ports out_b]
set_max_delay 1.2 -from [all_inputs] -to [all_outputs]
set_false_path -from [get_ports test_en]
"""


class TestParse:
    def test_clock(self):
        c = parse_sdc(EXAMPLE)
        assert c.clock_name == "core_clk"
        assert c.clock_period == pytest.approx(1.5e-9)

    def test_input_transition(self):
        c = parse_sdc(EXAMPLE)
        assert c.input_transition == pytest.approx(20e-12)

    def test_port_loads(self):
        c = parse_sdc(EXAMPLE)
        assert c.port_loads["out_a"] == pytest.approx(5e-15)
        assert c.port_loads["out_b"] == pytest.approx(3e-15)

    def test_max_delay(self):
        c = parse_sdc(EXAMPLE)
        assert c.max_delay == pytest.approx(1.2e-9)

    def test_unknown_commands_collected(self):
        c = parse_sdc(EXAMPLE)
        assert any("set_false_path" in cmd for cmd in c.unknown_commands)

    def test_comments_and_blanks_ignored(self):
        c = parse_sdc("# nothing\n\n")
        assert c.clock_period == pytest.approx(1.5e-9)  # defaults

    def test_missing_period_rejected(self):
        with pytest.raises(SDCError, match="-period"):
            parse_sdc("create_clock -name x [get_ports clk]")

    def test_negative_period_rejected(self):
        with pytest.raises(SDCError, match="positive"):
            parse_sdc("create_clock -period -2 [get_ports clk]")

    def test_no_numeric_value(self):
        with pytest.raises(SDCError, match="numeric"):
            parse_sdc("set_input_transition [all_inputs]")


class TestRoundTripAndSlack:
    def test_roundtrip(self):
        original = parse_sdc(EXAMPLE)
        again = parse_sdc(write_sdc(original))
        assert again.clock_period == pytest.approx(original.clock_period)
        assert again.clock_name == original.clock_name
        assert again.input_transition == pytest.approx(
            original.input_transition)
        assert again.port_loads == pytest.approx(original.port_loads)
        assert again.max_delay == pytest.approx(original.max_delay)

    def test_slack_uses_max_delay_when_set(self):
        c = TimingConstraints(clock_period=1.5e-9, max_delay=1.0e-9)
        assert c.slack(0.4e-9) == pytest.approx(0.6e-9)

    def test_slack_uses_period_by_default(self):
        c = TimingConstraints(clock_period=1.5e-9)
        assert c.slack(2.0e-9) == pytest.approx(-0.5e-9)
