"""Bench reporting and harness utilities."""

import pytest

from repro.bench import format_table
from repro.bench.harness import AccuracyTable


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["A", "Blong"], [["x", 1.5], ["yy", 2.25]])
        lines = out.splitlines()
        assert lines[0].startswith("A ")
        assert "Blong" in lines[0]
        assert "-+-" in lines[1]
        assert "1.500" in out
        assert "2.250" in out

    def test_title(self):
        out = format_table(["A"], [["x"]], title="Table Z")
        assert out.splitlines()[0] == "Table Z"
        assert set(out.splitlines()[1]) == {"="}

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["A", "B"], [["only-one"]])

    def test_non_float_cells_passthrough(self):
        out = format_table(["A"], [[42], [None]])
        assert "42" in out and "None" in out


class TestAccuracyTable:
    def test_average_and_rows(self):
        table = AccuracyTable(subset="all", designs=["D1", "D2"])
        table.scores["GNNTrans"] = {"D1": (0.9, 0.8), "D2": (0.7, 0.6)}
        slew, delay = table.average("GNNTrans")
        assert slew == pytest.approx(0.8)
        assert delay == pytest.approx(0.7)
        rows = table.rows()
        assert rows[0][0] == "D1"
        assert rows[-1] == ["Average", "0.800/0.700"]
        assert table.headers() == ["Benchmark", "GNNTrans"]

    def test_model_order_preserved(self):
        table = AccuracyTable(subset="all", designs=["D"])
        table.scores["GNNTrans"] = {"D": (1.0, 1.0)}
        table.scores["DAC20"] = {"D": (0.5, 0.5)}
        # Paper column order: DAC20 before GNNTrans.
        assert table.headers() == ["Benchmark", "DAC20", "GNNTrans"]


class TestBootstrapCI:
    def test_perfect_prediction_tight_interval(self):
        import numpy as np

        from repro.bench import bootstrap_ci

        y = np.linspace(0, 10, 100)
        point, lo, hi = bootstrap_ci(y, y, n_boot=200)
        assert point == pytest.approx(1.0)
        assert lo == pytest.approx(1.0)
        assert hi == pytest.approx(1.0)

    def test_interval_brackets_point(self):
        import numpy as np

        from repro.bench import bootstrap_ci

        rng = np.random.default_rng(0)
        y = rng.normal(size=300)
        pred = y + 0.3 * rng.normal(size=300)
        point, lo, hi = bootstrap_ci(y, pred, n_boot=300, seed=1)
        assert lo <= point <= hi
        assert 0.5 < point < 1.0
        assert hi - lo < 0.2  # reasonably tight at n=300

    def test_noisier_prediction_wider_interval(self):
        import numpy as np

        from repro.bench import bootstrap_ci

        rng = np.random.default_rng(0)
        y = rng.normal(size=80)
        mild = y + 0.2 * rng.normal(size=80)
        wild = y + 1.0 * rng.normal(size=80)
        _, lo_m, hi_m = bootstrap_ci(y, mild, n_boot=300, seed=2)
        _, lo_w, hi_w = bootstrap_ci(y, wild, n_boot=300, seed=2)
        assert (hi_w - lo_w) > (hi_m - lo_m)

    def test_validation(self):
        import numpy as np

        from repro.bench import bootstrap_ci

        with pytest.raises(ValueError):
            bootstrap_ci(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            bootstrap_ci(np.zeros(1), np.zeros(1))
        with pytest.raises(ValueError):
            bootstrap_ci(np.zeros(5), np.zeros(5), alpha=2.0)

    def test_format_ci(self):
        from repro.bench import format_ci

        assert format_ci(0.9, 0.85, 0.95) == "0.900 [0.850, 0.950]"
