"""``tools/compare_bench_results.py``: eco-mode comparison rules.

ECO reports follow the serve-mode contract: comparable only when the
workload and execution environment match, census keys diffed exactly,
latency gated via ``--max-timing-ratio`` — plus a hard failure when a
report's parity check did not pass.
"""

import copy
import importlib.util
import json
import os

import pytest

_TOOLS = os.path.join(os.path.dirname(__file__), "..", "..", "tools",
                      "compare_bench_results.py")


def _compare_module():
    spec = importlib.util.spec_from_file_location("compare_bench", _TOOLS)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture()
def eco_doc():
    return {
        "workload": {"mode": "eco", "name": "eco-quick", "benchmark":
                     "WB_DMA", "scale": 3200, "sta_paths": 16, "edits": 5},
        "environment": {"mp_start_method": "fork", "jobs": 1},
        "results": {"eco": {
            "design": "WB_DMA", "paths": 16, "edits_applied": 5,
            "paths_retimed": 9, "stages_reused": 40,
            "full_pass_s": 0.2, "edit_replay_mean_s": 0.01,
            "edit_replay_max_s": 0.02, "speedup_vs_full": 20.0,
            "parity_ok": True, "parity_problems": 0}}}


class TestEcoComparisonRules:
    def test_identical_reports_compare_clean(self, eco_doc):
        compare = _compare_module()
        assert compare.check_comparable(eco_doc,
                                        copy.deepcopy(eco_doc)) == []
        assert compare.compare_results(eco_doc["results"],
                                       copy.deepcopy(eco_doc)["results"],
                                       mode="eco") == []

    def test_replay_latency_is_not_a_census_key(self, eco_doc):
        # Latency measures the machine; it must not fail the diff.
        compare = _compare_module()
        other = copy.deepcopy(eco_doc)
        other["results"]["eco"]["edit_replay_mean_s"] = 0.5
        other["results"]["eco"]["speedup_vs_full"] = 0.4
        assert compare.compare_results(eco_doc["results"],
                                       other["results"], mode="eco") == []

    def test_census_mismatch_is_reported(self, eco_doc):
        compare = _compare_module()
        other = copy.deepcopy(eco_doc)
        other["results"]["eco"]["paths_retimed"] = 16
        lines = compare.compare_results(eco_doc["results"],
                                        other["results"], mode="eco")
        assert any("paths_retimed" in line for line in lines)

    def test_cross_workload_pair_rejected(self, eco_doc):
        compare = _compare_module()
        other = copy.deepcopy(eco_doc)
        other["workload"]["edits"] = 50
        problems = compare.check_comparable(eco_doc, other)
        assert any("edits" in p for p in problems)

    def test_cross_environment_pair_rejected(self, eco_doc):
        compare = _compare_module()
        other = copy.deepcopy(eco_doc)
        other["environment"]["jobs"] = 4
        problems = compare.check_comparable(eco_doc, other)
        assert any("environment.jobs" in p for p in problems)

    def test_mode_mismatch_rejected(self, eco_doc):
        compare = _compare_module()
        other = copy.deepcopy(eco_doc)
        other["workload"]["mode"] = "serve"
        problems = compare.check_comparable(eco_doc, other)
        assert any("mode" in p for p in problems)

    def test_parity_failure_is_hard(self, eco_doc):
        compare = _compare_module()
        broken = copy.deepcopy(eco_doc)["results"]
        broken["eco"]["parity_ok"] = False
        problems = compare.check_eco_parity(broken, "second report")
        assert any("parity_ok" in p for p in problems)
        assert compare.check_eco_parity(eco_doc["results"],
                                        "first report") == []


class TestEcoEndToEnd:
    def _write(self, tmp_path, name, document):
        path = tmp_path / name
        path.write_text(json.dumps(document))
        return str(path)

    def test_main_accepts_matching_pair(self, tmp_path, eco_doc, capsys):
        compare = _compare_module()
        a = self._write(tmp_path, "a.json", eco_doc)
        b = self._write(tmp_path, "b.json", copy.deepcopy(eco_doc))
        assert compare.main([a, b]) == 0
        assert "eco census matches" in capsys.readouterr().out

    def test_main_rejects_parity_violation(self, tmp_path, eco_doc,
                                           capsys):
        compare = _compare_module()
        broken = copy.deepcopy(eco_doc)
        broken["results"]["eco"]["parity_ok"] = False
        a = self._write(tmp_path, "a.json", eco_doc)
        b = self._write(tmp_path, "b.json", broken)
        assert compare.main([a, b]) == 1
        assert "parity" in capsys.readouterr().out

    def test_latency_gate_passes_within_budget(self, tmp_path, eco_doc,
                                               capsys):
        compare = _compare_module()
        faster = copy.deepcopy(eco_doc)
        faster["results"]["eco"]["edit_replay_mean_s"] = 0.008
        a = self._write(tmp_path, "a.json", eco_doc)
        b = self._write(tmp_path, "b.json", faster)
        code = compare.main(["--timing-only",
                             "--max-timing-ratio",
                             "eco.edit_replay_mean_s=1.5", a, b])
        assert code == 0
        assert "timing gates passed" in capsys.readouterr().out

    def test_latency_gate_fails_on_regression(self, tmp_path, eco_doc,
                                              capsys):
        compare = _compare_module()
        slower = copy.deepcopy(eco_doc)
        slower["results"]["eco"]["edit_replay_mean_s"] = 0.05
        a = self._write(tmp_path, "a.json", eco_doc)
        b = self._write(tmp_path, "b.json", slower)
        code = compare.main(["--timing-only",
                             "--max-timing-ratio",
                             "eco.edit_replay_mean_s=1.5", a, b])
        assert code == 1
        assert "exceeds limit" in capsys.readouterr().out
