"""Trainer divergence guard: NaN loss stops training and restores weights."""

import math

import numpy as np

from repro.nn.layers import Module, Parameter
from repro.nn.optim import Adam
from repro.nn.trainer import Trainer
from repro.robustness import TrainingDiverged


class _Scalar(Module):
    """One-weight model; the loss pulls ``w`` toward the sample value."""

    def __init__(self):
        super().__init__()
        self.w = Parameter(np.array([0.5]))


def make_loss(diverge_after):
    """Loss that turns NaN after ``diverge_after`` training-mode calls.

    Validation calls run in eval mode and stay finite, so the best
    checkpoint tracking keeps working until the divergence epoch.
    """
    calls = {"train": 0}

    def loss_fn(model, sample):
        if model.training:
            calls["train"] += 1
            if calls["train"] > diverge_after:
                return (model.w * float("nan")).sum()
        return ((model.w - sample) ** 2).sum()

    return loss_fn


def fit(loss_fn, epochs=6, val=True):
    model = _Scalar()
    trainer = Trainer(model, Adam(model.parameters(), lr=1e-2), loss_fn,
                      rng=np.random.default_rng(0))
    history = trainer.fit([1.0], epochs=epochs, batch_size=1,
                          val_samples=[1.0] if val else None)
    return model, history


class TestDivergenceGuard:
    def test_healthy_run_has_no_divergence_record(self):
        _, history = fit(make_loss(diverge_after=10 ** 9))
        assert history.diverged is None
        assert len(history) == 6

    def test_nan_loss_stops_training(self):
        _, history = fit(make_loss(diverge_after=2))
        assert isinstance(history.diverged, TrainingDiverged)
        assert history.diverged.epoch == 3
        assert len(history) == 3  # no epochs after the divergence
        assert math.isnan(history.epochs[-1].train_loss)
        assert "train" in history.diverged.reason

    def test_best_checkpoint_restored(self):
        model, history = fit(make_loss(diverge_after=2))
        assert history.diverged.restored_best
        assert np.all(np.isfinite(model.w.data))

    def test_no_val_means_no_checkpoint_to_restore(self):
        _, history = fit(make_loss(diverge_after=2), val=False)
        assert history.diverged is not None
        assert not history.diverged.restored_best

    def test_immediate_divergence(self):
        model, history = fit(make_loss(diverge_after=0))
        assert history.diverged is not None
        assert history.diverged.epoch == 1
