"""Shared fixtures for the robustness suite: a small fitted estimator."""

import pytest

from repro.core import GNNTransConfig, WireTimingEstimator
from repro.data import generate_dataset

FAST = GNNTransConfig(l1=2, l2=1, hidden=16, num_heads=2, head_hidden=(32,),
                      epochs=6, learning_rate=5e-3)


@pytest.fixture(scope="package")
def dataset():
    return generate_dataset(train_names=["PCI_BRIDGE"], test_names=["WB_DMA"],
                            scale=1500, nets_per_design=12)


@pytest.fixture(scope="package")
def fitted(dataset):
    estimator = WireTimingEstimator(FAST)
    estimator.fit(dataset.train, epochs=6)
    return estimator
