"""Fault-injection campaigns through every pipeline entry point.

Each fault class (corrupt RC values, truncated SPEF, NaN model weights,
singular MNA) is driven through the estimator's predict path, the STA flow
and the CLI, asserting degraded-but-valid results whose provenance names
the serving fallback tier — never an unhandled exception.
"""

import copy

import numpy as np
import pytest

from repro import cli
from repro.core import LearnedWireModel
from repro.design import GoldenWireModel, STAEngine, generate_benchmark
from repro.liberty import make_default_library
from repro.rcnet import SPEFError, chain_net, parse_spef, write_spef
from repro.robustness import LAST_RESORT_TIER, FallbackChain, \
    default_fallback_chain
from repro.robustness.faultinject import (FaultInjector, RC_FAULT_MODES,
                                          singular_mna_net)

LOADS = np.array([2e-15])


@pytest.fixture
def poisoned(fitted):
    """Function-scoped copy of the fitted estimator with NaN weights."""
    estimator = copy.deepcopy(fitted)
    count = FaultInjector(7).inject_nan_weights(estimator.model, fraction=0.5)
    assert count > 0
    return estimator


class TestCorruptRCValues:
    @pytest.mark.parametrize("mode", RC_FAULT_MODES)
    def test_chain_serves_every_mode(self, mode):
        injector = FaultInjector(0)
        chain = default_fallback_chain()
        net = injector.corrupt_rc_values(chain_net(8), mode, count=2)
        delays, slews, record = chain.wire_timing_with_provenance(
            net, 20e-12, LOADS, 100.0)
        assert np.all(np.isfinite(delays)) and np.all(slews > 0.0)
        assert record.degraded
        assert record.tier in chain.tier_names
        assert all(f.tier in chain.tier_names for f in record.failures)

    def test_injection_is_deterministic(self):
        a = FaultInjector(42).corrupt_rc_values(chain_net(9),
                                                "nan_resistance", count=3)
        b = FaultInjector(42).corrupt_rc_values(chain_net(9),
                                                "nan_resistance", count=3)
        assert [e.resistance for e in a.edges] == pytest.approx(
            [e.resistance for e in b.edges], nan_ok=True)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="fault mode"):
            FaultInjector().corrupt_rc_values(chain_net(4), "melt")


class TestNaNWeights:
    def test_estimator_predict_degrades_with_provenance(self, poisoned,
                                                        dataset):
        before = poisoned.degradation_counts["label-prior"]
        for sample in dataset.test[:4]:
            slews, delays = poisoned.predict_sample(sample)
            assert np.all(np.isfinite(slews))
            assert np.all(np.isfinite(delays))
        assert poisoned.degradation_counts["label-prior"] > before
        assert poisoned.last_tier == "label-prior"
        record = poisoned.provenance_log[-1]
        assert record.tier == "label-prior"
        assert record.reason  # explains why the prior was substituted

    def test_sta_flow_stays_finite_with_tier_provenance(self, poisoned,
                                                        dataset):
        netlist = generate_benchmark("WB_DMA", make_default_library(),
                                     scale=2000)
        engine = STAEngine(netlist, LearnedWireModel(poisoned, dataset.scaler))
        report = engine.analyze_design()
        assert np.all(np.isfinite(report.arrivals()))
        tiers = {s.tier for p in report.paths for s in p.stages}
        assert tiers == {"label-prior"}

    def test_healthy_estimator_reports_model_tier(self, fitted, dataset):
        fitted.predict_sample(dataset.test[0])
        assert fitted.last_tier == "model"


class TestSingularMNA:
    def test_golden_tier_degrades_to_analytic_ladder(self):
        chain = FallbackChain([GoldenWireModel()], last_resort=True)
        delays, slews, record = chain.wire_timing_with_provenance(
            singular_mna_net(), 20e-12, LOADS, 100.0)
        assert np.all(np.isfinite(delays)) and np.all(slews > 0.0)
        assert record.tier == LAST_RESORT_TIER
        assert record.failures[0].tier == "GoldenWireModel"
        assert "NumericalError" in record.failures[0].reason


class TestTruncatedSPEF:
    def test_strict_raises_lenient_skips(self):
        text = write_spef([chain_net(5, name=f"net{i}") for i in range(3)],
                          design="trunc")
        truncated = FaultInjector(0).truncate_spef(text, fraction=0.8)
        with pytest.raises(SPEFError):
            parse_spef(truncated)
        design = parse_spef(truncated, strict=False)
        assert len(design.nets) == 2
        assert [s.name for s in design.skipped] == ["net2"]
        assert design.skipped[0].line > 0
        assert "END" in design.skipped[0].reason

    def test_value_corruption_skips_only_bad_net(self):
        text = write_spef([chain_net(5, name=f"net{i}") for i in range(3)],
                          design="corrupt")
        corrupted = FaultInjector(0).corrupt_spef_values(text, count=1)
        design = parse_spef(corrupted, strict=False)
        assert len(design.nets) + len(design.skipped) == 3
        assert len(design.skipped) == 1
        assert "NOT_A_NUMBER" in design.skipped[0].reason


class TestCLIEntryPoints:
    def test_spef_timing_lenient_flag(self, tmp_path, capsys):
        text = write_spef([chain_net(5, name=f"net{i}") for i in range(3)],
                          design="cli")
        truncated = FaultInjector(0).truncate_spef(text, fraction=0.8)
        path = tmp_path / "trunc.spef"
        path.write_text(truncated)

        assert cli.main(["spef-timing", str(path)]) == 1
        assert "error" in capsys.readouterr().err

        assert cli.main(["spef-timing", str(path), "--lenient"]) == 0
        captured = capsys.readouterr()
        assert "skipped net 'net2'" in captured.err
        assert "net0" in captured.out  # surviving nets still analyzed

    def test_report_fallback_engine_prints_counters(self, tmp_path, capsys):
        assert cli.main(["export-design", "PCI_BRIDGE", "-o", str(tmp_path),
                         "--scale", "3000"]) == 0
        capsys.readouterr()
        code = cli.main([
            "report", "--verilog", str(tmp_path / "netlist.v"),
            "--spef", str(tmp_path / "parasitics.spef"),
            "--lib", str(tmp_path / "cells.lib"),
            "--engine", "fallback", "--paths", "4"])
        captured = capsys.readouterr()
        assert code == 0
        assert "degradation counters" in captured.out
        assert "AWEWireModel" in captured.out


class TestSlowTier:
    def _model(self):
        from repro.design import ElmoreWireModel

        return ElmoreWireModel()

    def test_answers_are_untouched(self):
        import numpy as np

        from repro.rcnet import chain_net

        net = chain_net(6)
        loads = np.array([2e-15])
        injector = FaultInjector(seed=4)
        slow = injector.slow_tier(self._model(), delay_s=0.0,
                                  sleep=lambda s: None)
        direct = self._model().wire_timing(net, 20e-12, loads, 100.0)
        wrapped = slow.wire_timing(net, 20e-12, loads, 100.0)
        np.testing.assert_array_equal(direct[0], wrapped[0])
        np.testing.assert_array_equal(direct[1], wrapped[1])

    def test_only_every_nth_call_stalls(self):
        import numpy as np

        from repro.rcnet import chain_net

        net = chain_net(5)
        loads = np.array([2e-15])
        slept = []
        injector = FaultInjector(seed=4)
        slow = injector.slow_tier(self._model(), delay_s=0.01, every=3,
                                  sleep=slept.append)
        for _ in range(9):
            slow.wire_timing(net, 20e-12, loads, 100.0)
        assert slow.calls == 9
        assert len(slept) == 3 == len(slow.delays_injected)

    def test_jittered_delays_are_seed_deterministic(self):
        import numpy as np

        from repro.rcnet import chain_net

        net = chain_net(5)
        loads = np.array([2e-15])

        def campaign():
            slept = []
            slow = FaultInjector(seed=21).slow_tier(
                self._model(), delay_s=0.005, jitter_s=0.01,
                sleep=slept.append)
            for _ in range(6):
                slow.wire_timing(net, 20e-12, loads, 100.0)
            return slept

        first, second = campaign(), campaign()
        assert first == second
        assert all(0.005 <= delay < 0.015 for delay in first)

    def test_invalid_parameters_rejected(self):
        injector = FaultInjector()
        with pytest.raises(ValueError):
            injector.slow_tier(self._model(), delay_s=-1.0)
        with pytest.raises(ValueError):
            injector.slow_tier(self._model(), delay_s=0.1, every=0)
