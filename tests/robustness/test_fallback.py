"""FallbackChain: tier ordering, counters, breaker, timeout, last resort."""

import time

import numpy as np
import pytest

from repro.design import ElmoreWireModel
from repro.design.sta import WireTimingModel
from repro.rcnet import chain_net
from repro.robustness import (LAST_RESORT_TIER, EstimationError,
                              FallbackChain, LumpedRCWireModel,
                              default_fallback_chain)
from repro.robustness.faultinject import FaultInjector, RC_FAULT_MODES

LOADS = np.array([2e-15])


class _Stub(WireTimingModel):
    """Scriptable tier: raises, sleeps, or returns a fixed answer."""

    def __init__(self, behaviour="ok", delay=1e-12, slew=2e-12,
                 sleep_s=0.0):
        self.behaviour = behaviour
        self.delay = delay
        self.slew = slew
        self.sleep_s = sleep_s
        self.calls = 0

    def wire_timing(self, net, input_slew, sink_loads, drive_resistance,
                    context=None):
        self.calls += 1
        if self.sleep_s:
            time.sleep(self.sleep_s)
        if self.behaviour == "raise":
            raise RuntimeError("tier exploded")
        if self.behaviour == "nan":
            return (np.full(net.num_sinks, np.nan),
                    np.full(net.num_sinks, np.nan))
        if self.behaviour == "negative":
            return (np.full(net.num_sinks, -1e-12),
                    np.full(net.num_sinks, self.slew))
        if self.behaviour == "bad_shape":
            return np.zeros(net.num_sinks + 3), np.zeros(net.num_sinks + 3)
        return (np.full(net.num_sinks, self.delay),
                np.full(net.num_sinks, self.slew))


def serve(chain, n=1, net=None):
    net = net or chain_net(6)
    records = []
    for _ in range(n):
        _, _, record = chain.wire_timing_with_provenance(
            net, 20e-12, LOADS, 100.0)
        records.append(record)
    return records


class TestHealthyChain:
    def test_first_tier_serves(self):
        chain = default_fallback_chain()
        delays, slews, record = chain.wire_timing_with_provenance(
            chain_net(6), 20e-12, LOADS, 100.0)
        assert record.tier == "AWEWireModel"
        assert not record.degraded
        assert np.all(np.isfinite(delays)) and np.all(np.isfinite(slews))
        assert chain.last_tier == "AWEWireModel"

    def test_counters_sum_to_nets_served(self):
        chain = default_fallback_chain()
        injector = FaultInjector(3)
        nets = [chain_net(5)] * 4 + [
            injector.corrupt_rc_values(chain_net(5), "nan_resistance")] * 3
        for net in nets:
            chain.wire_timing(net, 20e-12, LOADS, 100.0)
        counters = chain.counters()
        assert sum(counters.values()) == chain.total_served == len(nets)
        assert chain.degraded_count == 3

    def test_reset_counters(self):
        chain = default_fallback_chain()
        serve(chain, n=3)
        chain.reset_counters()
        assert chain.total_served == 0
        assert chain.counters() == {name: 0 for name in chain.tier_names}
        assert chain.last_tier is None

    def test_plain_wire_timing_interface(self):
        chain = default_fallback_chain()
        delays, slews = chain.wire_timing(chain_net(6), 20e-12, LOADS, 100.0)
        assert delays.shape == slews.shape == (1,)


class TestDegradation:
    @pytest.mark.parametrize("behaviour", ["raise", "nan", "negative",
                                           "bad_shape"])
    def test_bad_first_tier_degrades(self, behaviour):
        bad = _Stub(behaviour)
        chain = FallbackChain([("bad", bad), ("good", _Stub())])
        (record,) = serve(chain)
        assert record.tier == "good"
        assert record.degraded
        assert record.failures[0].tier == "bad"
        assert chain.stats["bad"].failed == 1
        assert chain.stats["good"].served == 1

    def test_failure_reason_is_recorded(self):
        chain = FallbackChain([("bad", _Stub("raise")), ("good", _Stub())])
        (record,) = serve(chain)
        assert "RuntimeError" in record.failures[0].reason

    def test_timeout_counts_and_degrades(self):
        slow = _Stub(sleep_s=0.05)
        chain = FallbackChain([("slow", slow), ("fast", _Stub())],
                              net_timeout=0.005)
        (record,) = serve(chain)
        assert record.tier == "fast"
        assert chain.stats["slow"].timeouts == 1
        assert any("budget" in f.reason for f in record.failures)

    def test_last_resort_cannot_fail(self):
        injector = FaultInjector(0)
        chain = FallbackChain([], last_resort=True)
        for mode in RC_FAULT_MODES:
            bad_net = injector.corrupt_rc_values(chain_net(8), mode, count=2)
            delays, slews, record = chain.wire_timing_with_provenance(
                bad_net, 20e-12, LOADS, 100.0)
            assert record.tier == LAST_RESORT_TIER
            assert np.all(np.isfinite(delays))
            assert np.all(slews > 0.0)

    def test_no_last_resort_raises_when_all_fail(self):
        chain = FallbackChain([("bad", _Stub("raise"))], last_resort=False)
        with pytest.raises(EstimationError, match="every tier failed") as exc:
            chain.wire_timing(chain_net(5), 20e-12, LOADS, 100.0)
        assert exc.value.stage == "fallback"


class TestCircuitBreaker:
    def test_trips_and_cools_down(self):
        bad = _Stub("raise")
        chain = FallbackChain([("flaky", bad), ("good", _Stub())],
                              breaker_threshold=2, breaker_cooldown=3)
        serve(chain, n=2)  # two failures trip the breaker
        assert chain.stats["flaky"].breaker_trips == 1
        calls_after_trip = bad.calls
        serve(chain, n=2)  # breaker open: tier skipped without being called
        assert bad.calls == calls_after_trip
        assert chain.stats["flaky"].skipped_open == 2
        serve(chain, n=1)  # cooldown expired: half-open retrial
        assert bad.calls == calls_after_trip + 1

    def test_success_closes_half_open_breaker(self):
        flaky = _Stub("raise")
        chain = FallbackChain([("flaky", flaky), ("good", _Stub())],
                              breaker_threshold=1, breaker_cooldown=1)
        serve(chain, n=2)  # trip + one skipped (cooldown) net
        flaky.behaviour = "ok"
        records = serve(chain, n=2)
        assert records[-1].tier == "flaky"
        assert chain.stats["flaky"].served >= 1

    def test_every_net_still_served_under_breaker(self):
        chain = FallbackChain([("flaky", _Stub("raise")), ("good", _Stub())],
                              breaker_threshold=2, breaker_cooldown=4)
        records = serve(chain, n=12)
        assert len(records) == 12
        assert sum(chain.counters().values()) == 12


class TestConstruction:
    def test_duplicate_names_get_suffix(self):
        chain = FallbackChain([ElmoreWireModel(), ElmoreWireModel()])
        assert chain.tier_names[:2] == ["ElmoreWireModel", "ElmoreWireModel#1"]

    def test_name_lists_ladder(self):
        chain = default_fallback_chain()
        assert chain.name == ("FallbackChain(AWEWireModel->D2MWireModel->"
                              "ElmoreWireModel->lumped-rc)")

    def test_invalid_settings_raise(self):
        with pytest.raises(ValueError):
            FallbackChain([], last_resort=False)
        with pytest.raises(ValueError):
            FallbackChain([_Stub()], net_timeout=0.0)
        with pytest.raises(ValueError):
            FallbackChain([_Stub()], breaker_threshold=-1)

    def test_degradation_report_lists_tiers(self):
        chain = default_fallback_chain()
        serve(chain, n=2)
        report = chain.degradation_report()
        assert "2 nets served" in report
        for name in chain.tier_names:
            assert name in report


class TestLumpedRC:
    def test_finite_on_sane_net(self):
        delays, slews = LumpedRCWireModel().wire_timing(
            chain_net(6), 20e-12, LOADS, 100.0)
        assert np.all(np.isfinite(delays)) and np.all(delays >= 0.0)
        assert np.all(slews > 0.0)

    def test_finite_on_fully_corrupt_inputs(self):
        injector = FaultInjector(1)
        net = injector.corrupt_rc_values(chain_net(6), "nan_resistance",
                                         count=5)
        net = injector.corrupt_rc_values(net, "inf_cap", count=5)
        delays, slews = LumpedRCWireModel().wire_timing(
            net, float("nan"), np.array([float("inf")]), float("nan"))
        assert np.all(np.isfinite(delays))
        assert np.all(np.isfinite(slews)) and np.all(slews > 0.0)


class TestBreakerCooldownSemantics:
    """Direct unit coverage of the breaker arithmetic the serve layer
    leans on (admission shedding reuses this exact class)."""

    def test_opens_after_threshold_consecutive_failures(self):
        from repro.robustness.fallback import _CircuitBreaker

        breaker = _CircuitBreaker(threshold=3, cooldown=2)
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True     # this one trips it
        assert breaker.open

    def test_cooldown_counts_down_to_a_half_open_trial(self):
        from repro.robustness.fallback import _CircuitBreaker

        breaker = _CircuitBreaker(threshold=1, cooldown=3)
        breaker.record_failure()
        assert [breaker.allow() for _ in range(3)] == [False, False, True]
        breaker.record_success()                    # trial succeeded
        assert not breaker.open
        assert breaker.allow()

    def test_interleaved_success_resets_the_streak(self):
        from repro.robustness.fallback import _CircuitBreaker

        breaker = _CircuitBreaker(threshold=2, cooldown=5)
        for _ in range(10):
            breaker.record_failure()
            breaker.record_success()
        assert not breaker.open and breaker.allow()


class TestCounterThreadConsistency:
    def test_concurrent_serving_conserves_counters(self):
        import threading

        flaky = _Stub("raise")
        chain = FallbackChain([flaky, _Stub("ok")], last_resort=True,
                              keep_records=False)
        nets = [chain_net(n) for n in (4, 5, 6, 7)]
        per_thread, threads_n = 50, 8
        errors = []

        def worker(index):
            try:
                serve(chain, n=per_thread, net=nets[index % len(nets)])
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        total = per_thread * threads_n
        counters = chain.counters()
        assert sum(counters.values()) == chain.total_served == total
        # The flaky first tier served nothing; every net degraded past it.
        assert counters[chain.tier_names[0]] == 0
        assert chain.degraded_count == total
