"""Error taxonomy: typing, provenance carrying, backward compatibility."""

import pytest

from repro.robustness import (EstimationError, InputError, ModelError,
                              NumericalError, TrainingDiverged)


class TestTaxonomy:
    @pytest.mark.parametrize("cls", [InputError, NumericalError, ModelError])
    def test_subclasses(self, cls):
        assert issubclass(cls, EstimationError)
        assert issubclass(cls, ValueError)

    def test_catchable_as_valueerror(self):
        """Old call sites written against ad-hoc ValueErrors keep working."""
        with pytest.raises(ValueError):
            raise NumericalError("matrix is singular", net="n1")

    def test_distinct_classes_are_distinguishable(self):
        with pytest.raises(NumericalError):
            try:
                raise NumericalError("x")
            except InputError:  # pragma: no cover - must not match
                pytest.fail("NumericalError caught as InputError")


class TestProvenance:
    def test_provenance_dict_drops_empty_fields(self):
        err = EstimationError("boom", net="n3", stage="mna")
        assert err.provenance() == {"net": "n3", "stage": "mna"}

    def test_full_provenance(self):
        err = ModelError("bad output", net="n1", design="DMA", sink=2,
                         stage="predict", tier="LearnedWireModel")
        assert err.provenance() == {
            "net": "n1", "design": "DMA", "sink": 2,
            "stage": "predict", "tier": "LearnedWireModel"}

    def test_str_includes_context(self):
        err = InputError("non-finite resistance", net="n7", stage="mna-assembly")
        text = str(err)
        assert "non-finite resistance" in text
        assert "net='n7'" in text
        assert "stage='mna-assembly'" in text

    def test_str_without_context_is_plain(self):
        assert str(EstimationError("plain failure")) == "plain failure"

    def test_cause_is_kept(self):
        original = ZeroDivisionError("div by zero")
        err = NumericalError("wrapped", cause=original)
        assert err.cause is original


class TestTrainingDiverged:
    def test_str_mentions_epoch_and_restore(self):
        record = TrainingDiverged(epoch=7, train_loss=float("nan"),
                                  val_loss=None, restored_best=True,
                                  reason="non-finite train loss")
        text = str(record)
        assert "epoch 7" in text
        assert "non-finite train loss" in text
        assert "restored" in text

    def test_str_without_checkpoint(self):
        record = TrainingDiverged(epoch=1, train_loss=float("inf"),
                                  val_loss=None, restored_best=False,
                                  reason="non-finite train loss")
        assert "no finite checkpoint" in str(record)
