"""Numerical guards: near-singular nets yield finite timing or typed errors."""

import numpy as np
import pytest

from repro.analysis.mna import (capacitance_vector, conductance_matrix,
                                reduce_source, transfer_resistance_matrix)
from repro.analysis.simulator import GoldenTimer
from repro.robustness import InputError, NumericalError
from repro.robustness.faultinject import (FaultInjector, coupling_only_sink_net,
                                          resistance_spread_chain,
                                          singular_mna_net,
                                          zero_cap_junction_chain)
from repro.rcnet import chain_net


def assert_finite_or_numerical_error(timer, net):
    """The guard contract: finite timings or a typed NumericalError."""
    try:
        result = timer.analyze(net, 20e-12)
    except NumericalError as exc:
        assert exc.provenance().get("net") == net.name
        return None
    delays, slews = result.delays(), result.slews()
    assert np.all(np.isfinite(delays)) and np.all(delays >= 0.0)
    assert np.all(np.isfinite(slews)) and np.all(slews > 0.0)
    return result


class TestPathologicalNets:
    def test_zero_cap_junction_chain_is_regularized(self):
        result = assert_finite_or_numerical_error(
            GoldenTimer(drive_resistance=100.0), zero_cap_junction_chain())
        # Cap-floor regularization makes this one solvable, not just typed.
        assert result is not None

    def test_six_decade_resistance_spread(self):
        result = assert_finite_or_numerical_error(
            GoldenTimer(drive_resistance=100.0),
            resistance_spread_chain(decades=6.0))
        assert result is not None

    @pytest.mark.parametrize("si_mode", [False, True])
    def test_coupling_only_sink(self, si_mode):
        timer = GoldenTimer(drive_resistance=100.0, si_mode=si_mode)
        result = assert_finite_or_numerical_error(timer,
                                                  coupling_only_sink_net())
        assert result is not None

    def test_singular_operator_raises_typed_error(self):
        with pytest.raises(NumericalError) as info:
            GoldenTimer(drive_resistance=100.0).analyze(singular_mna_net(),
                                                        20e-12)
        assert info.value.provenance()["net"] == "singular_mna"
        assert info.value.provenance()["stage"] == "simulate"


class TestMNAGuards:
    def test_nan_resistance_is_input_error(self):
        net = FaultInjector(0).corrupt_rc_values(chain_net(6),
                                                 "nan_resistance")
        with pytest.raises(InputError) as info:
            conductance_matrix(net)
        assert info.value.provenance()["net"] == net.name

    def test_zero_resistance_is_input_error(self):
        net = FaultInjector(0).corrupt_rc_values(chain_net(6),
                                                 "zero_resistance")
        with pytest.raises(InputError):
            conductance_matrix(net)

    def test_inf_cap_is_input_error(self):
        net = FaultInjector(0).corrupt_rc_values(chain_net(6), "inf_cap")
        with pytest.raises(InputError):
            capacitance_vector(net)

    def test_transfer_matrix_condition_guard(self):
        system = reduce_source(singular_mna_net())
        with pytest.raises(NumericalError, match="ill-conditioned"):
            transfer_resistance_matrix(system)

    def test_healthy_net_unaffected(self):
        net = chain_net(8)
        g = conductance_matrix(net)
        caps = capacitance_vector(net)
        assert np.all(np.isfinite(g)) and np.all(np.isfinite(caps))
        system = reduce_source(net)
        assert np.all(np.isfinite(transfer_resistance_matrix(system)))


class TestSimulatorInputGuards:
    def test_nonpositive_input_slew_typed(self):
        timer = GoldenTimer(drive_resistance=100.0)
        with pytest.raises(InputError):
            timer.analyze(chain_net(5), -1e-12)

    def test_nan_input_slew_typed(self):
        timer = GoldenTimer(drive_resistance=100.0)
        with pytest.raises(InputError):
            timer.analyze(chain_net(5), float("nan"))
