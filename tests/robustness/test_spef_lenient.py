"""Lenient SPEF parsing: malformed nets are skipped with line provenance."""

import pytest

from repro.rcnet import (SkippedNet, SPEFError, chain_net, load_spef,
                         parse_spef, write_spef)

HEADER = """*SPEF "IEEE 1481-1998"
*DESIGN "lenient"
*DIVIDER /
*DELIMITER :
*T_UNIT 1 PS
*C_UNIT 1 FF
*R_UNIT 1 OHM
"""

GOOD_NET = """*D_NET good 2
*CONN
*I good:0 O
*I good:1 I
*CAP
1 good:0 1
2 good:1 1
*RES
1 good:0 good:1 50
*END
"""

BAD_VALUE_NET = """*D_NET badval 2
*CONN
*I badval:0 O
*I badval:1 I
*CAP
1 badval:0 1
2 badval:1 1
*RES
1 badval:0 badval:1 bogus
*END
"""

NEGATIVE_R_NET = """*D_NET negres 2
*CONN
*I negres:0 O
*I negres:1 I
*CAP
1 negres:0 1
2 negres:1 1
*RES
1 negres:0 negres:1 -50
*END
"""


class TestLenientMode:
    def test_healthy_text_has_no_skips(self):
        design = parse_spef(write_spef([chain_net(5)]), strict=False)
        assert len(design.nets) == 1
        assert design.skipped == []

    def test_bad_value_net_skipped_with_reason(self):
        text = HEADER + GOOD_NET + BAD_VALUE_NET + GOOD_NET.replace(
            "good", "good2")
        with pytest.raises(SPEFError):
            parse_spef(text)
        design = parse_spef(text, strict=False)
        assert [n.name for n in design.nets] == ["good", "good2"]
        (skip,) = design.skipped
        assert isinstance(skip, SkippedNet)
        assert skip.name == "badval"
        assert "bogus" in skip.reason

    def test_skip_line_points_at_net_header(self):
        text = HEADER + GOOD_NET + BAD_VALUE_NET
        design = parse_spef(text, strict=False)
        header_line = text.splitlines().index("*D_NET badval 2") + 1
        assert design.skipped[0].line == header_line

    def test_negative_resistance_skipped(self):
        text = HEADER + GOOD_NET + NEGATIVE_R_NET
        design = parse_spef(text, strict=False)
        assert [n.name for n in design.nets] == ["good"]
        assert design.skipped[0].name == "negres"

    def test_multiple_bad_nets_all_recorded(self):
        text = HEADER + BAD_VALUE_NET + GOOD_NET + NEGATIVE_R_NET
        design = parse_spef(text, strict=False)
        assert [n.name for n in design.nets] == ["good"]
        assert [s.name for s in design.skipped] == ["badval", "negres"]

    def test_missing_units_fatal_even_lenient(self):
        headerless = '*SPEF "IEEE 1481-1998"\n*DESIGN "x"\n' + GOOD_NET
        with pytest.raises(SPEFError):
            parse_spef(headerless, strict=False)

    def test_load_spef_forwards_strict_flag(self, tmp_path):
        path = tmp_path / "design.spef"
        path.write_text(HEADER + GOOD_NET + BAD_VALUE_NET)
        with pytest.raises(SPEFError):
            load_spef(str(path))
        design = load_spef(str(path), strict=False)
        assert len(design.nets) == 1
        assert len(design.skipped) == 1


class TestStrictDefault:
    def test_strict_is_the_default(self):
        text = HEADER + BAD_VALUE_NET
        with pytest.raises(SPEFError):
            parse_spef(text)
