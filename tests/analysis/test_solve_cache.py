"""The eigensolve memo cache: keying, LRU bound, counters, equivalence."""

import numpy as np
import pytest

from repro.analysis import (GoldenTimer, configure_solve_cache,
                            get_solve_cache, solve_key)
from repro.analysis.mna import capacitance_vector
from repro.obs import get_metrics
from repro.rcnet import chain_net, star_net


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test runs against its own cache; restore the default after."""
    configure_solve_cache(8)
    yield
    configure_solve_cache(512)


def _counters():
    registry = get_metrics()
    return (registry.counter("simulator.cache_hits").value,
            registry.counter("simulator.cache_misses").value,
            registry.counter("simulator.cache_evictions").value)


def _key(net, drive_resistance=100.0):
    caps = capacitance_vector(net, miller_factor=None, sink_loads=None)
    return solve_key(net, caps, drive_resistance)


class TestSolveKey:
    def test_content_identical_nets_share_a_key(self):
        # Distinct objects, different names — same (topology, R, C, driver).
        a = chain_net(5, name="a")
        b = chain_net(5, name="b")
        assert _key(a) == _key(b)

    def test_key_changes_with_resistance(self):
        a = chain_net(5, resistance=50.0)
        b = chain_net(5, resistance=51.0)
        assert _key(a) != _key(b)

    def test_key_changes_with_cap(self):
        a = chain_net(5, cap=1e-15)
        b = chain_net(5, cap=2e-15)
        assert _key(a) != _key(b)

    def test_key_changes_with_drive_resistance(self):
        net = chain_net(5)
        assert _key(net, 100.0) != _key(net, 200.0)

    def test_key_changes_with_topology(self):
        assert _key(chain_net(5)) != _key(star_net(3))

    def test_key_changes_with_sink_loads(self):
        net = chain_net(5)
        bare = capacitance_vector(net, miller_factor=None, sink_loads=None)
        loaded = capacitance_vector(net, miller_factor=None,
                                    sink_loads=np.array([4e-15]))
        assert solve_key(net, bare, 100.0) != solve_key(net, loaded, 100.0)


class TestCacheCounters:
    def test_miss_then_hit(self):
        timer = GoldenTimer(si_mode=False)
        net = chain_net(6)
        hits0, misses0, _ = _counters()
        timer.analyze(net, input_slew=20e-12)
        hits1, misses1, _ = _counters()
        assert misses1 == misses0 + 1
        assert hits1 == hits0
        timer.analyze(net, input_slew=20e-12)
        hits2, misses2, _ = _counters()
        assert hits2 == hits1 + 1
        assert misses2 == misses1

    def test_slew_does_not_affect_the_key(self):
        # The ramp time enters the modal response, not the decomposition,
        # so a different input slew on the same net must hit.
        timer = GoldenTimer(si_mode=False)
        net = chain_net(6)
        timer.analyze(net, input_slew=20e-12)
        hits0 = _counters()[0]
        timer.analyze(net, input_slew=40e-12)
        assert _counters()[0] == hits0 + 1

    def test_disabled_cache_never_counts(self):
        configure_solve_cache(0)
        assert not get_solve_cache().enabled
        timer = GoldenTimer(si_mode=False)
        net = chain_net(6)
        before = _counters()
        timer.analyze(net, input_slew=20e-12)
        timer.analyze(net, input_slew=20e-12)
        assert _counters() == before
        assert len(get_solve_cache()) == 0


class TestLRUBound:
    def test_occupancy_never_exceeds_maxsize(self):
        cache = configure_solve_cache(3)
        timer = GoldenTimer(si_mode=False)
        for n in range(2, 10):
            timer.analyze(chain_net(n), input_slew=20e-12)
            assert len(cache) <= 3

    def test_eviction_counter_advances(self):
        configure_solve_cache(2)
        timer = GoldenTimer(si_mode=False)
        evictions0 = _counters()[2]
        for n in range(2, 7):
            timer.analyze(chain_net(n), input_slew=20e-12)
        assert _counters()[2] == evictions0 + 3

    def test_lru_order_evicts_coldest(self):
        configure_solve_cache(2)
        timer = GoldenTimer(si_mode=False)
        a, b, c = chain_net(3), chain_net(4), chain_net(5)
        timer.analyze(a, input_slew=20e-12)   # miss: [a]
        timer.analyze(b, input_slew=20e-12)   # miss: [a, b]
        timer.analyze(a, input_slew=20e-12)   # hit, refreshes a: [b, a]
        timer.analyze(c, input_slew=20e-12)   # miss, evicts b: [a, c]
        hits0 = _counters()[0]
        timer.analyze(a, input_slew=20e-12)
        assert _counters()[0] == hits0 + 1    # a survived
        misses0 = _counters()[1]
        timer.analyze(b, input_slew=20e-12)
        assert _counters()[1] == misses0 + 1  # b was the LRU victim

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError):
            configure_solve_cache(-1)


class TestCachedEquivalence:
    def test_cached_results_bitwise_equal_uncached(self):
        nets = [chain_net(n) for n in (4, 7, 7, 4)] + [star_net(4)]

        configure_solve_cache(0)
        timer = GoldenTimer(si_mode=False)
        uncached = [timer.analyze(net, input_slew=20e-12) for net in nets]

        configure_solve_cache(8)
        timer = GoldenTimer(si_mode=False)
        cached = [timer.analyze(net, input_slew=20e-12) for net in nets]

        for lhs, rhs in zip(uncached, cached):
            np.testing.assert_array_equal(lhs.delays(), rhs.delays())
            np.testing.assert_array_equal(lhs.slews(), rhs.slews())

    def test_repeat_analysis_bitwise_stable(self):
        timer = GoldenTimer(si_mode=False)
        net = chain_net(8)
        first = timer.analyze(net, input_slew=20e-12)
        second = timer.analyze(net, input_slew=20e-12)  # served from cache
        np.testing.assert_array_equal(first.delays(), second.delays())
        np.testing.assert_array_equal(first.slews(), second.slews())


class TestPersistence:
    """The disk tier: warm restarts, corruption tolerance, schema pinning."""

    def _analyze(self, tmp_path, maxsize=8):
        configure_solve_cache(maxsize, persist_dir=str(tmp_path))
        timer = GoldenTimer(si_mode=False)
        return timer.analyze(chain_net(7), input_slew=20e-12)

    def test_inserts_write_npz_files(self, tmp_path):
        self._analyze(tmp_path)
        files = list(tmp_path.glob("*.npz"))
        assert files, "persistent cache wrote no solve files"

    def test_fresh_cache_warm_starts_from_disk(self, tmp_path):
        first = self._analyze(tmp_path)
        registry = get_metrics()
        before = registry.counter("simulator.cache_persist_hits").value
        # A brand-new cache (fresh process stand-in) over the same dir:
        # the solve comes off disk, not from a recompute.
        second = self._analyze(tmp_path)
        after = registry.counter("simulator.cache_persist_hits").value
        assert after > before
        np.testing.assert_array_equal(first.delays(), second.delays())
        np.testing.assert_array_equal(first.slews(), second.slews())

    def test_corrupted_file_degrades_to_recompute(self, tmp_path):
        result = self._analyze(tmp_path)
        for path in tmp_path.glob("*.npz"):
            path.write_bytes(b"garbage, not a zip archive")
        again = self._analyze(tmp_path)
        np.testing.assert_array_equal(result.delays(), again.delays())

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        self._analyze(tmp_path)
        [path] = list(tmp_path.glob("*.npz"))
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
        arrays["schema"] = np.str_("solve-cache/0")
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        registry = get_metrics()
        before = registry.counter("simulator.cache_persist_misses").value
        self._analyze(tmp_path)
        after = registry.counter("simulator.cache_persist_misses").value
        assert after > before

    def test_unwritable_dir_degrades_to_memory_only(self, tmp_path):
        from repro.analysis.cache import SolveCache

        target = tmp_path / "file-not-dir"
        target.write_text("occupied")
        cache = SolveCache(4, persist_dir=str(target))
        assert cache.persist_dir is None       # degraded, not raised
