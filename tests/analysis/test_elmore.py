"""Elmore analysis: closed forms, tree identities, non-tree generalization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (downstream_caps, elmore_delay_to_sink,
                            elmore_delays, path_elmore_delay, stage_delays)
from repro.rcnet import (chain_net, extract_wire_paths, random_nontree_net,
                         random_tree_net, star_net)


class TestChainClosedForm:
    def test_uniform_ladder(self):
        n, r, c = 8, 50.0, 1e-15
        net = chain_net(n, resistance=r, cap=c)
        delays = elmore_delays(net)
        expected = [r * c * sum(n - j for j in range(1, k + 1))
                    for k in range(n)]
        np.testing.assert_allclose(delays, expected, rtol=1e-12)

    def test_source_has_zero_delay(self, small_chain):
        assert elmore_delays(small_chain)[small_chain.source] == 0.0

    def test_sink_helper(self, small_chain):
        assert elmore_delay_to_sink(small_chain, 9) == pytest.approx(
            elmore_delays(small_chain)[9])


class TestStarClosedForm:
    def test_star_delays(self):
        r, c = 100.0, 1e-15
        net = star_net(3, resistance=r, cap=c)
        delays = elmore_delays(net)
        # hub: R * (hub + 3 sinks caps) = 100 * 4c
        assert delays[1] == pytest.approx(r * 4 * c)
        # each sink: hub delay + R * c
        for sink in net.sinks:
            assert delays[sink] == pytest.approx(r * 4 * c + r * c)


class TestTreeProperties:
    @given(st.integers(min_value=3, max_value=40),
           st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=30, deadline=None)
    def test_monotone_along_paths(self, n_nodes, seed):
        """On a tree, Elmore delay increases from source to sink."""
        net = random_tree_net(np.random.default_rng(seed), n_nodes)
        delays = elmore_delays(net)
        for path in extract_wire_paths(net):
            seq = delays[list(path.nodes)]
            assert np.all(np.diff(seq) > 0.0)

    def test_stage_delays_sum_to_path_elmore_on_chain(self, small_chain):
        """On a chain, the path covers the whole net, so stage delays sum
        exactly to the sink's Elmore delay."""
        path = extract_wire_paths(small_chain)[0]
        stages = stage_delays(small_chain, path)
        assert stages.sum() == pytest.approx(
            elmore_delays(small_chain)[9], rel=1e-12)
        assert path_elmore_delay(small_chain, path) == pytest.approx(
            stages.sum())

    def test_stage_delays_match_tree_elmore(self, tree_net):
        """On any tree, summed stage delays equal exact Elmore at the sink."""
        delays = elmore_delays(tree_net)
        for path in extract_wire_paths(tree_net):
            assert path_elmore_delay(tree_net, path) == pytest.approx(
                delays[path.sink], rel=1e-9)

    def test_downstream_caps_root_is_total(self, tree_net):
        downstream = downstream_caps(tree_net)
        assert downstream[tree_net.source] == pytest.approx(
            tree_net.total_cap + tree_net.total_coupling_cap)

    def test_downstream_caps_leaves_own_cap(self, tree_net):
        downstream = downstream_caps(tree_net)
        caps = tree_net.cap_vector() + tree_net.coupling_cap_vector()
        for node in tree_net.nodes:
            if tree_net.degree(node.index) == 1 and node.index != tree_net.source:
                assert downstream[node.index] == pytest.approx(caps[node.index])

    def test_sink_loads_increase_delay(self, tree_net):
        base = elmore_delays(tree_net)
        loaded = elmore_delays(
            tree_net, sink_loads=np.full(tree_net.num_sinks, 5e-15))
        for sink in tree_net.sinks:
            assert loaded[sink] > base[sink]


class TestNonTreeGeneralization:
    @given(st.integers(min_value=5, max_value=40),
           st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=30, deadline=None)
    def test_positive_delays(self, n_nodes, seed):
        net = random_nontree_net(np.random.default_rng(seed), n_nodes,
                                 n_loops=3)
        delays = elmore_delays(net)
        mask = np.ones(net.num_nodes, dtype=bool)
        mask[net.source] = False
        assert np.all(delays[mask] > 0.0)

    def test_loop_reduces_delay(self):
        """Adding a parallel route must strictly reduce Elmore delay."""
        from repro.rcnet import RCNetBuilder

        def build(with_loop):
            b = RCNetBuilder("loop")
            for i in range(5):
                b.add_node(f"n{i}", cap=1e-15)
            for i in range(4):
                b.add_edge(f"n{i}", f"n{i+1}", 100.0)
            if with_loop:
                b.add_edge("n0", "n4", 150.0)
            b.set_source("n0")
            b.add_sink("n4")
            return b.build()

        without = elmore_delay_to_sink(build(False), 4)
        with_loop = elmore_delay_to_sink(build(True), 4)
        assert with_loop < without

    def test_downstream_caps_well_defined_on_nontree(self, nontree_net):
        downstream = downstream_caps(nontree_net)
        total = nontree_net.total_cap + nontree_net.total_coupling_cap
        assert downstream[nontree_net.source] == pytest.approx(total)
        assert np.all(downstream > 0.0)
