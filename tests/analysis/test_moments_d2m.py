"""Moments and the D2M metric."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import d2m_delays, elmore_delays, moments
from repro.rcnet import chain_net, random_net


class TestMoments:
    def test_first_moment_is_negative_elmore(self, nontree_net):
        m = moments(nontree_net, order=1)
        np.testing.assert_allclose(-m[0], elmore_delays(nontree_net),
                                   rtol=1e-10)

    def test_second_moment_positive(self, nontree_net):
        m = moments(nontree_net, order=2)
        mask = np.ones(nontree_net.num_nodes, dtype=bool)
        mask[nontree_net.source] = False
        assert np.all(m[1][mask] > 0.0)

    def test_single_pole_closed_form(self):
        """Two-node RC: H(s) = 1/(1+sRC) has m_k = (-RC)^k."""
        from repro.rcnet import RCEdge, RCNet, RCNode

        r, c = 1000.0, 1e-15
        net = RCNet("rc", [RCNode(0, "a", 0.0), RCNode(1, "b", c)],
                    [RCEdge(0, 1, r)], 0, [1])
        m = moments(net, order=3)
        tau = r * c
        assert m[0, 1] == pytest.approx(-tau)
        assert m[1, 1] == pytest.approx(tau ** 2)
        assert m[2, 1] == pytest.approx(-tau ** 3)

    def test_invalid_order(self, small_chain):
        with pytest.raises(ValueError):
            moments(small_chain, order=0)

    def test_source_rows_zero(self, small_chain):
        m = moments(small_chain, order=2)
        np.testing.assert_allclose(m[:, small_chain.source], 0.0)


class TestD2M:
    def test_single_pole_exact(self):
        """For a single pole, D2M = ln2 * tau — the exact 50% delay."""
        from repro.rcnet import RCEdge, RCNet, RCNode

        r, c = 1000.0, 1e-15
        net = RCNet("rc", [RCNode(0, "a", 0.0), RCNode(1, "b", c)],
                    [RCEdge(0, 1, r)], 0, [1])
        assert d2m_delays(net)[1] == pytest.approx(np.log(2) * r * c)

    def test_d2m_below_elmore_on_chains(self, small_chain):
        """Elmore is provably pessimistic for 50% delay; D2M is tighter."""
        d2m = d2m_delays(small_chain)
        elmore = elmore_delays(small_chain)
        assert d2m[9] < elmore[9]

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=30, deadline=None)
    def test_d2m_positive_and_below_elmore(self, seed):
        rng = np.random.default_rng(seed)
        net = random_net(rng, name="d2m")
        d2m = d2m_delays(net)
        elmore = elmore_delays(net)
        mask = np.ones(net.num_nodes, dtype=bool)
        mask[net.source] = False
        assert np.all(d2m[mask] > 0.0)
        # D2M <= Elmore everywhere (ln2 * m1^2/sqrt(m2) <= m1 since
        # m2 >= (ln2 * m1)^2 / m1^2 ... holds for RC moment structure).
        assert np.all(d2m[mask] <= elmore[mask] * 1.0000001)

    def test_sink_helper(self, small_chain):
        from repro.analysis import d2m_delay_to_sink

        assert d2m_delay_to_sink(small_chain, 9) == pytest.approx(
            d2m_delays(small_chain)[9])
