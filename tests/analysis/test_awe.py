"""Two-pole AWE reduced-order model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (GoldenTimer, awe2_delays, awe2_timing,
                            d2m_delays, elmore_delays, fit_two_pole)
from repro.rcnet import RCEdge, RCNet, RCNode, chain_net, random_net


class TestFitTwoPole:
    def test_single_pole_system_recovered(self):
        """Moments of 1/(1+s*tau): m1=-tau, m2=tau^2, m3=-tau^3; the Pade
        fit must reproduce the exact pole."""
        tau = 1e-12
        model = fit_two_pole(-tau, tau ** 2, -tau ** 3)
        # Degenerate to a single pole is allowed (det -> 0); if a model is
        # returned its dominant pole must be -1/tau.
        if model is not None:
            assert min(abs(model.p1 + 1 / tau),
                       abs(model.p2 + 1 / tau)) < 1e-3 / tau

    def test_two_pole_system_exact(self):
        """Construct H(s) = 0.5/(1+s t1) + 0.5/(1+s t2) moments and verify
        pole recovery."""
        t1, t2 = 1e-12, 5e-12
        m1 = -(0.5 * t1 + 0.5 * t2)
        m2 = 0.5 * t1 ** 2 + 0.5 * t2 ** 2
        m3 = -(0.5 * t1 ** 3 + 0.5 * t2 ** 3)
        model = fit_two_pole(m1, m2, m3)
        assert model is not None
        poles = sorted([model.p1, model.p2])
        np.testing.assert_allclose(sorted([-1 / t1, -1 / t2]), poles,
                                   rtol=1e-6)

    def test_response_starts_at_zero_and_settles_at_one(self):
        t1, t2 = 1e-12, 4e-12
        m1 = -(0.5 * t1 + 0.5 * t2)
        m2 = 0.5 * t1 ** 2 + 0.5 * t2 ** 2
        m3 = -(0.5 * t1 ** 3 + 0.5 * t2 ** 3)
        model = fit_two_pole(m1, m2, m3)
        assert model.value(0.0) == pytest.approx(0.0, abs=1e-9)
        assert model.value(100 * t2) == pytest.approx(1.0, rel=1e-9)


class TestAWE2OnNets:
    def test_single_pole_net_exact(self):
        r, c = 1000.0, 2e-15
        net = RCNet("rc", [RCNode(0, "a", 1e-18), RCNode(1, "b", c)],
                    [RCEdge(0, 1, r)], 0, [1])
        delays, slews = awe2_timing(net)
        tau = r * c  # the tiny source cap perturbs tau negligibly
        assert delays[1] == pytest.approx(np.log(2) * tau, rel=1e-3)
        assert slews[1] == pytest.approx(np.log(9) * tau, rel=1e-3)

    def test_beats_elmore_on_chain(self):
        """AWE-2 step delay is far closer to golden than Elmore is."""
        net = chain_net(10, resistance=100.0, cap=2e-15)
        golden = GoldenTimer(drive_resistance=1e-3, si_mode=False).analyze(
            net, input_slew=1e-15).delays()[0]
        awe = awe2_delays(net)[9]
        elm = elmore_delays(net)[9]
        assert abs(awe - golden) < 0.1 * abs(elm - golden)

    def test_at_least_as_good_as_d2m_on_chain(self):
        net = chain_net(12, resistance=80.0, cap=1.5e-15)
        golden = GoldenTimer(drive_resistance=1e-3, si_mode=False).analyze(
            net, input_slew=1e-15).delays()[0]
        awe_err = abs(awe2_delays(net)[11] - golden)
        d2m_err = abs(d2m_delays(net)[11] - golden)
        assert awe_err <= d2m_err * 1.5

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_positive_and_finite_everywhere(self, seed):
        rng = np.random.default_rng(seed)
        net = random_net(rng, name="awe")
        delays, slews = awe2_timing(net)
        mask = np.ones(net.num_nodes, dtype=bool)
        mask[net.source] = False
        assert np.all(delays[mask] > 0.0)
        assert np.all(slews[mask] > 0.0)
        assert np.all(np.isfinite(delays))
        assert np.all(np.isfinite(slews))

    def test_sink_loads_increase_delay(self, tree_net):
        base = awe2_delays(tree_net)
        loaded = awe2_delays(tree_net,
                             sink_loads=np.full(tree_net.num_sinks, 8e-15))
        for sink in tree_net.sinks:
            assert loaded[sink] > base[sink]


class TestAWEWireModel:
    def test_sta_integration(self, library):
        from repro.design import (AWEWireModel, DesignSpec, GoldenWireModel,
                                  STAEngine, generate_design)

        design = generate_design(
            DesignSpec("awe_d", n_combinational=40, n_ffs=6, n_paths=8,
                       seed=5), library)
        awe = STAEngine(design, AWEWireModel()).analyze_design()
        golden = STAEngine(design, GoldenWireModel()).analyze_design()
        assert np.corrcoef(awe.arrivals(), golden.arrivals())[0, 1] > 0.95


class TestNodesRestriction:
    """The serving-path fast path: crossings solved only at listed nodes."""

    def test_sink_rows_match_the_full_solve(self, rng):
        for seed in range(5):
            net = random_net(np.random.default_rng(seed), name=f"n{seed}",
                             n_nodes_range=(6, 20), n_sinks_range=(1, 4))
            sinks = list(net.sinks)
            full_d, full_s = awe2_timing(net)
            part_d, part_s = awe2_timing(net, nodes=sinks)
            np.testing.assert_allclose(part_d[sinks], full_d[sinks],
                                       rtol=1e-9)
            np.testing.assert_allclose(part_s[sinks], full_s[sinks],
                                       rtol=1e-9)

    def test_unlisted_rows_stay_zero(self):
        net = chain_net(8)
        delays, slews = awe2_timing(net, nodes=[net.sinks[0]])
        others = [n for n in range(net.num_nodes)
                  if n != net.source and n not in net.sinks]
        assert all(delays[n] == 0.0 and slews[n] == 0.0 for n in others)
        assert delays[net.sinks[0]] > 0.0

    def test_source_is_always_excluded(self):
        net = chain_net(6)
        delays, _ = awe2_timing(net, nodes=[net.source, net.sinks[0]])
        assert delays[net.source] == 0.0

    def test_sink_loads_respected_under_restriction(self):
        net = chain_net(8)
        loads = np.array([5e-15])
        bare_d, _ = awe2_timing(net, nodes=net.sinks)
        loaded_d, _ = awe2_timing(net, sink_loads=loads, nodes=net.sinks)
        assert loaded_d[net.sinks[0]] > bare_d[net.sinks[0]]


class TestVectorizedCrossings:
    """The batched bisection agrees with the scalar two-pole model."""

    def test_matches_scalar_crossing_solver(self):
        from repro.analysis.awe import _first_crossings, fit_two_pole

        rng = np.random.default_rng(17)
        fits, scalars = [], []
        while len(fits) < 12:
            net = random_net(rng, name="v", n_nodes_range=(6, 18),
                             n_sinks_range=(1, 3))
            from repro.analysis.moments import moments

            m = moments(net, order=3)
            for node in net.sinks:
                model = fit_two_pole(m[0, node], m[1, node], m[2, node])
                if model is not None:
                    fits.append(model)
        p1 = np.array([f.p1 for f in fits])
        p2 = np.array([f.p2 for f in fits])
        r1 = np.array([f.r1 for f in fits])
        r2 = np.array([f.r2 for f in fits])
        guesses = np.array([-1.0 / f.p1 for f in fits])
        levels = np.array([0.1, 0.5, 0.9])
        table = _first_crossings(p1, p2, r1, r2, guesses, levels)
        for i, fit in enumerate(fits):
            for j, level in enumerate(levels):
                scalar = fit.crossing(float(level), guesses[i])
                assert table[i, j] == pytest.approx(scalar, rel=1e-9)
