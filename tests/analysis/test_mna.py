"""MNA assembly: Laplacian structure, reduction, transfer resistances."""

import numpy as np
import pytest

from repro.analysis import (capacitance_vector, conductance_matrix,
                            reduce_source, transfer_resistance_matrix)
from repro.rcnet import CouplingCap, RCEdge, RCNet, RCNode, chain_net


class TestConductanceMatrix:
    def test_laplacian_row_sums_zero(self, nontree_net):
        g = conductance_matrix(nontree_net)
        np.testing.assert_allclose(g.sum(axis=1), 0.0, atol=1e-12)

    def test_symmetric(self, nontree_net):
        g = conductance_matrix(nontree_net)
        np.testing.assert_allclose(g, g.T)

    def test_two_node_values(self):
        nodes = [RCNode(0, "a", 1e-15), RCNode(1, "b", 1e-15)]
        net = RCNet("n", nodes, [RCEdge(0, 1, 200.0)], 0, [1])
        g = conductance_matrix(net)
        np.testing.assert_allclose(g, [[0.005, -0.005], [-0.005, 0.005]])


class TestCapacitanceVector:
    def test_plain(self, small_chain):
        np.testing.assert_allclose(capacitance_vector(small_chain), 2e-15)

    def test_coupling_grounded_quietly(self):
        nodes = [RCNode(0, "a", 1e-15), RCNode(1, "b", 1e-15)]
        net = RCNet("n", nodes, [RCEdge(0, 1, 100.0)], 0, [1],
                    couplings=[CouplingCap(1, "x", 2e-15, activity=0.5)])
        caps = capacitance_vector(net)
        assert caps[1] == pytest.approx(3e-15)

    def test_miller_factor_scales_coupling(self):
        nodes = [RCNode(0, "a", 1e-15), RCNode(1, "b", 1e-15)]
        net = RCNet("n", nodes, [RCEdge(0, 1, 100.0)], 0, [1],
                    couplings=[CouplingCap(1, "x", 2e-15, activity=0.5)])
        caps = capacitance_vector(net, miller_factor=1.0)
        assert caps[1] == pytest.approx(1e-15 + 2e-15 * 1.5)

    def test_sink_loads_added(self, small_chain):
        caps = capacitance_vector(small_chain, sink_loads=np.array([5e-15]))
        assert caps[9] == pytest.approx(7e-15)
        assert caps[0] == pytest.approx(2e-15)

    def test_sink_loads_wrong_shape(self, small_chain):
        with pytest.raises(ValueError):
            capacitance_vector(small_chain, sink_loads=np.zeros(3))


class TestReduceSource:
    def test_shape_and_positive_definite(self, nontree_net):
        system = reduce_source(nontree_net)
        n = nontree_net.num_nodes - 1
        assert system.g.shape == (n, n)
        eigenvalues = np.linalg.eigvalsh(system.g)
        assert np.all(eigenvalues > 0.0)

    def test_index_map(self, small_chain):
        system = reduce_source(small_chain)
        assert system.index_map[small_chain.source] == -1
        assert sorted(system.index_map[system.nodes]) == list(range(9))
        with pytest.raises(ValueError):
            system.reduced_index(small_chain.source)

    def test_source_conductance(self, small_chain):
        system = reduce_source(small_chain)
        # Only node 1 touches the source on a chain.
        idx = system.reduced_index(1)
        assert system.source_conductance[idx] == pytest.approx(1.0 / 100.0)
        others = np.delete(system.source_conductance, idx)
        np.testing.assert_allclose(others, 0.0)

class TestTransferResistance:
    def test_chain_transfer_resistances(self, small_chain):
        """R_jk on a chain = resistance of the shared path from source."""
        system = reduce_source(small_chain)
        r = transfer_resistance_matrix(system)
        # Node i (1-indexed from source) at reduced index i-1.
        for j in range(1, 10):
            for k in range(1, 10):
                shared = min(j, k) * 100.0
                assert r[system.reduced_index(j),
                         system.reduced_index(k)] == pytest.approx(shared)
