"""Golden transient simulator: physics invariants and closed-form checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import GoldenTimer, elmore_delays
from repro.rcnet import (RCEdge, RCNet, RCNetBuilder, RCNode, chain_net,
                         random_net, random_nontree_net)


def single_pole_net(r=1000.0, c=2e-15):
    return RCNet("rc", [RCNode(0, "a", 1e-18), RCNode(1, "b", c)],
                 [RCEdge(0, 1, r)], 0, [1])


class TestSinglePole:
    def test_step_delay_matches_theory(self):
        """With a fast ramp and tiny drive R, sink delay -> ln2 * RC."""
        net = single_pole_net()
        timer = GoldenTimer(drive_resistance=1e-3, si_mode=False)
        result = timer.analyze(net, input_slew=1e-15)
        tau = 1000.0 * 2e-15
        assert result.delays()[0] == pytest.approx(np.log(2) * tau, rel=1e-2)

    def test_step_slew_matches_theory(self):
        """10-90 slew of a single pole is ln9 * tau."""
        net = single_pole_net()
        timer = GoldenTimer(drive_resistance=1e-3, si_mode=False)
        result = timer.analyze(net, input_slew=1e-15)
        tau = 1000.0 * 2e-15
        assert result.slews()[0] == pytest.approx(np.log(9) * tau, rel=1e-2)


class TestPhysicalInvariants:
    def test_voltages_bounded_and_monotone_settling(self, small_chain):
        timer = GoldenTimer(si_mode=False)
        solution = timer.solve(small_chain, input_slew=20e-12)
        horizon = 300e-12
        for t in np.linspace(1e-15, horizon, 50):
            v = solution.voltage_at(float(t))
            assert np.all(v >= -1e-9)
            assert np.all(v <= timer.vdd + 1e-9)
        final = solution.voltage_at(100 * horizon)
        np.testing.assert_allclose(final, timer.vdd, rtol=1e-6)

    def test_delay_ordering_along_chain(self, small_chain):
        """Nodes farther down the chain cross 50% later."""
        timer = GoldenTimer(si_mode=False)
        solution = timer.solve(small_chain, input_slew=20e-12)
        level = 0.5 * timer.vdd
        crossings = [solution.crossing_time(i, level, 1e-9)
                     for i in range(small_chain.num_nodes)]
        assert all(a < b for a, b in zip(crossings, crossings[1:]))

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=15, deadline=None)
    def test_delays_positive_and_finite(self, seed):
        rng = np.random.default_rng(seed)
        net = random_net(rng, name="sim")
        result = GoldenTimer().analyze(net, input_slew=25e-12)
        assert np.all(result.delays() > 0.0)
        assert np.all(np.isfinite(result.delays()))
        assert np.all(result.slews() > 0.0)

    def test_delay_close_to_elmore_scale(self, tree_net):
        """Golden 50% delay lies between D2M-ish and Elmore bounds loosely:
        positive and below ~1.2x Elmore (Elmore upper-bounds 50% delay on
        RC trees with monotone responses)."""
        timer = GoldenTimer(si_mode=False)
        result = timer.analyze(tree_net, input_slew=20e-12)
        elmore = elmore_delays(tree_net)
        for timing in result.sink_timings:
            assert 0.0 < timing.delay < 1.2 * elmore[timing.sink] + 1e-13

    def test_slower_input_gives_larger_sink_slew(self, tree_net):
        timer = GoldenTimer(si_mode=False)
        fast = timer.analyze(tree_net, input_slew=10e-12)
        slow = timer.analyze(tree_net, input_slew=80e-12)
        assert np.all(slow.slews() > fast.slews())

    def test_larger_drive_resistance_slows_source(self, tree_net):
        weak = GoldenTimer(drive_resistance=2000.0, si_mode=False)
        strong = GoldenTimer(drive_resistance=50.0, si_mode=False)
        slew_weak = weak.analyze(tree_net, input_slew=20e-12).source_slew
        slew_strong = strong.analyze(tree_net, input_slew=20e-12).source_slew
        assert slew_weak > slew_strong

    def test_sink_loads_slow_sinks(self, tree_net):
        timer = GoldenTimer(si_mode=False)
        base = timer.analyze(tree_net, input_slew=20e-12)
        loaded = timer.analyze(tree_net, input_slew=20e-12,
                               sink_loads=np.full(tree_net.num_sinks, 10e-15))
        assert np.all(loaded.delays() > base.delays())


class TestSIMode:
    def _coupled_net(self):
        b = RCNetBuilder("si")
        for i in range(6):
            b.add_node(f"n{i}", cap=1e-15)
        for i in range(5):
            b.add_edge(f"n{i}", f"n{i+1}", 100.0)
        b.set_source("n0")
        b.add_sink("n5")
        b.add_coupling("n4", "aggr", 3e-15, activity=0.9)
        return b.build()

    def test_si_pushes_out_delay(self):
        net = self._coupled_net()
        quiet = GoldenTimer(si_mode=False).analyze(net, input_slew=20e-12)
        noisy = GoldenTimer(si_mode=True).analyze(net, input_slew=20e-12)
        assert noisy.delays()[0] > quiet.delays()[0]

    def test_si_strength_scales_pushout(self):
        net = self._coupled_net()
        quiet = GoldenTimer(si_mode=False).analyze(net, 20e-12).delays()[0]
        mild = GoldenTimer(si_strength=0.5).analyze(net, 20e-12).delays()[0]
        strong = GoldenTimer(si_strength=2.0).analyze(net, 20e-12).delays()[0]
        assert quiet < mild < strong

    def test_si_no_couplings_equals_quiet(self, small_chain):
        quiet = GoldenTimer(si_mode=False).analyze(small_chain, 20e-12)
        noisy = GoldenTimer(si_mode=True).analyze(small_chain, 20e-12)
        np.testing.assert_allclose(quiet.delays(), noisy.delays(), rtol=1e-9)

    def test_pushout_depends_on_coupling_location(self):
        """The same coupling cap near the sink hurts more than near the
        source — the location-dependence only graph structure can encode."""
        def build(victim):
            b = RCNetBuilder("loc")
            for i in range(8):
                b.add_node(f"n{i}", cap=1e-15)
            for i in range(7):
                b.add_edge(f"n{i}", f"n{i+1}", 100.0)
            b.set_source("n0")
            b.add_sink("n7")
            b.add_coupling(victim, "aggr", 3e-15, activity=0.9)
            return b.build()

        near_source = GoldenTimer().analyze(build("n1"), 20e-12).delays()[0]
        near_sink = GoldenTimer().analyze(build("n6"), 20e-12).delays()[0]
        assert near_sink > near_source


class TestResultContainer:
    def test_timing_for_lookup(self, tree_net):
        result = GoldenTimer(si_mode=False).analyze(tree_net, 20e-12)
        sink = tree_net.sinks[0]
        assert result.timing_for(sink).sink == sink
        with pytest.raises(KeyError):
            result.timing_for(9999)

    def test_invalid_inputs(self, tree_net):
        timer = GoldenTimer()
        with pytest.raises(ValueError):
            timer.analyze(tree_net, input_slew=0.0)
        with pytest.raises(ValueError):
            timer.analyze(tree_net, 20e-12, transition="wobble")
        with pytest.raises(ValueError):
            GoldenTimer(delay_threshold=0.95)
        with pytest.raises(ValueError):
            GoldenTimer(si_strength=-1.0)

    def test_analyze_paths_keyed_by_sink(self, tree_net):
        timings = GoldenTimer(si_mode=False).analyze_paths(tree_net, 20e-12)
        assert set(timings) == set(tree_net.sinks)
