"""Independent numerical cross-check of the closed-form transient solver.

The golden timer computes the modal (eigendecomposition) solution of
``C dv/dt = -G v + b u(t) + J(t)``.  Here the same system is integrated
with a completely independent method — implicit backward Euler over the
assembled MNA matrices — and the waveforms must agree.  This guards the
entire golden-label pipeline against sign, scaling and assembly bugs.
"""

import numpy as np
import pytest

from repro.analysis import GoldenTimer
from repro.analysis.mna import capacitance_vector, conductance_matrix
from repro.rcnet import chain_net, random_net, random_nontree_net


def backward_euler(net, drive_resistance, vdd, ramp_time, caps, injection,
                   t_end, steps):
    """Implicit Euler integration of the full MNA system."""
    from scipy.linalg import lu_factor, lu_solve

    n = net.num_nodes
    g = conductance_matrix(net)
    g_drv = 1.0 / drive_resistance
    g[net.source, net.source] += g_drv
    b = np.zeros(n)
    b[net.source] = g_drv

    dt = t_end / steps
    system = np.diag(caps / dt) + g
    lu = lu_factor(system)
    v = np.zeros(n)
    times = [0.0]
    voltages = [v.copy()]
    for k in range(1, steps + 1):
        t = k * dt
        u = vdd * min(1.0, t / ramp_time)
        rhs = caps / dt * v + b * u
        if injection is not None and t <= ramp_time:
            rhs = rhs + injection
        v = lu_solve(lu, rhs)
        times.append(t)
        voltages.append(v.copy())
    return np.array(times), np.array(voltages)


@pytest.mark.parametrize("seed", [0, 7, 42])
def test_closed_form_matches_backward_euler(seed):
    rng = np.random.default_rng(seed)
    net = random_net(rng, name=f"xc{seed}", n_nodes_range=(8, 20))
    timer = GoldenTimer(drive_resistance=150.0, si_mode=True)
    solution = timer.solve(net, input_slew=25e-12)

    caps = capacitance_vector(net)
    injection = None
    if net.couplings:
        injection = np.zeros(net.num_nodes)
        slope = timer.vdd / solution.ramp_time
        for c in net.couplings:
            injection[c.victim] -= timer.si_strength * c.activity * c.cap * slope

    t_end = solution.ramp_time * 6
    times, voltages = backward_euler(
        net, 150.0, timer.vdd, solution.ramp_time, caps, injection,
        t_end, steps=20000)

    # Compare waveforms at several probe times (skip t=0).
    for idx in (2000, 5000, 10000, 19999):
        exact = solution.voltage_at(float(times[idx]))
        np.testing.assert_allclose(voltages[idx], exact,
                                   rtol=2e-3, atol=2e-4 * timer.vdd)


def test_crossing_times_match_integration():
    """50% crossings from the closed form agree with interpolated
    backward-Euler crossings on a chain."""
    net = chain_net(8, resistance=120.0, cap=2e-15)
    timer = GoldenTimer(drive_resistance=100.0, si_mode=False)
    solution = timer.solve(net, input_slew=20e-12)
    caps = capacitance_vector(net)
    t_end = solution.ramp_time * 8
    times, voltages = backward_euler(net, 100.0, timer.vdd,
                                     solution.ramp_time, caps, None,
                                     t_end, steps=40000)
    level = 0.5 * timer.vdd
    sink = 7
    above = np.nonzero(voltages[:, sink] >= level)[0][0]
    t0, t1 = times[above - 1], times[above]
    v0, v1 = voltages[above - 1, sink], voltages[above, sink]
    be_cross = t0 + (level - v0) / (v1 - v0) * (t1 - t0)
    exact_cross = solution.crossing_time(sink, level, t_end)
    assert exact_cross == pytest.approx(be_cross, rel=5e-3)


def test_si_injection_pushout_quantitatively_consistent(rng):
    """SI delay push-out measured by both methods agrees."""
    net = random_nontree_net(rng, 16, n_sinks=2, n_loops=2,
                             coupling_prob=0.8, name="sixc")
    assert net.couplings
    sink = net.sinks[0]

    quiet_timer = GoldenTimer(si_mode=False)
    noisy_timer = GoldenTimer(si_mode=True)
    quiet = quiet_timer.analyze(net, 25e-12).timing_for(sink).delay
    noisy = noisy_timer.analyze(net, 25e-12).timing_for(sink).delay
    pushout_exact = noisy - quiet

    caps = capacitance_vector(net)
    solution = noisy_timer.solve(net, 25e-12)
    injection = np.zeros(net.num_nodes)
    slope = noisy_timer.vdd / solution.ramp_time
    for c in net.couplings:
        injection[c.victim] -= c.activity * c.cap * slope

    t_end = solution.ramp_time * 10

    def be_crossing(inj):
        times, voltages = backward_euler(net, 100.0, noisy_timer.vdd,
                                         solution.ramp_time, caps, inj,
                                         t_end, steps=30000)
        level = 0.5 * noisy_timer.vdd

        def cross(node):
            above = np.nonzero(voltages[:, node] >= level)[0][0]
            t0, t1 = times[above - 1], times[above]
            v0, v1 = voltages[above - 1, node], voltages[above, node]
            return t0 + (level - v0) / (v1 - v0) * (t1 - t0)

        return cross(sink) - cross(net.source)

    pushout_be = be_crossing(injection) - be_crossing(None)
    assert pushout_exact == pytest.approx(pushout_be, rel=0.05, abs=1e-14)
