"""Batched spectral engine: bitwise parity with the scalar path.

The batch layer's whole contract is that it is *invisible*: grouping nets
into stacked LAPACK calls, priming caches in bulk, or changing how many
nets share a batch must never change a single bit of any label.  These
tests pin that contract down over random RC trees and non-trees of mixed
sizes (2-32 nodes), plus the explicitly non-bitwise ``pow2`` mode and the
per-net error-isolation guarantees.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import GoldenTimer
from repro.analysis.awe import awe2_timing, configure_awe_cache
from repro.analysis.batch import (BatchedEigenEngine, GoldenNetJob,
                                  SolveRequest, WirePrimeRequest,
                                  golden_analyze_many, prime_awe,
                                  prime_solve_cache)
from repro.analysis.cache import SolveCache, configure_solve_cache, solve_key
from repro.analysis.mna import capacitance_vector
from repro.analysis.simulator import EigenSolve, WireTimingResult
from repro.features.path_features import (NetAnalysis, analyze_net_features,
                                          analyze_nets_for_features)
from repro.obs import get_metrics
from repro.robustness.errors import EstimationError, InputError
from repro.rcnet import random_net, random_tree_net


@pytest.fixture(autouse=True)
def _isolated_caches():
    """Fresh process-wide caches per test so priming effects don't leak."""
    configure_solve_cache(512)
    configure_awe_cache(512)
    yield
    configure_solve_cache(512)
    configure_awe_cache(512)


def _mixed_nets(seed, count=12, lo=2, hi=32):
    """Random tree/non-tree nets spanning many size buckets."""
    rng = np.random.default_rng(seed)
    nets = []
    for i in range(count):
        n_nodes = int(rng.integers(lo, hi + 1))
        if n_nodes < 6:
            nets.append(random_tree_net(rng, n_nodes, name=f"t{i}"))
        else:
            nets.append(random_net(rng, name=f"m{i}",
                                   n_nodes_range=(n_nodes, n_nodes)))
    return nets


def _jobs_for(nets, rng, si_mode=True):
    jobs = []
    for net in nets:
        timer = GoldenTimer(drive_resistance=float(rng.uniform(50.0, 300.0)),
                            si_mode=si_mode)
        loads = rng.uniform(0.5e-15, 4e-15, size=net.num_sinks)
        slew = float(rng.uniform(5e-12, 60e-12))
        jobs.append(GoldenNetJob(timer, net, slew, loads))
    return jobs


def _assert_same_timing(a: WireTimingResult, b: WireTimingResult):
    assert a.source_slew == b.source_slew
    assert np.array_equal(a.delays(), b.delays())
    assert np.array_equal(a.slews(), b.slews())


class TestGoldenBatchParity:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=10, deadline=None)
    def test_labels_bitwise_equal_scalar(self, seed):
        """Batched golden labels == scalar GoldenTimer.analyze, bit for bit."""
        nets = _mixed_nets(seed)
        jobs = _jobs_for(nets, np.random.default_rng(seed + 1))
        batched = golden_analyze_many(jobs)
        for job, outcome in zip(jobs, batched):
            assert isinstance(outcome, WireTimingResult)
            configure_solve_cache(0)  # force the scalar path to recompute
            scalar = job.timer.analyze(job.net, job.input_slew,
                                       job.sink_loads)
            configure_solve_cache(512)
            _assert_same_timing(outcome, scalar)

    def test_batch_composition_invariance(self):
        """Batch-of-1 results == batch-of-all: no cross-net coupling."""
        nets = _mixed_nets(99, count=10)
        jobs = _jobs_for(nets, np.random.default_rng(100))
        together = golden_analyze_many(jobs)
        for job, outcome in zip(jobs, together):
            configure_solve_cache(512)  # fresh cache per singleton batch
            alone = golden_analyze_many([job])[0]
            _assert_same_timing(outcome, alone)

    def test_precomputed_elmore_changes_nothing(self):
        """GoldenNetJob.elmore (from the feature pass) is a pure shortcut."""
        nets = _mixed_nets(7, count=8)
        jobs = _jobs_for(nets, np.random.default_rng(8))
        plain = golden_analyze_many(jobs)
        analyses = analyze_nets_for_features(
            [(j.net, j.sink_loads) for j in jobs])
        configure_solve_cache(512)
        primed = golden_analyze_many(
            [GoldenNetJob(j.timer, j.net, j.input_slew, j.sink_loads,
                          elmore=a.elmore)
             for j, a in zip(jobs, analyses)])
        for a, b in zip(plain, primed):
            _assert_same_timing(a, b)

    def test_error_isolation(self):
        """One poisoned job yields its typed error; batchmates are clean."""
        nets = _mixed_nets(3, count=4)
        jobs = _jobs_for(nets, np.random.default_rng(4))
        bad_timer = GoldenTimer(drive_resistance=-1.0, si_mode=True)
        bad = GoldenNetJob(bad_timer, nets[0], 20e-12,
                           jobs[0].sink_loads)
        outcomes = golden_analyze_many([jobs[0], bad, jobs[1], jobs[2]])
        assert isinstance(outcomes[0], WireTimingResult)
        assert isinstance(outcomes[1], InputError)
        assert isinstance(outcomes[2], WireTimingResult)
        assert isinstance(outcomes[3], WireTimingResult)
        for job, outcome in zip((jobs[0], jobs[1], jobs[2]),
                                (outcomes[0], outcomes[2], outcomes[3])):
            configure_solve_cache(0)
            scalar = job.timer.analyze(job.net, job.input_slew,
                                       job.sink_loads)
            configure_solve_cache(512)
            _assert_same_timing(outcome, scalar)


class TestEngineCacheContract:
    def _requests(self, seed, count=10):
        rng = np.random.default_rng(seed)
        requests = []
        for net in _mixed_nets(seed, count=count):
            loads = rng.uniform(0.5e-15, 4e-15, size=net.num_sinks)
            caps = capacitance_vector(net, miller_factor=None,
                                      sink_loads=loads)
            requests.append(SolveRequest(net, caps,
                                         float(rng.uniform(50.0, 300.0))))
        return requests

    def test_fanout_addressable_by_scalar_keys(self):
        """Batch results land in the cache under the scalar solve_key."""
        cache = SolveCache(maxsize=512)
        engine = BatchedEigenEngine(cache=cache)
        requests = self._requests(11)
        results = engine.solve_many(requests)
        for request, result in zip(requests, results):
            assert isinstance(result, EigenSolve)
            key = solve_key(request.net, request.caps,
                            request.drive_resistance)
            assert cache.get(key) is result

    def test_duplicate_requests_solved_once(self):
        cache = SolveCache(maxsize=512)
        engine = BatchedEigenEngine(cache=cache)
        requests = self._requests(12, count=4)
        doubled = list(requests) + list(requests)
        results = engine.solve_many(doubled)
        for first, second in zip(results[:4], results[4:]):
            assert isinstance(first, EigenSolve)
            assert second is first  # the repeat resolves through the cache
        assert len(cache) == 4

    def test_eigensolve_bitwise_equals_scalar(self):
        """Stacked eigh slices equal the scalar eigendecompose output."""
        from repro.analysis.mna import conductance_matrix
        from repro.analysis.simulator import eigendecompose

        engine = BatchedEigenEngine(cache=SolveCache(maxsize=0))
        requests = self._requests(13)
        results = engine.solve_many(requests)
        for request, result in zip(requests, results):
            g = conductance_matrix(request.net)
            g[request.net.source, request.net.source] += \
                1.0 / request.drive_resistance
            scalar = eigendecompose(request.net, g, request.caps)
            assert np.array_equal(result.eigenvalues, scalar.eigenvalues)
            assert np.array_equal(result.q, scalar.q)
            assert np.array_equal(result.caps, scalar.caps)

    def test_pow2_mode_close_and_counts_padding(self):
        """pow2 bucketing is near-identical (never bitwise-guaranteed)."""
        waste = get_metrics().counter("batch.padding_waste")
        before = waste.value
        exact = BatchedEigenEngine(cache=SolveCache(maxsize=0))
        padded = BatchedEigenEngine(bucket="pow2",
                                    cache=SolveCache(maxsize=0))
        requests = self._requests(14)
        for a, b in zip(exact.solve_many(requests),
                        padded.solve_many(requests)):
            np.testing.assert_allclose(a.eigenvalues, b.eigenvalues,
                                       rtol=1e-9, atol=1e-12)
        assert waste.value > before  # 2-32 node nets are rarely pow2-sized

    def test_invalid_bucket_rejected(self):
        with pytest.raises(ValueError, match="unknown bucket mode"):
            BatchedEigenEngine(bucket="fibonacci")

    def test_bad_drive_resistance_is_typed_error(self):
        requests = self._requests(15, count=3)
        broken = SolveRequest(requests[0].net, requests[0].caps, -5.0)
        engine = BatchedEigenEngine(cache=SolveCache(maxsize=0))
        results = engine.solve_many([requests[1], broken, requests[2]])
        assert isinstance(results[0], EigenSolve)
        assert isinstance(results[1], InputError)
        assert isinstance(results[2], EigenSolve)


class TestPrimePasses:
    def test_prime_awe_matches_cold_scalar(self):
        """Primed AWE lookups return bitwise what a cold call computes."""
        rng = np.random.default_rng(21)
        nets = _mixed_nets(21, count=10, lo=3)
        requests = [WirePrimeRequest(
            net, rng.uniform(0.5e-15, 4e-15, size=net.num_sinks),
            float(rng.uniform(50.0, 300.0))) for net in nets]
        cold = []
        configure_awe_cache(0)
        for request in requests:
            cold.append(awe2_timing(request.net, request.sink_loads,
                                    nodes=list(request.net.sinks)))
        configure_awe_cache(512)
        primed = prime_awe(requests)
        assert primed == len(requests)
        for request, (cold_delays, cold_slews) in zip(requests, cold):
            delays, slews = awe2_timing(request.net, request.sink_loads,
                                        nodes=list(request.net.sinks))
            assert np.array_equal(delays, cold_delays)
            assert np.array_equal(slews, cold_slews)

    def test_prime_awe_idempotent(self):
        rng = np.random.default_rng(22)
        nets = _mixed_nets(22, count=5, lo=3)
        requests = [WirePrimeRequest(
            net, rng.uniform(0.5e-15, 4e-15, size=net.num_sinks),
            100.0) for net in nets]
        assert prime_awe(requests) == len(requests)
        assert prime_awe(requests) == 0  # everything already cached

    def test_prime_solve_cache_counts_and_fills(self):
        rng = np.random.default_rng(23)
        nets = _mixed_nets(23, count=6)
        requests = [WirePrimeRequest(
            net, rng.uniform(0.5e-15, 4e-15, size=net.num_sinks),
            float(rng.uniform(50.0, 300.0))) for net in nets]
        cache = configure_solve_cache(512)
        assert prime_solve_cache(requests) == len(requests)
        assert len(cache) == len(requests)


class TestNetAnalysisParity:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=10, deadline=None)
    def test_batched_analysis_bitwise_equals_scalar(self, seed):
        """Stacked feature vectors == scalar analyze_net_features."""
        rng = np.random.default_rng(seed)
        nets = _mixed_nets(seed, count=10)
        items = [(net, rng.uniform(0.5e-15, 4e-15, size=net.num_sinks))
                 for net in nets]
        batched = analyze_nets_for_features(items)
        for (net, loads), analysis in zip(items, batched):
            assert isinstance(analysis, NetAnalysis)
            scalar = analyze_net_features(net, sink_loads=loads)
            assert np.array_equal(analysis.elmore, scalar.elmore)
            assert np.array_equal(analysis.d2m, scalar.d2m)
            assert np.array_equal(analysis.downstream, scalar.downstream)

    def test_scalar_analysis_matches_legacy_functions(self):
        """The unified moment pass reproduces elmore_delays/d2m_delays."""
        from repro.analysis import elmore_delays
        from repro.analysis.d2m import d2m_delays
        from repro.analysis.elmore import downstream_caps

        rng = np.random.default_rng(31)
        for net in _mixed_nets(31, count=8):
            loads = rng.uniform(0.5e-15, 4e-15, size=net.num_sinks)
            analysis = analyze_net_features(net, sink_loads=loads)
            assert np.array_equal(analysis.elmore,
                                  elmore_delays(net, sink_loads=loads))
            assert np.array_equal(analysis.d2m,
                                  d2m_delays(net, sink_loads=loads))
            assert np.array_equal(analysis.downstream,
                                  downstream_caps(net, sink_loads=loads))
