"""Physical scaling laws of the timing engines (property-based).

Linear RC networks obey exact similarity laws: scaling every capacitance
by k scales all delays by k; scaling every resistance (including the
driver) by k does the same; scaling both scales delays by k^2.  These are
strong whole-pipeline invariants — any bug in MNA assembly, moment
recursion or the transient solver breaks them.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import GoldenTimer, d2m_delays, elmore_delays
from repro.rcnet import RCEdge, RCNet, RCNode, random_net


def scaled_net(net, cap_factor=1.0, res_factor=1.0):
    nodes = [RCNode(n.index, n.name, n.cap * cap_factor) for n in net.nodes]
    edges = [RCEdge(e.u, e.v, e.resistance * res_factor) for e in net.edges]
    return RCNet(net.name, nodes, edges, net.source, net.sinks)


@st.composite
def nets(draw):
    seed = draw(st.integers(min_value=0, max_value=10 ** 6))
    rng = np.random.default_rng(seed)
    return random_net(rng, name=f"scale{seed}", coupling_prob=0.0)


class TestElmoreScaling:
    @given(nets(), st.floats(min_value=0.2, max_value=5.0))
    @settings(max_examples=25, deadline=None)
    def test_cap_scaling(self, net, k):
        base = elmore_delays(net)
        scaled = elmore_delays(scaled_net(net, cap_factor=k))
        np.testing.assert_allclose(scaled, base * k, rtol=1e-9)

    @given(nets(), st.floats(min_value=0.2, max_value=5.0))
    @settings(max_examples=25, deadline=None)
    def test_res_scaling(self, net, k):
        base = elmore_delays(net)
        scaled = elmore_delays(scaled_net(net, res_factor=k))
        np.testing.assert_allclose(scaled, base * k, rtol=1e-9)


class TestD2MScaling:
    @given(nets(), st.floats(min_value=0.2, max_value=5.0))
    @settings(max_examples=20, deadline=None)
    def test_joint_scaling(self, net, k):
        base = d2m_delays(net)
        scaled = d2m_delays(scaled_net(net, cap_factor=k, res_factor=k))
        np.testing.assert_allclose(scaled, base * k * k, rtol=1e-8)


class TestGoldenTimerScaling:
    @given(nets(), st.sampled_from([0.5, 2.0, 4.0]))
    @settings(max_examples=10, deadline=None)
    def test_time_scaling(self, net, k):
        """Scaling R, C, drive resistance AND input slew by consistent
        factors scales measured delays and slews exactly."""
        timer = GoldenTimer(drive_resistance=100.0, si_mode=False)
        timer_scaled = GoldenTimer(drive_resistance=100.0 * k, si_mode=False)
        base = timer.analyze(net, input_slew=20e-12)
        scaled = timer_scaled.analyze(scaled_net(net, res_factor=k),
                                      input_slew=20e-12 * k)
        # Crossings are bisected to 1e-18 s absolute; delays are
        # differences of two crossings, so allow that absolute slack.
        np.testing.assert_allclose(scaled.delays(), base.delays() * k,
                                   rtol=1e-5, atol=5e-18)
        np.testing.assert_allclose(scaled.slews(), base.slews() * k,
                                   rtol=1e-5, atol=5e-18)

    def test_voltage_invariance(self, tree_net):
        """Thresholds are relative, so vdd must not affect delay/slew."""
        lo = GoldenTimer(vdd=0.6, si_mode=False).analyze(tree_net, 20e-12)
        hi = GoldenTimer(vdd=1.2, si_mode=False).analyze(tree_net, 20e-12)
        np.testing.assert_allclose(lo.delays(), hi.delays(), rtol=1e-9)
        np.testing.assert_allclose(lo.slews(), hi.slews(), rtol=1e-9)
