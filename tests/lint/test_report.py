"""Reporter goldens: the JSON document is byte-stable for a fixed input."""

import json

from repro.lint import LintRunner, default_rules, render_json, render_text
from repro.lint.report import rule_catalogue

SOURCE = """\
import random


def run(task):
    try:
        task()
    except:
        pass
"""

GOLDEN = {
    "schema": "repro-lint/4",
    "files_checked": 1,
    "findings": [
        {
            "rule": "DET002",
            "severity": "error",
            "path": "mod.py",
            "line": 1,
            "col": 0,
            "message": "stdlib `random` is process-global RNG state; use "
                       "a seeded np.random.Generator parameter instead",
            "snippet": "import random",
        },
        {
            "rule": "ERR001",
            "severity": "error",
            "path": "mod.py",
            "line": 7,
            "col": 4,
            "message": "bare except: catches KeyboardInterrupt/SystemExit; "
                       "name the exception types (narrowest that works)",
            "snippet": "except:",
        },
    ],
    "counts": {"DET002": 1, "ERR001": 1},
    "suppressed": 0,
    "baselined": 0,
    "stale_baseline": [],
    "packs": [],
    "cache": None,
    "concurrency": None,
    "perf": None,
    "arch": None,
    "exit_code": 1,
}


def _result(tmp_path, monkeypatch):
    (tmp_path / "mod.py").write_text(SOURCE, encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    return LintRunner(select=["DET002", "ERR001"]).run(["mod.py"])


def test_json_report_golden(tmp_path, monkeypatch):
    result = _result(tmp_path, monkeypatch)
    rendered = render_json(result)
    assert json.loads(rendered) == GOLDEN
    # Canonical rendering: sorted keys, indented, trailing newline,
    # byte-stable across repeated renders.
    assert rendered == json.dumps(GOLDEN, indent=2, sort_keys=True) + "\n"
    assert render_json(result) == rendered


def test_text_report_rows_and_summary(tmp_path, monkeypatch):
    result = _result(tmp_path, monkeypatch)
    lines = render_text(result).splitlines()
    assert lines[0].startswith("mod.py:1:0: DET002 error:")
    assert lines[1].startswith("mod.py:7:4: ERR001 error:")
    assert lines[-1] == "2 finding(s) in 1 file(s)"


def test_text_report_clean_run(tmp_path, monkeypatch):
    (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    result = LintRunner().run(["ok.py"])
    assert render_text(result) == "clean: 0 finding(s) in 1 file(s)"


def test_rule_catalogue_lists_every_rule():
    rules = default_rules()
    catalogue = rule_catalogue(rules)
    for rule in rules:
        assert rule.name in catalogue
    assert len(catalogue.splitlines()) == len(rules)
