"""Engine semantics: suppression comments, rule selection, parse errors,
sorting, and the baseline workflow."""

import json

import pytest

from repro.lint import (
    LintRunner,
    load_baseline,
    write_baseline,
)
from repro.lint.baseline import BaselineEntry, BaselineError, apply_baseline
from repro.lint.engine import module_name, suppressed_lines

BARE_EXCEPT = """
def run(task):
    try:
        task()
    except:
        pass
"""


class TestSuppression:
    def test_named_suppression_silences_rule(self, lint_snippet):
        result = lint_snippet("""
            def run(task):
                try:
                    task()
                except:  # repro-lint: disable=ERR001
                    pass
        """)
        assert result.findings == []
        assert result.suppressed == 1

    def test_blanket_suppression_silences_everything(self, lint_snippet):
        result = lint_snippet("""
            import random  # repro-lint: disable
        """)
        assert result.findings == []
        assert result.suppressed == 1

    def test_suppression_for_other_rule_does_not_apply(self, lint_snippet):
        result = lint_snippet("""
            def run(task):
                try:
                    task()
                except:  # repro-lint: disable=DET001
                    pass
        """)
        assert [f.rule for f in result.findings] == ["ERR001"]

    def test_multiple_rules_in_one_comment(self):
        source = "x = 1  # repro-lint: disable=ERR001, DET004\n"
        assert suppressed_lines(source) == {1: {"ERR001", "DET004"}}

    def test_blanket_marker_parses_to_star(self):
        assert suppressed_lines("x = 1  # repro-lint: disable\n") == \
            {1: {"*"}}

    def test_multiline_statement_covered_end_to_end(self):
        # A disable anywhere in a logical line covers every physical
        # line of the statement — findings anchor to the first line, the
        # comment often fits only on the last.
        source = (
            "value = compute(\n"
            "    alpha,\n"
            "    beta,\n"
            ")  # repro-lint: disable=PERF001\n")
        lines = suppressed_lines(source)
        assert lines[1] == {"PERF001"}
        assert lines[4] == {"PERF001"}

    def test_multiline_comment_on_first_line_also_covers_all(self):
        source = (
            "value = compute(  # repro-lint: disable=SHAPE001\n"
            "    alpha,\n"
            ")\n")
        assert suppressed_lines(source) == {1: {"SHAPE001"},
                                            2: {"SHAPE001"},
                                            3: {"SHAPE001"}}

    def test_decorator_comment_covers_the_decorated_def(self):
        source = (
            "@app.route('/x')  # repro-lint: disable=FLOW001\n"
            "def handler():\n"
            "    pass\n")
        lines = suppressed_lines(source)
        assert lines[1] == {"FLOW001"}
        assert lines[2] == {"FLOW001"}  # the def header it decorates
        assert 3 not in lines           # the body is NOT blanketed

    def test_standalone_comment_still_covers_only_its_own_line(self):
        source = (
            "# repro-lint: disable=DET002\n"
            "import random\n")
        assert suppressed_lines(source) == {1: {"DET002"}}

    def test_multiline_suppression_end_to_end(self, lint_snippet):
        # The DET001 finding anchors at the call line (3); the disable
        # sits on the statement's closing bracket one line later.
        result = lint_snippet("""
            import numpy as np
            values = [
                np.random.rand(4),
            ]  # repro-lint: disable=DET001
        """)
        assert result.findings == []
        assert result.suppressed == 1


class TestRuleSelection:
    def test_select_limits_rules(self, lint_snippet):
        result = lint_snippet(
            "import random\n" + BARE_EXCEPT, select=["DET002"])
        assert [f.rule for f in result.findings] == ["DET002"]

    def test_ignore_drops_rules(self, lint_snippet):
        result = lint_snippet(
            "import random\n" + BARE_EXCEPT, ignore=["ERR001"])
        assert [f.rule for f in result.findings] == ["DET002"]

    def test_unknown_select_name_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            LintRunner(select=["NOPE999"])

    def test_unknown_ignore_name_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            LintRunner(ignore=["NOPE999"])


class TestParseErrors:
    def test_syntax_error_reports_lint000(self, lint_snippet):
        result = lint_snippet("def broken(:\n")
        assert [f.rule for f in result.findings] == ["LINT000"]
        assert result.findings[0].severity == "error"

    def test_null_byte_reports_lint000(self, tmp_path):
        path = tmp_path / "nulls.py"
        path.write_bytes(b"x = 1\x00\n")
        result = LintRunner().run([str(path)])
        assert [f.rule for f in result.findings] == ["LINT000"]
        assert "null bytes" in result.findings[0].message

    def test_undecodable_bytes_report_lint000(self, tmp_path):
        path = tmp_path / "latin.py"
        path.write_bytes(b"name = '\xff\xfe'\n")
        result = LintRunner().run([str(path)])
        assert [f.rule for f in result.findings] == ["LINT000"]
        assert "cannot read file" in result.findings[0].message


class TestDiscovery:
    def test_exclude_glob_drops_file(self, tmp_path):
        (tmp_path / "keep.py").write_text("import random\n",
                                          encoding="utf-8")
        (tmp_path / "scratch_gen.py").write_text("import random\n",
                                                 encoding="utf-8")
        result = LintRunner(select=["DET002"],
                            exclude=["scratch_*.py"]).run([str(tmp_path)])
        assert {f.path.rsplit("/", 1)[-1] for f in result.findings} \
            == {"keep.py"}

    def test_skip_dirs_are_never_walked(self, tmp_path):
        for skipped in (".hidden", "__pycache__", "demo.egg-info"):
            sub = tmp_path / skipped
            sub.mkdir()
            (sub / "junk.py").write_text("import random\n", encoding="utf-8")
        (tmp_path / "real.py").write_text("import random\n",
                                          encoding="utf-8")
        result = LintRunner(select=["DET002"]).run([str(tmp_path)])
        assert result.files_checked == 1
        assert len(result.findings) == 1

    def test_explicit_file_beats_exclude_dir_walk(self, tmp_path):
        # An explicitly named file is linted even when a directory walk
        # would have excluded it.
        path = tmp_path / "scratch_gen.py"
        path.write_text("import random\n", encoding="utf-8")
        result = LintRunner(select=["DET002"],
                            exclude=["other_*.py"]).run([str(path)])
        assert len(result.findings) == 1


class TestOrdering:
    def test_findings_sorted_by_location(self, tmp_path):
        (tmp_path / "b.py").write_text(
            "import random\n", encoding="utf-8")
        (tmp_path / "a.py").write_text(
            "import random\nimport random as r\n", encoding="utf-8")
        result = LintRunner(select=["DET002"]).run([str(tmp_path)])
        locations = [(f.path, f.line) for f in result.findings]
        assert locations == sorted(locations)
        assert len(locations) == 3


class TestModuleName:
    def test_src_prefix_is_stripped(self):
        assert module_name("src/repro/analysis/elmore.py") == \
            "repro.analysis.elmore"

    def test_plain_path_keeps_segments(self):
        assert module_name("tools/check_docs_links.py") == \
            "tools.check_docs_links"


class TestBaseline:
    def test_round_trip_suppresses_matching_finding(self, tmp_path,
                                                    lint_snippet):
        result = lint_snippet(BARE_EXCEPT)
        assert len(result.findings) == 1
        baseline_path = tmp_path / "baseline.json"
        write_baseline(str(baseline_path), result.findings,
                       justification="legacy handler, tracked in #12")
        entries = load_baseline(str(baseline_path))
        assert len(entries) == 1
        assert entries[0].justification == "legacy handler, tracked in #12"

        rerun = lint_snippet(BARE_EXCEPT)
        active, baselined, stale = apply_baseline(rerun.findings, entries)
        assert active == []
        assert baselined == 1
        assert stale == []

    def test_edited_line_makes_entry_stale(self, lint_snippet):
        result = lint_snippet(BARE_EXCEPT)
        entry = BaselineEntry(rule="ERR001", path=result.findings[0].path,
                              snippet="except ValueError:")
        active, baselined, stale = apply_baseline(result.findings, [entry])
        assert len(active) == 1
        assert baselined == 0
        assert stale == [entry]

    def test_line_drift_does_not_invalidate_entry(self, tmp_path):
        code = "def run(task):\n    try:\n        task()\n" \
               "    except:\n        pass\n"
        path = tmp_path / "drift.py"
        path.write_text(code, encoding="utf-8")
        runner = LintRunner(select=["ERR001"])
        entry_findings = runner.run([str(path)]).findings
        entries = [BaselineEntry(f.rule, f.path, f.snippet)
                   for f in entry_findings]
        # Push the handler three lines down; the stripped-line key holds.
        path.write_text("import os\nimport sys\nimport json\n" + code,
                        encoding="utf-8")
        result = runner.run([str(path)], baseline=entries)
        assert result.findings == []
        assert result.baselined == 1
        assert result.stale_baseline == []

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "absent.json")) == []

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/9", "entries": []}),
                        encoding="utf-8")
        with pytest.raises(BaselineError, match="repro-lint-baseline/1"):
            load_baseline(str(path))

    def test_malformed_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(BaselineError, match="cannot read"):
            load_baseline(str(path))

    def test_baselined_run_exits_clean(self, tmp_path):
        path = tmp_path / "legacy.py"
        path.write_text("import random\n", encoding="utf-8")
        runner = LintRunner(select=["DET002"])
        first = runner.run([str(path)])
        assert first.exit_code == 1
        entries = [BaselineEntry(f.rule, f.path, f.snippet)
                   for f in first.findings]
        second = runner.run([str(path)], baseline=entries)
        assert second.exit_code == 0
        assert second.baselined == 1
