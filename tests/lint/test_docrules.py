"""DOC001: internal markdown link checking, standalone and in the linter."""

import subprocess
import sys
import textwrap
from pathlib import Path

from repro.lint import LintRunner
from repro.lint.docrules import (
    anchors_of,
    check_markdown_tree,
    github_slug,
    link_targets,
)

REPO = Path(__file__).resolve().parents[2]


def test_github_slug():
    assert github_slug("Quick Start") == "quick-start"
    assert github_slug("The `repro lint` CLI") == "the-repro-lint-cli"
    assert github_slug("A & B, twice!") == "a-b-twice"


def test_anchors_of_dedups_repeats(tmp_path):
    page = tmp_path / "page.md"
    page.write_text("# Setup\n\n## Setup\n\n## Other\n", encoding="utf-8")
    assert anchors_of(str(page)) == {"setup", "setup-1", "other"}


def test_link_targets_skips_fenced_code(tmp_path):
    page = tmp_path / "page.md"
    page.write_text(textwrap.dedent("""\
        [real](target.md)
        ```
        [fake](inside-fence.md)
        ```
        [after](other.md)
    """), encoding="utf-8")
    assert list(link_targets(str(page))) == [(1, "target.md"),
                                             (5, "other.md")]


def test_check_markdown_tree_reports_broken_and_missing(tmp_path):
    (tmp_path / "ok.md").write_text("# Here\n", encoding="utf-8")
    (tmp_path / "index.md").write_text(textwrap.dedent("""\
        [fine](ok.md)
        [fine anchor](ok.md#here)
        [broken file](missing.md)
        [broken anchor](ok.md#nowhere)
        [external](https://example.com/missing)
    """), encoding="utf-8")
    problems = check_markdown_tree(str(tmp_path))
    assert problems == [
        ("index.md", 3, "broken link -> missing.md"),
        ("index.md", 4, "missing anchor -> ok.md#nowhere"),
    ]


def test_doc001_fires_through_linter(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "mod.py").write_text("x = 1\n", encoding="utf-8")
    (pkg / "README.md").write_text("[gone](missing.md)\n", encoding="utf-8")
    result = LintRunner(select=["DOC001"]).run([str(pkg)])
    assert [f.rule for f in result.findings] == ["DOC001"]
    assert "missing.md" in result.findings[0].message


def test_doc001_clean_tree(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "mod.py").write_text("x = 1\n", encoding="utf-8")
    (pkg / "README.md").write_text("# Fine\n[self](#fine)\n",
                                   encoding="utf-8")
    result = LintRunner(select=["DOC001"]).run([str(pkg)])
    assert result.findings == []


def test_standalone_wrapper_matches_repo(tmp_path):
    """tools/check_docs_links.py stays a working thin wrapper."""
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_docs_links.py"),
         str(REPO)],
        capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
    assert "all internal doc links resolve" in proc.stdout
