"""FLOW rule pack fixtures: positive and negative cases per rule."""


def _rules(findings):
    return sorted(f.rule for f in findings)


PKG_INIT = "from .tasks import label_net\n"

TASKS = '''\
    from .helpers import noisy


    def label_net(item):
        return noisy(item)
'''

NOISY_HELPERS = '''\
    import numpy as np


    def noisy(item):
        rng = np.random.default_rng()
        return rng.normal() + item
'''

SEEDED_HELPERS = '''\
    import numpy as np


    def noisy(item):
        seed, value = item
        rng = np.random.default_rng(seed)
        return rng.normal() + value
'''


class TestFlow001Interprocedural:
    def test_unseeded_rng_across_modules(self, deep_lint):
        findings, _ = deep_lint({
            "pkg/__init__.py": PKG_INIT,
            "pkg/tasks.py": TASKS,
            "pkg/helpers.py": NOISY_HELPERS,
            "pkg/driver.py": '''\
                from repro.parallel import parallel_map

                from . import label_net


                def run(items):
                    return parallel_map(label_net, items)
            ''',
        })
        flow = [f for f in findings if f.rule == "FLOW001"]
        assert len(flow) == 1
        assert "pkg/driver.py" in flow[0].path
        # The chain through the aliased re-export is spelled out.
        assert "label_net" in flow[0].message
        assert "noisy" in flow[0].message

    def test_seeded_per_item_rng_is_clean(self, deep_lint):
        findings, _ = deep_lint({
            "pkg/__init__.py": PKG_INIT,
            "pkg/tasks.py": TASKS,
            "pkg/helpers.py": SEEDED_HELPERS,
            "pkg/driver.py": '''\
                from repro.parallel import parallel_map

                from . import label_net


                def run(items):
                    return parallel_map(label_net, items)
            ''',
        })
        assert _rules(findings) == []


class TestFlow001LocalTaint:
    def test_shared_generator_flows_into_call(self, deep_lint):
        findings, _ = deep_lint({
            "pkg/__init__.py": "",
            "pkg/driver.py": '''\
                import numpy as np

                from repro.parallel import parallel_map


                def shared(items, task):
                    rng = np.random.default_rng(7)
                    return parallel_map(task, [(i, rng) for i in items])
            ''',
        })
        flow = [f for f in findings if f.rule == "FLOW001"]
        assert len(flow) == 1
        assert "SeedSequence.spawn" in flow[0].message

    def test_spawned_seed_material_is_clean(self, deep_lint):
        findings, _ = deep_lint({
            "pkg/__init__.py": "",
            "pkg/driver.py": '''\
                import numpy as np

                from repro.parallel import parallel_map


                def spawned(items, task):
                    seeds = np.random.SeedSequence(7).spawn(len(items))
                    return parallel_map(task, list(zip(items, seeds)))
            ''',
        })
        assert _rules(findings) == []


class TestFlow002:
    def test_close_skipping_path_flags(self, deep_lint):
        findings, _ = deep_lint({
            "pkg/__init__.py": "",
            "pkg/io.py": '''\
                def leaky(path):
                    handle = open(path)
                    data = handle.read()
                    if not data:
                        return None
                    handle.close()
                    return data
            ''',
        })
        flow = [f for f in findings if f.rule == "FLOW002"]
        assert len(flow) == 1
        assert "handle" in flow[0].message
        assert flow[0].severity == "warning"

    def test_with_block_is_clean(self, deep_lint):
        findings, _ = deep_lint({
            "pkg/__init__.py": "",
            "pkg/io.py": '''\
                def safe(path):
                    with open(path) as handle:
                        return handle.read()
            ''',
        })
        assert _rules(findings) == []

    def test_closed_on_every_path_is_clean(self, deep_lint):
        findings, _ = deep_lint({
            "pkg/__init__.py": "",
            "pkg/io.py": '''\
                def diligent(path):
                    handle = open(path)
                    data = handle.read()
                    handle.close()
                    if not data:
                        return None
                    return data
            ''',
        })
        assert _rules(findings) == []

    def test_returned_resource_transfers_ownership(self, deep_lint):
        findings, _ = deep_lint({
            "pkg/__init__.py": "",
            "pkg/io.py": '''\
                def make(path):
                    handle = open(path)
                    return handle
            ''',
        })
        assert _rules(findings) == []


class TestFlow003:
    def test_direct_raise_without_provenance(self, deep_lint):
        findings, _ = deep_lint({
            "pkg/__init__.py": "",
            "pkg/sim.py": '''\
                from repro.robustness.errors import NumericalError


                def solve(matrix):
                    raise NumericalError("matrix is singular")
            ''',
        })
        flow = [f for f in findings if f.rule == "FLOW003"]
        assert len(flow) == 1
        assert "NumericalError" in flow[0].message

    def test_constructed_then_raised_without_provenance(self, deep_lint):
        findings, _ = deep_lint({
            "pkg/__init__.py": "",
            "pkg/sim.py": '''\
                from repro.robustness.errors import NumericalError


                def solve(matrix):
                    err = NumericalError("matrix is singular")
                    raise err
            ''',
        })
        flow = [f for f in findings if f.rule == "FLOW003"]
        assert len(flow) == 1
        assert "constructed earlier" in flow[0].message

    def test_provenance_keyword_is_clean(self, deep_lint):
        findings, _ = deep_lint({
            "pkg/__init__.py": "",
            "pkg/sim.py": '''\
                from repro.robustness.errors import NumericalError


                def solve(matrix, net):
                    raise NumericalError("matrix is singular", net=net.name)
            ''',
        })
        assert _rules(findings) == []


class TestFlow004:
    def test_anonymous_valueerror_with_net_in_scope(self, deep_lint):
        findings, _ = deep_lint({
            "pkg/__init__.py": "",
            "pkg/sim.py": '''\
                def analyze(net, mode):
                    if mode not in ("rise", "fall"):
                        raise ValueError(f"unknown mode {mode!r}")
                    return net
            ''',
        })
        flow = [f for f in findings if f.rule == "FLOW004"]
        assert len(flow) == 1
        assert "net=" in flow[0].message
        assert flow[0].severity == "warning"

    def test_no_provenance_parameter_is_clean(self, deep_lint):
        findings, _ = deep_lint({
            "pkg/__init__.py": "",
            "pkg/config.py": '''\
                def validate(jobs):
                    if jobs < 0:
                        raise ValueError("jobs must be >= 0")
            ''',
        })
        assert _rules(findings) == []

    def test_taxonomy_error_with_provenance_is_clean(self, deep_lint):
        findings, _ = deep_lint({
            "pkg/__init__.py": "",
            "pkg/sim.py": '''\
                from repro.robustness.errors import InputError


                def analyze(net, mode):
                    if mode not in ("rise", "fall"):
                        raise InputError(f"unknown mode {mode!r}",
                                         net=net.name, stage="simulate")
                    return net
            ''',
        })
        assert _rules(findings) == []

    def test_nested_function_without_net_is_not_flagged(self, deep_lint):
        findings, _ = deep_lint({
            "pkg/__init__.py": "",
            "pkg/sim.py": '''\
                def analyze(net):
                    def helper(x):
                        raise ValueError("bad x")
                    return helper(net)
            ''',
        })
        assert _rules(findings) == []
