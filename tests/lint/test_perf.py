"""PERF pack: each rule's positive/negative fixture + profile gating."""

import ast
import textwrap

import pytest

from repro.lint import DeepAnalyzer, LintConfig
from repro.lint.callgraph import CallGraph
from repro.lint.hotness import HotnessProfile, HotSpot
from repro.lint.perf import ModulePerf, extract_module_perf, run_perf
from repro.lint.symbols import SymbolTable, summarize_module


def _analyze(files, hotness=None):
    """Extract + assemble PERF findings for a dict of ``name -> source``."""
    summaries, perfs, sources = {}, {}, {}
    for name, raw in files.items():
        source = textwrap.dedent(raw)
        module = name[:-3].replace("/", ".")
        tree = ast.parse(source)
        summary = summarize_module(module, name, tree,
                                   source.splitlines(), False)
        summaries[module] = summary
        perfs[module] = extract_module_perf(summary, tree, name)
        sources[module] = source.splitlines()
    table = SymbolTable(summaries)
    return run_perf(table, CallGraph(table), perfs, sources, hotness)


def _hot(module, qualname, seconds=1.0, span="synthetic.span"):
    return HotnessProfile(
        [HotSpot(span, module, qualname, 1, seconds, seconds)],
        sources=["synthetic"])


def _rules(findings):
    return sorted(f.rule for f in findings)


# ----------------------------------------------------------------------
# PERF001: scalar factorization in a net loop
# ----------------------------------------------------------------------
def test_perf001_direct_factorization_in_net_loop():
    findings, _ = _analyze({"pkg/mod.py": """\
        import numpy as np

        def analyze(nets):
            out = []
            for net in nets:
                out.append(np.linalg.eig(net))
            return out
        """})
    assert _rules(findings) == ["PERF001"]
    assert findings[0].severity == "warning"  # cold without a profile
    assert "batched entry points" in findings[0].message


def test_perf001_interprocedural_chain():
    findings, _ = _analyze({"pkg/mod.py": """\
        import numpy as np

        def decompose(net):
            return np.linalg.solve(net, net)

        def analyze(nets):
            return [decompose(net) for net in nets]
        """, "pkg/driver.py": """\
        from pkg.mod import decompose

        def sweep(design_nets):
            for net in design_nets:
                decompose(net)
        """})
    # Direct hit in mod.analyze's comprehension loop + the cross-module
    # chain from driver.sweep.
    assert "PERF001" in _rules(findings)
    chains = [f for f in findings if "reaches scalar" in f.message]
    assert any(f.path == "pkg/driver.py" for f in chains)


def test_perf001_silent_outside_net_loops():
    findings, _ = _analyze({"pkg/mod.py": """\
        import numpy as np

        def decompose(matrix):
            return np.linalg.eig(matrix)

        def tabulate(rows):
            for row in rows:
                print(row)
        """})
    assert findings == []


def test_perf001_hot_when_profiled():
    findings, stats = _analyze({"pkg/mod.py": """\
        import numpy as np

        def analyze(nets):
            for net in nets:
                np.linalg.svd(net)
        """}, hotness=_hot("pkg.mod", "analyze"))
    (finding,) = findings
    assert finding.severity == "error"
    assert "hot path" in finding.message
    assert stats["hot"] == 1 and stats["cold"] == 0


# ----------------------------------------------------------------------
# PERF002: per-iteration allocation (profile-gated)
# ----------------------------------------------------------------------
ALLOC = """\
    import numpy as np

    def build(count):
        total = 0.0
        for i in range(count):
            scratch = np.zeros(64)
            total += scratch.sum() + i
        return total
    """

GROWING = """\
    import numpy as np

    def collect(rows):
        out = []
        for row in rows:
            out.append(row * 2)
            snapshot = np.array(out)
        return snapshot
    """


def test_perf002_is_silent_without_a_profile():
    findings, _ = _analyze({"pkg/mod.py": ALLOC})
    assert findings == []


def test_perf002_fires_for_hot_functions():
    findings, _ = _analyze({"pkg/mod.py": ALLOC},
                           hotness=_hot("pkg.mod", "build"))
    (finding,) = findings
    assert finding.rule == "PERF002"
    assert finding.severity == "error"
    assert "hoist" in finding.message


def test_perf002_loop_dependent_allocation_is_fine():
    findings, _ = _analyze({"pkg/mod.py": """\
        import numpy as np

        def build(sizes):
            out = []
            for size in sizes:
                out.append(np.zeros(size))
            return out
        """}, hotness=_hot("pkg.mod", "build"))
    assert findings == []


def test_perf002_growing_array_rebuild():
    findings, _ = _analyze({"pkg/mod.py": GROWING},
                           hotness=_hot("pkg.mod", "collect"))
    (finding,) = findings
    assert finding.rule == "PERF002"
    assert "rebuilds the array" in finding.message


def test_perf002_hotness_propagates_through_the_call_graph():
    # Only the caller is profiled; the callee inherits hotness via
    # call-graph reachability.
    findings, _ = _analyze({"pkg/mod.py": ALLOC + """\

    def pipeline(count):
        return build(count)
    """}, hotness=_hot("pkg.mod", "pipeline"))
    assert _rules(findings) == ["PERF002"]


# ----------------------------------------------------------------------
# PERF003: nested design-collection scans
# ----------------------------------------------------------------------
def test_perf003_nested_scan_over_independent_collections():
    findings, _ = _analyze({"pkg/mod.py": """\
        def cross(design, report):
            hits = []
            for net in design.nets:
                for path in report.paths:
                    hits.append((net, path))
            return hits
        """})
    (finding,) = findings
    assert finding.rule == "PERF003"
    assert "reverse index" in finding.message


def test_perf003_iterating_the_loop_variables_attribute_is_fine():
    findings, _ = _analyze({"pkg/mod.py": """\
        def fanout(design):
            hits = []
            for net in design.nets:
                for sink in net.sinks:
                    hits.append(sink)
            return hits
        """})
    assert findings == []


# ----------------------------------------------------------------------
# PERF004: cache bypass
# ----------------------------------------------------------------------
def test_perf004_direct_moments_call():
    findings, _ = _analyze({"pkg/mod.py": """\
        from repro.analysis.moments import moments

        def metric(net):
            return moments(net, order=2)
        """})
    (finding,) = findings
    assert finding.rule == "PERF004"
    assert "cached_moments" in finding.message


def test_perf004_exempts_the_caching_layer_itself():
    findings, _ = _analyze({"repro/analysis/batch.py": """\
        from repro.analysis.moments import moments

        def prime(net):
            return moments(net, order=2)
        """})
    assert findings == []


# ----------------------------------------------------------------------
# PERF005: imports / wall-clock under a loop
# ----------------------------------------------------------------------
def test_perf005_import_inside_loop():
    findings, _ = _analyze({"pkg/mod.py": """\
        def handle(items):
            for item in items:
                import json
                json.dumps(item)
        """})
    (finding,) = findings
    assert finding.rule == "PERF005"
    assert "hoist it to module scope" in finding.message


def test_perf005_clock_inside_loop():
    findings, _ = _analyze({"pkg/mod.py": """\
        import time

        def stamp(items):
            out = []
            for item in items:
                out.append((time.time(), item))
            return out
        """})
    (finding,) = findings
    assert finding.rule == "PERF005"
    assert "time.perf_counter" in finding.message


def test_perf005_perf_counter_is_legal():
    findings, _ = _analyze({"pkg/mod.py": """\
        import time

        def measure(items):
            out = []
            for item in items:
                start = time.perf_counter()
                out.append(item)
                out.append(time.perf_counter() - start)
            return out
        """})
    assert findings == []


def test_nested_def_body_is_not_per_iteration():
    findings, _ = _analyze({"pkg/mod.py": """\
        def outer(items):
            for item in items:
                def later():
                    import json
                    return json.dumps(item)
                yield later
        """})
    assert findings == []


# ----------------------------------------------------------------------
# Serialization + stats
# ----------------------------------------------------------------------
def test_module_perf_round_trips():
    source = textwrap.dedent(ALLOC)
    tree = ast.parse(source)
    summary = summarize_module("pkg.mod", "pkg/mod.py", tree,
                               source.splitlines(), False)
    perf = extract_module_perf(summary, tree, "pkg/mod.py")
    assert perf.sites  # the np.zeros alloc site at minimum
    restored = ModulePerf.from_dict(perf.as_dict())
    assert restored.as_dict() == perf.as_dict()


def test_stats_block_shape():
    _, stats = _analyze({"pkg/mod.py": ALLOC},
                        hotness=_hot("pkg.mod", "build"))
    assert stats["modules"] == 1
    assert stats["profile_sources"] == ["synthetic"]
    assert stats["hot_threshold_s"] == pytest.approx(0.01)
    assert stats["manifest"][0]["span"] == "synthetic.span"


# ----------------------------------------------------------------------
# DeepAnalyzer wiring: cache ride-along + suppression
# ----------------------------------------------------------------------
def test_perf_models_ride_the_incremental_cache(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text(textwrap.dedent("""\
        import numpy as np

        def analyze(nets):
            for net in nets:
                np.linalg.eig(net)
        """), encoding="utf-8")
    cache = str(tmp_path / "cache.json")
    cold = DeepAnalyzer(config=LintConfig(), cache_path=cache, perf=True)
    findings, stats = cold.analyze(["pkg/mod.py"])
    assert _rules(findings) == ["PERF001"]
    assert stats.perf is not None
    assert stats.perf["models_extracted"] == 1
    warm = DeepAnalyzer(config=LintConfig(), cache_path=cache, perf=True)
    findings, stats = warm.analyze(["pkg/mod.py"])
    assert _rules(findings) == ["PERF001"]  # findings re-assembled fresh
    assert stats.perf is not None
    assert stats.perf["models_reused"] == 1
    assert stats.modules_parsed == 0  # nothing re-parsed on a warm run


def test_perf_findings_respect_inline_suppression(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text(textwrap.dedent("""\
        import numpy as np

        def analyze(nets):
            for net in nets:
                np.linalg.eig(net)  # repro-lint: disable=PERF001
        """), encoding="utf-8")
    analyzer = DeepAnalyzer(config=LintConfig(), cache_path=None, perf=True)
    findings, stats = analyzer.analyze(["pkg/mod.py"])
    assert findings == []
    assert stats.suppressed == 1
