"""[tool.repro-lint] configuration loading and validation."""

import os

import pytest

from repro.lint import ConfigError, LintConfig, load_config
from repro.lint.config import DEFAULT_DET003_EXEMPT, config_from_pyproject


def _write(tmp_path, text):
    path = tmp_path / "pyproject.toml"
    path.write_text(text, encoding="utf-8")
    return str(path)


class TestLoadConfig:
    def test_missing_pyproject_yields_defaults(self, tmp_path):
        config = load_config(str(tmp_path))
        assert config.det003_exempt == DEFAULT_DET003_EXEMPT
        assert config.exclude == ()
        assert config.unit_declarations is None

    def test_walks_up_to_nearest_pyproject(self, tmp_path):
        _write(tmp_path, '[tool.repro-lint]\nexclude = ["gen_*.py"]\n')
        nested = tmp_path / "src" / "pkg"
        nested.mkdir(parents=True)
        config = load_config(str(nested))
        assert config.exclude == ("gen_*.py",)
        assert config.root == str(tmp_path)

    def test_section_absent_keeps_defaults_but_sets_root(self, tmp_path):
        _write(tmp_path, '[project]\nname = "demo"\n')
        config = load_config(str(tmp_path))
        assert config.det003_exempt == DEFAULT_DET003_EXEMPT
        assert config.root == str(tmp_path)


class TestSectionParsing:
    def test_all_keys_round_trip(self, tmp_path):
        path = _write(tmp_path, (
            '[tool.repro-lint]\n'
            'det003-exempt = ["obs", "viz"]\n'
            'exclude = ["examples/scratch_*.py"]\n'
            'unit-declarations = "lint/units.json"\n'
        ))
        config = config_from_pyproject(path)
        assert config.det003_exempt == ("obs", "viz")
        assert config.exclude == ("examples/scratch_*.py",)
        assert config.unit_declarations == "lint/units.json"

    def test_unknown_key_raises(self, tmp_path):
        path = _write(tmp_path,
                      '[tool.repro-lint]\ndet3-exempt = ["obs"]\n')
        with pytest.raises(ConfigError, match="unknown .* key"):
            config_from_pyproject(path)

    def test_non_list_exclude_raises(self, tmp_path):
        path = _write(tmp_path, '[tool.repro-lint]\nexclude = "gen.py"\n')
        with pytest.raises(ConfigError, match="list of strings"):
            config_from_pyproject(path)

    def test_non_string_declarations_raises(self, tmp_path):
        path = _write(tmp_path,
                      '[tool.repro-lint]\nunit-declarations = ["a.json"]\n')
        with pytest.raises(ConfigError, match="must be .*a string"):
            config_from_pyproject(path)

    def test_malformed_toml_raises(self, tmp_path):
        path = _write(tmp_path, '[tool.repro-lint\nexclude = [\n')
        with pytest.raises(ConfigError, match="cannot parse"):
            config_from_pyproject(path)


class TestDeclarationsPath:
    def test_relative_path_resolves_against_root(self):
        config = LintConfig(unit_declarations="lint/units.json",
                            root="/repo")
        assert config.unit_declarations_path() \
            == os.path.join("/repo", "lint/units.json")

    def test_absolute_path_passes_through(self):
        config = LintConfig(unit_declarations="/etc/units.json")
        assert config.unit_declarations_path() == "/etc/units.json"

    def test_none_stays_none(self):
        assert LintConfig().unit_declarations_path() is None
