"""Hotness loader: trace/bench ingestion, exclusive math, hot predicate."""

import json

import pytest

from repro.lint.hotness import (HOT_MIN_SECONDS, HotnessProfile, HotSpot,
                                ProfileError, discover_default_profile,
                                load_hotness)


def _trace_line(name, wall, parent=None):
    record = {"name": name, "wall_s": wall, "cpu_s": wall, "count": 1}
    if parent is not None:
        record["parent"] = parent
    return json.dumps(record)


def _write_trace(tmp_path, lines, name="trace.jsonl"):
    path = tmp_path / name
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return str(path)


# ----------------------------------------------------------------------
# Trace JSONL ingestion
# ----------------------------------------------------------------------
def test_trace_exclusive_subtracts_real_children(tmp_path):
    path = _write_trace(tmp_path, [
        _trace_line("sta.analyze_design", 1.0),
        _trace_line("simulate.net", 0.3, parent="sta.analyze_design"),
        _trace_line("simulate.net", 0.4, parent="sta.analyze_design"),
        _trace_line("simulate.decompose", 0.2, parent="simulate.net"),
    ])
    profile = load_hotness([path])
    by_span = {s.span: s for s in profile.spots}
    assert by_span["sta.analyze_design"].wall_s == pytest.approx(1.0)
    # 1.0 inclusive minus the 0.7 spent in child simulate.net spans.
    assert by_span["sta.analyze_design"].exclusive_s == pytest.approx(0.3)
    assert by_span["simulate.net"].calls == 2
    assert by_span["simulate.net"].exclusive_s == pytest.approx(0.5)
    assert by_span["simulate.decompose"].exclusive_s == pytest.approx(0.2)


def test_trace_spans_attribute_to_functions(tmp_path):
    path = _write_trace(tmp_path, [_trace_line("sta.analyze_design", 1.0)])
    profile = load_hotness([path])
    (spot,) = profile.spots
    assert spot.module == "repro.design.sta"
    assert spot.qualname == "STAEngine.analyze_design"
    assert spot.function == "repro.design.sta.STAEngine.analyze_design"


def test_trace_family_prefixes(tmp_path):
    path = _write_trace(tmp_path, [
        _trace_line("bench.sta", 1.0),          # harness: unattributed
        _trace_line("parallel.generate_designs", 0.5),
    ])
    profile = load_hotness([path])
    by_span = {s.span: s for s in profile.spots}
    assert by_span["bench.sta"].function is None
    assert by_span["parallel.generate_designs"].module == \
        "repro.parallel.pool"


# ----------------------------------------------------------------------
# BENCH report ingestion
# ----------------------------------------------------------------------
def _bench_document(stages):
    return {
        "schema": "repro-bench/1",
        "observability": {"stages": stages},
    }


def test_bench_exclusive_uses_declared_children(tmp_path):
    path = tmp_path / "BENCH_2026-01-01.json"
    path.write_text(json.dumps(_bench_document({
        "sta.analyze_design": {"count": 1, "wall_s": 1.0},
        "simulate.net": {"count": 40, "wall_s": 0.8},
        "simulate.decompose": {"count": 40, "wall_s": 0.1},
    })), encoding="utf-8")
    profile = load_hotness([str(path)])
    by_span = {s.span: s for s in profile.spots}
    # sta.analyze_design declares simulate.net (and simulate.batch, absent)
    # as children; simulate.net declares simulate.decompose.
    assert by_span["sta.analyze_design"].exclusive_s == pytest.approx(0.2)
    assert by_span["simulate.net"].exclusive_s == pytest.approx(0.7)
    assert by_span["simulate.net"].calls == 40


def test_committed_bench_baseline_loads(monkeypatch):
    from pathlib import Path
    repo = Path(__file__).resolve().parents[2]
    newest = discover_default_profile(str(repo))
    assert newest is not None and "BENCH_" in newest
    profile = load_hotness([newest])
    assert profile  # non-empty
    assert profile.total_exclusive_s > 0
    # The committed workload takes real time, so something must be hot.
    assert profile.hot_functions()


# ----------------------------------------------------------------------
# Merging, thresholds, errors
# ----------------------------------------------------------------------
def test_merge_takes_max_exclusive_per_span(tmp_path):
    a = _write_trace(tmp_path, [_trace_line("train.epoch", 0.2)], "a.jsonl")
    b = _write_trace(tmp_path, [_trace_line("train.epoch", 0.9)], "b.jsonl")
    profile = load_hotness([a, b])
    (spot,) = profile.spots
    assert spot.exclusive_s == pytest.approx(0.9)
    assert list(profile.sources) == [a, b]


def test_threshold_has_absolute_floor():
    tiny = HotnessProfile([HotSpot("train.epoch", "repro.nn.trainer",
                                   "Trainer.fit", 1, 1e-4, 1e-4)], ["x"])
    assert tiny.threshold_s == HOT_MIN_SECONDS
    assert tiny.hot_functions() == {}


def test_manifest_rows_are_stable_and_flagged(tmp_path):
    path = _write_trace(tmp_path, [
        _trace_line("train.epoch", 2.0),
        _trace_line("features.scaler_fit", 0.001),
    ])
    profile = load_hotness([path])
    rows = profile.manifest()
    assert [row["span"] for row in rows] == ["train.epoch",
                                             "features.scaler_fit"]
    assert rows[0]["hot"] is True and rows[1]["hot"] is False
    assert rows[0]["function"] == "repro.nn.trainer.Trainer.fit"


def test_profile_errors(tmp_path):
    with pytest.raises(ProfileError):
        load_hotness([str(tmp_path / "missing.json")])
    empty = tmp_path / "empty.json"
    empty.write_text("", encoding="utf-8")
    with pytest.raises(ProfileError):
        load_hotness([str(empty)])
    garbage = tmp_path / "garbage.txt"
    garbage.write_text("not a profile\n", encoding="utf-8")
    with pytest.raises(ProfileError):
        load_hotness([str(garbage)])


def test_discover_default_profile_picks_newest(tmp_path):
    assert discover_default_profile(str(tmp_path)) is None
    (tmp_path / "BENCH_2026-08-05.json").write_text("{}", encoding="utf-8")
    (tmp_path / "BENCH_2026-08-08.json").write_text("{}", encoding="utf-8")
    newest = discover_default_profile(str(tmp_path))
    assert newest is not None and newest.endswith("BENCH_2026-08-08.json")
