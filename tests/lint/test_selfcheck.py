"""Self-application: the repo must stay clean under its own linter.

This is the acceptance gate the CI ``static-analysis`` job enforces;
keeping it in tier-1 means a violation fails locally before it fails in
CI, with the same baseline semantics (`lint-baseline.json` at the repo
root, empty today).
"""

import os
from pathlib import Path

from repro.lint import (DEFAULT_BASELINE, DeepAnalyzer, LintRunner,
                        load_baseline, load_config)

REPO = Path(__file__).resolve().parents[2]


def test_repo_is_lint_clean(monkeypatch):
    monkeypatch.chdir(REPO)
    baseline = load_baseline(DEFAULT_BASELINE)
    result = LintRunner().run(["src", "tools"], baseline=baseline)
    details = "\n".join(
        f"{f.location()}: {f.rule}: {f.message}" for f in result.findings)
    assert result.exit_code == 0, f"repo lint findings:\n{details}"
    # Every baseline entry must still match something; stale entries mean
    # the debt was paid and the entry should be deleted.
    assert result.stale_baseline == []
    assert result.files_checked > 50


def test_repo_is_deep_clean(monkeypatch):
    """The whole-program tier (FLOW/SHAPE/UNIT) must also stay clean."""
    monkeypatch.chdir(REPO)
    config = load_config(str(REPO))
    deep = DeepAnalyzer(config=config, cache_path=None)
    runner = LintRunner(exclude=config.exclude)
    result = runner.run(["src", "tools"],
                        baseline=load_baseline(DEFAULT_BASELINE), deep=deep)
    details = "\n".join(
        f"{f.location()}: {f.rule}: {f.message}" for f in result.findings)
    assert result.exit_code == 0, f"deep lint findings:\n{details}"
    assert result.deep is not None
    assert result.deep.modules_analyzed > 50


def test_repo_is_concurrency_clean(monkeypatch):
    """The CONC pack (lock-order, guarded-by, thread-escape) stays clean.

    Run over ``src`` only: the tier models production locking discipline,
    and tools are single-threaded scripts.  Inline suppressions (the two
    documented clock-under-lock sites) are allowed; new findings are not.
    """
    monkeypatch.chdir(REPO)
    config = load_config(str(REPO))
    deep = DeepAnalyzer(config=config, cache_path=None, concurrency=True)
    runner = LintRunner(exclude=config.exclude)
    result = runner.run(["src"], baseline=load_baseline(DEFAULT_BASELINE),
                        deep=deep)
    details = "\n".join(
        f"{f.location()}: {f.rule}: {f.message}" for f in result.findings)
    assert result.exit_code == 0, f"concurrency findings:\n{details}"
    assert result.deep is not None
    conc = result.deep.concurrency
    assert conc is not None and conc["modules"] > 50
    # The serving stack's locks are modeled: the graph is non-trivial.
    assert conc["locks"] >= 9
    assert conc["lock_edges"] >= 3


def test_repo_is_perf_clean(monkeypatch):
    """The PERF pack, ranked against the committed bench profile.

    The acceptance bar for this pack is "fixed, not waived": hot-ranked
    findings were paid down (cached_moments, hoisted serve imports), so
    the run must be clean with the empty baseline — no inline waivers.
    """
    monkeypatch.chdir(REPO)
    from repro.lint import discover_default_profile

    config = load_config(str(REPO))
    profile = discover_default_profile(str(REPO))
    assert profile is not None, "committed BENCH_*.json profile is missing"
    deep = DeepAnalyzer(config=config, cache_path=None, perf=True,
                        hot_profiles=[profile])
    runner = LintRunner(exclude=config.exclude)
    result = runner.run(["src"], baseline=load_baseline(DEFAULT_BASELINE),
                        deep=deep)
    details = "\n".join(
        f"{f.location()}: {f.rule}: {f.message}" for f in result.findings)
    assert result.exit_code == 0, f"perf findings:\n{details}"
    assert result.deep is not None
    perf = result.deep.perf
    assert perf is not None and perf["modules"] > 50
    # The profile attributes real workload time: the manifest is non-empty
    # and at least one span clears the hot threshold.
    assert any(row["hot"] for row in perf["manifest"])


def test_repo_is_arch_clean(monkeypatch):
    """Layer contracts in pyproject.toml hold over all of src/repro."""
    monkeypatch.chdir(REPO)
    config = load_config(str(REPO))
    assert config.layer_contracts(), "pyproject layer table went missing"
    deep = DeepAnalyzer(config=config, cache_path=None, arch=True)
    runner = LintRunner(exclude=config.exclude)
    result = runner.run(["src"], baseline=load_baseline(DEFAULT_BASELINE),
                        deep=deep)
    details = "\n".join(
        f"{f.location()}: {f.rule}: {f.message}" for f in result.findings)
    assert result.exit_code == 0, f"arch findings:\n{details}"
    assert result.deep is not None
    arch = result.deep.arch
    assert arch is not None
    assert arch["violations"] == 0
    # The contract table stays exhaustive: every observed layer declared.
    assert arch["layers_observed"] <= arch["layers_declared"]
    assert arch["edges"] >= 40


def test_committed_baseline_is_well_formed():
    entries = load_baseline(os.path.join(str(REPO), DEFAULT_BASELINE))
    for entry in entries:
        assert entry.justification.strip(), (
            f"baseline entry {entry.key()} lacks a justification")
