"""Per-rule positive/negative fixtures: every rule fires, and only when
it should."""

from tests.lint.conftest import rule_names


class TestDET001LegacyGlobalRng:
    def test_legacy_api_fires(self, lint_snippet):
        result = lint_snippet("""
            import numpy as np

            def draw():
                np.random.seed(0)
                return np.random.rand(3)
        """, select=["DET001"])
        assert rule_names(result) == ["DET001", "DET001"]

    def test_unseeded_default_rng_fires(self, lint_snippet):
        result = lint_snippet("""
            import numpy as np

            def draw():
                return np.random.default_rng().random()
        """, select=["DET001"])
        assert rule_names(result) == ["DET001"]
        assert "without a seed" in result.findings[0].message

    def test_module_level_rng_fires_even_when_seeded(self, lint_snippet):
        result = lint_snippet("""
            import numpy as np

            GEN = np.random.default_rng(7)
        """, select=["DET001"])
        assert rule_names(result) == ["DET001"]
        assert "module scope" in result.findings[0].message

    def test_seeded_generator_parameter_is_clean(self, lint_snippet):
        result = lint_snippet("""
            import numpy as np

            def draw(rng: np.random.Generator, seed: int):
                local = np.random.default_rng(seed)
                return rng.normal() + local.random()
        """, select=["DET001"])
        assert result.findings == []

    def test_function_default_executes_at_import_time(self, lint_snippet):
        result = lint_snippet("""
            import numpy as np

            def draw(rng=np.random.default_rng(0)):
                return rng.random()
        """, select=["DET001"])
        assert rule_names(result) == ["DET001"]


class TestDET002StdlibRandom:
    def test_import_fires(self, lint_snippet):
        result = lint_snippet("import random\n", select=["DET002"])
        assert rule_names(result) == ["DET002"]

    def test_from_import_fires(self, lint_snippet):
        result = lint_snippet("from random import choice\n",
                              select=["DET002"])
        assert rule_names(result) == ["DET002"]

    def test_numpy_random_import_is_clean(self, lint_snippet):
        result = lint_snippet("import numpy.random\n", select=["DET002"])
        assert result.findings == []


class TestDET003WallClock:
    def test_time_time_in_pipeline_fires(self, lint_snippet):
        result = lint_snippet("""
            import time

            def label_key():
                return time.time()
        """, name="features/keys.py", select=["DET003"])
        assert rule_names(result) == ["DET003"]

    def test_perf_counter_is_clean(self, lint_snippet):
        result = lint_snippet("""
            import time

            def measure():
                return time.perf_counter()
        """, name="features/keys.py", select=["DET003"])
        assert result.findings == []

    def test_obs_module_is_exempt(self, lint_snippet):
        result = lint_snippet("""
            import time

            def stamp():
                return time.time()
        """, name="obs/tracer_fixture.py", select=["DET003"])
        assert result.findings == []


class TestDET004SetIteration:
    def test_for_over_set_call_fires(self, lint_snippet):
        result = lint_snippet("""
            def emit(items):
                for item in set(items):
                    print(item)
        """, select=["DET004"])
        assert rule_names(result) == ["DET004"]

    def test_comprehension_over_set_literal_fires(self, lint_snippet):
        result = lint_snippet("rows = [x for x in {1, 2, 3}]\n",
                              select=["DET004"])
        assert rule_names(result) == ["DET004"]

    def test_sorted_set_is_clean(self, lint_snippet):
        result = lint_snippet("""
            def emit(items):
                for item in sorted(set(items)):
                    print(item)
                return 3 in set(items), len({1, 2})
        """, select=["DET004"])
        assert result.findings == []


class TestNUM001UnguardedLinalg:
    def test_raw_solve_outside_analysis_fires(self, lint_snippet):
        result = lint_snippet("""
            import numpy as np

            def project(a, b):
                return np.linalg.solve(a, b)
        """, name="features/proj.py", select=["NUM001"])
        assert rule_names(result) == ["NUM001"]

    def test_from_import_alias_fires(self, lint_snippet):
        result = lint_snippet("""
            from numpy import linalg

            def invert(a):
                return linalg.inv(a)
        """, name="features/proj.py", select=["NUM001"])
        assert rule_names(result) == ["NUM001"]

    def test_analysis_module_is_allowed(self, lint_snippet):
        result = lint_snippet("""
            import numpy as np

            def solve(a, b):
                return np.linalg.solve(a, b)
        """, name="analysis/solver.py", select=["NUM001"])
        assert result.findings == []

    def test_guards_module_is_allowed(self, lint_snippet):
        result = lint_snippet("""
            import numpy as np

            def guarded(a):
                return np.linalg.eigvalsh(a)
        """, name="robustness/guards.py", select=["NUM001"])
        assert result.findings == []


class TestNUM002FloatEquality:
    def test_float_literal_equality_fires_in_scope(self, lint_snippet):
        result = lint_snippet("""
            def degenerate(x):
                return x == 0.5
        """, name="analysis/check.py", select=["NUM002"])
        assert rule_names(result) == ["NUM002"]
        assert result.findings[0].severity == "warning"

    def test_integer_equality_is_clean(self, lint_snippet):
        result = lint_snippet("""
            def is_source(node, source):
                return node == source or node == 0
        """, name="rcnet/check.py", select=["NUM002"])
        assert result.findings == []

    def test_out_of_scope_module_is_clean(self, lint_snippet):
        result = lint_snippet("""
            def threshold(p):
                return p != 0.5
        """, name="nn/dropout_fixture.py", select=["NUM002"])
        assert result.findings == []


class TestERR001BareExcept:
    def test_bare_except_fires(self, lint_snippet):
        result = lint_snippet("""
            def run(task):
                try:
                    task()
                except:
                    pass
        """, select=["ERR001"])
        assert rule_names(result) == ["ERR001"]

    def test_typed_except_is_clean(self, lint_snippet):
        result = lint_snippet("""
            def run(task):
                try:
                    task()
                except ValueError:
                    pass
        """, select=["ERR001"])
        assert result.findings == []


class TestERR002BroadExceptContract:
    def test_swallowing_handler_fires(self, lint_snippet):
        result = lint_snippet("""
            def run(task, log):
                try:
                    task()
                except Exception as exc:
                    log(exc)
        """, select=["ERR002"])
        assert rule_names(result) == ["ERR002"]

    def test_reraise_satisfies_contract(self, lint_snippet):
        result = lint_snippet("""
            def run(task):
                try:
                    task()
                except Exception:
                    raise
        """, select=["ERR002"])
        assert result.findings == []

    def test_taxonomy_conversion_satisfies_contract(self, lint_snippet):
        result = lint_snippet("""
            from repro.robustness.errors import ModelError

            def run(task, record):
                try:
                    task()
                except Exception as exc:
                    record(ModelError("degraded", cause=exc))
        """, select=["ERR002"])
        assert result.findings == []

    def test_tuple_catch_including_exception_fires(self, lint_snippet):
        result = lint_snippet("""
            def run(task):
                try:
                    task()
                except (ValueError, Exception):
                    pass
        """, select=["ERR002"])
        assert rule_names(result) == ["ERR002"]


class TestPAR001ParallelCallable:
    def test_lambda_task_fires(self, lint_snippet):
        result = lint_snippet("""
            from repro.parallel import parallel_map

            def run(items):
                return parallel_map(lambda x: x * x, items, jobs=2)
        """, select=["PAR001"])
        assert rule_names(result) == ["PAR001"]

    def test_nested_function_task_fires(self, lint_snippet):
        result = lint_snippet("""
            from repro.parallel import parallel_map

            def run(items):
                def task(x):
                    return x * x
                return parallel_map(task, items, jobs=2)
        """, select=["PAR001"])
        assert rule_names(result) == ["PAR001"]

    def test_lambda_initializer_fires(self, lint_snippet):
        result = lint_snippet("""
            from repro.parallel import parallel_map

            def run(task, items):
                return parallel_map(task, items, jobs=2,
                                    initializer=lambda: None)
        """, select=["PAR001"])
        assert rule_names(result) == ["PAR001"]

    def test_module_level_task_is_clean(self, lint_snippet):
        result = lint_snippet("""
            from repro.parallel import parallel_map

            def _task(x):
                return x * x

            def run(items):
                return parallel_map(_task, items, jobs=2)
        """, select=["PAR001"])
        assert result.findings == []


class TestPAR002ParallelMutableGlobal:
    def test_task_reading_mutable_global_fires(self, lint_snippet):
        result = lint_snippet("""
            from repro.parallel import parallel_map

            _MEMO = {}

            def _task(x):
                return _MEMO.get(x, x)

            def run(items):
                return parallel_map(_task, items, jobs=2)
        """, select=["PAR002"])
        assert rule_names(result) == ["PAR002"]

    def test_task_reading_module_rng_fires(self, lint_snippet):
        result = lint_snippet("""
            import numpy as np
            from repro.parallel import parallel_map

            _RNG = np.random.default_rng(0)

            def _task(x):
                return x + _RNG.random()

            def run(items):
                return parallel_map(_task, items, jobs=2)
        """, select=["PAR002"])
        assert rule_names(result) == ["PAR002"]

    def test_worker_initializer_pattern_is_clean(self, lint_snippet):
        # The sanctioned pattern: a None global the pool initializer fills
        # in per worker, plus state travelling inside the task items.
        result = lint_snippet("""
            from repro.parallel import parallel_map

            _WORKER_STATE = None

            def _init(state):
                global _WORKER_STATE
                _WORKER_STATE = state

            def _task(x):
                return _WORKER_STATE.lookup(x)

            def run(items, state):
                return parallel_map(_task, items, jobs=2,
                                    initializer=_init, initargs=(state,))
        """, select=["PAR002"])
        assert result.findings == []

    def test_non_task_function_may_use_globals(self, lint_snippet):
        result = lint_snippet("""
            _CACHE = {}

            def lookup(x):
                return _CACHE.get(x)
        """, select=["PAR002"])
        assert result.findings == []
