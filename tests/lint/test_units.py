"""UNIT001 unit inference: declarations, algebra, scoping."""

import json

import pytest

from repro.lint import LintConfig
from repro.lint.units import (DeclarationError, UnitDeclarations,
                              default_declarations, load_declarations,
                              unit_name)


class TestDeclarations:
    def test_defaults_cover_rc_vocabulary(self):
        decls = default_declarations()
        assert decls.lookup("resistance") == (1, 0)
        assert decls.lookup("cap") == (0, 1)
        assert decls.lookup("delay") == (1, 1)

    def test_plural_falls_back_to_singular(self):
        decls = default_declarations()
        assert decls.lookup("elmores") == (1, 1)

    def test_longest_suffix_wins(self):
        decls = default_declarations()
        assert decls.lookup("wire_delay") == (1, 1)
        assert decls.lookup("total_res") == (1, 0)

    def test_undeclared_name_is_unknown(self):
        assert default_declarations().lookup("weights") is None

    def test_scope_segments(self):
        decls = default_declarations()
        assert decls.applies_to("repro.analysis.elmore")
        assert not decls.applies_to("repro.nn.layers")

    def test_unknown_unit_raises(self):
        with pytest.raises(DeclarationError, match="unknown unit"):
            UnitDeclarations({"names": {"x": "volt"}})

    def test_non_dict_table_raises(self):
        with pytest.raises(DeclarationError, match="must be an object"):
            UnitDeclarations({"suffixes": ["_ohm"]})

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(DeclarationError, match="cannot load"):
            load_declarations(str(tmp_path / "nope.json"))


class TestUnitNames:
    def test_base_names(self):
        assert unit_name((1, 0)) == "ohm"
        assert unit_name((1, 1)) == "second"
        assert unit_name((0, 0)) == "scalar"

    def test_composite_renders_exponents(self):
        assert unit_name((2, 1)) == "ohm^2*farad"


class TestUnitChecking:
    def test_adding_ohm_into_seconds_flags(self, deep_lint):
        findings, _ = deep_lint({
            "pkg/__init__.py": "",
            "pkg/analysis/__init__.py": "",
            "pkg/analysis/calc.py": '''\
                def total(delays, resistance):
                    return delays[0] + resistance
            ''',
        })
        unit = [f for f in findings if f.rule == "UNIT001"]
        assert len(unit) == 1
        assert "second + ohm" in unit[0].message

    def test_elmore_product_is_seconds(self, deep_lint):
        findings, _ = deep_lint({
            "pkg/__init__.py": "",
            "pkg/analysis/__init__.py": "",
            "pkg/analysis/calc.py": '''\
                def stage(resistance, cap, delays):
                    delay = resistance * cap
                    return delays[0] + delay
            ''',
        })
        assert [f for f in findings if f.rule == "UNIT001"] == []

    def test_assigning_ohm_to_delay_flags(self, deep_lint):
        findings, _ = deep_lint({
            "pkg/__init__.py": "",
            "pkg/analysis/__init__.py": "",
            "pkg/analysis/calc.py": '''\
                def broken(resistance):
                    delay = resistance
                    return delay
            ''',
        })
        unit = [f for f in findings if f.rule == "UNIT001"]
        assert len(unit) == 1
        assert "assigning ohm to a second name" in unit[0].message

    def test_accumulating_mismatch_flags(self, deep_lint):
        findings, _ = deep_lint({
            "pkg/__init__.py": "",
            "pkg/analysis/__init__.py": "",
            "pkg/analysis/calc.py": '''\
                def accumulate(delay, cap):
                    delay += cap
                    return delay
            ''',
        })
        unit = [f for f in findings if f.rule == "UNIT001"]
        assert len(unit) == 1
        assert "accumulating farad into a second quantity" in unit[0].message

    def test_out_of_scope_module_is_silent(self, deep_lint):
        findings, _ = deep_lint({
            "pkg/__init__.py": "",
            "pkg/core/__init__.py": "",
            "pkg/core/calc.py": '''\
                def total(delays, resistance):
                    return delays[0] + resistance
            ''',
        })
        assert [f for f in findings if f.rule == "UNIT001"] == []

    def test_custom_declarations_file(self, deep_lint, tmp_path):
        (tmp_path / "units.json").write_text(json.dumps({
            "scopes": ["kernels"],
            "names": {"latency": "second", "r": "ohm"},
        }), encoding="utf-8")
        config = LintConfig(unit_declarations="units.json")
        findings, _ = deep_lint({
            "pkg/__init__.py": "",
            "pkg/kernels/__init__.py": "",
            "pkg/kernels/calc.py": '''\
                def broken(r):
                    latency = r
                    return latency
            ''',
        }, config=config)
        unit = [f for f in findings if f.rule == "UNIT001"]
        assert len(unit) == 1
        assert "assigning ohm to a second name" in unit[0].message
