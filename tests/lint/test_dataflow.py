"""Dataflow engine fixtures: reaching definitions and taint fixpoints."""

import ast
import textwrap

from repro.lint.cfg import build_cfg
from repro.lint.dataflow import ReachingDefinitions, TaintAnalysis, block_envs


def _cfg(source):
    tree = ast.parse(textwrap.dedent(source))
    return build_cfg(tree.body[0])


def _exit_env(analysis, cfg):
    """The merged environment entering the exit block."""
    return analysis.states[cfg.exit][0]


class TestReachingDefinitions:
    def test_straight_line_single_def(self):
        cfg = _cfg('''\
            def f():
                x = 1
                return x
        ''')
        rd = ReachingDefinitions(cfg)
        facts = _exit_env(rd, cfg).get("x", frozenset())
        assert len(facts) == 1
        assert {fact[1] for fact in facts} == {2}

    def test_branch_merges_both_defs(self):
        cfg = _cfg('''\
            def f(flag):
                if flag:
                    x = 1
                else:
                    x = 2
                return x
        ''')
        rd = ReachingDefinitions(cfg)
        facts = _exit_env(rd, cfg).get("x", frozenset())
        assert {fact[1] for fact in facts} == {3, 5}

    def test_redefinition_kills_earlier_def(self):
        cfg = _cfg('''\
            def f():
                x = 1
                x = 2
                return x
        ''')
        rd = ReachingDefinitions(cfg)
        facts = _exit_env(rd, cfg).get("x", frozenset())
        assert {fact[1] for fact in facts} == {3}

    def test_value_at_recovers_rhs(self):
        cfg = _cfg('''\
            def f():
                err = ValueError("boom")
                raise err
        ''')
        rd = ReachingDefinitions(cfg)
        facts = _exit_env(rd, cfg).get("err", frozenset())
        (fact,) = facts
        value = rd.value_at("err", fact)
        assert isinstance(value, ast.Call)

    def test_loop_fixpoint_terminates_with_both_defs(self):
        cfg = _cfg('''\
            def f(items):
                x = 0
                for item in items:
                    x = item
                return x
        ''')
        rd = ReachingDefinitions(cfg)
        facts = _exit_env(rd, cfg).get("x", frozenset())
        assert {fact[1] for fact in facts} == {2, 4}


class TestTaintAnalysis:
    @staticmethod
    def _is_rng(call):
        return (isinstance(call.func, ast.Attribute)
                and call.func.attr == "default_rng") \
            or (isinstance(call.func, ast.Name)
                and call.func.id == "default_rng")

    def test_source_taints_assignment(self):
        cfg = _cfg('''\
            def f():
                rng = default_rng()
                return rng
        ''')
        taint = TaintAnalysis(cfg, self._is_rng)
        assert _exit_env(taint, cfg).get("rng")

    def test_taint_propagates_through_alias(self):
        cfg = _cfg('''\
            def f():
                rng = default_rng()
                alias = rng
                return alias
        ''')
        taint = TaintAnalysis(cfg, self._is_rng)
        assert _exit_env(taint, cfg).get("alias")

    def test_untainted_reassignment_clears(self):
        cfg = _cfg('''\
            def f():
                rng = default_rng()
                rng = 7
                return rng
        ''')
        taint = TaintAnalysis(cfg, self._is_rng)
        assert not _exit_env(taint, cfg).get("rng")

    def test_block_envs_replays_per_statement(self):
        cfg = _cfg('''\
            def f():
                a = default_rng()
                b = 1
                return a
        ''')
        taint = TaintAnalysis(cfg, self._is_rng)
        seen = []
        for block in cfg.blocks:
            for stmt, env in block_envs(taint.states, block, taint._transfer):
                seen.append((type(stmt).__name__, bool(env.get("a"))))
        # `a` is untainted before its own assignment, tainted afterwards.
        assert ("Assign", False) in seen
        assert ("Return", True) in seen
