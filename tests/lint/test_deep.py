"""Incremental analysis cache: counters across cold, warm, and dirty runs."""

import json


PACKAGE = {
    "pkg/__init__.py": "from .tasks import label_net\n",
    "pkg/tasks.py": '''\
        from .helpers import noisy


        def label_net(item):
            return noisy(item)
    ''',
    "pkg/helpers.py": '''\
        def noisy(item):
            return item + 1
    ''',
    "pkg/standalone.py": '''\
        from repro.robustness.errors import NumericalError


        def solve(matrix):
            raise NumericalError("matrix is singular")
    ''',
}

EDITED_HELPERS = '''\
    def noisy(item):
        return item + 2
'''


class TestIncrementalCache:
    def test_cold_run_analyzes_everything(self, deep_lint, tmp_path):
        cache = str(tmp_path / "cache.json")
        findings, stats = deep_lint(PACKAGE, cache_path=cache)
        assert stats.modules_total == 4
        assert stats.modules_analyzed == 4
        assert stats.modules_cached == 0
        assert not stats.cache_loaded
        assert [f.rule for f in findings] == ["FLOW003"]

    def test_warm_run_serves_all_from_cache(self, deep_lint, tmp_path):
        cache = str(tmp_path / "cache.json")
        cold_findings, _ = deep_lint(PACKAGE, cache_path=cache)
        warm_findings, stats = deep_lint(PACKAGE, cache_path=cache)
        assert stats.cache_loaded
        assert stats.modules_analyzed == 0
        assert stats.modules_cached == 4
        # Cached findings replay identically.
        assert [(f.rule, f.line) for f in warm_findings] \
            == [(f.rule, f.line) for f in cold_findings]

    def test_edit_dirties_module_and_transitive_importers(self, deep_lint,
                                                          tmp_path):
        cache = str(tmp_path / "cache.json")
        deep_lint(PACKAGE, cache_path=cache)
        edited = dict(PACKAGE, **{"pkg/helpers.py": EDITED_HELPERS})
        _, stats = deep_lint(edited, cache_path=cache)
        # helpers changed; tasks imports helpers; __init__ imports tasks.
        # standalone imports neither, so it alone is served from cache.
        assert stats.modules_analyzed == 3
        assert stats.modules_cached == 1

    def test_cache_file_is_versioned_json(self, deep_lint, tmp_path):
        cache = tmp_path / "cache.json"
        deep_lint(PACKAGE, cache_path=str(cache))
        raw = json.loads(cache.read_text(encoding="utf-8"))
        assert "version" in raw or "schema" in raw

    def test_incompatible_cache_falls_back_to_cold(self, deep_lint, tmp_path):
        cache = tmp_path / "cache.json"
        cache.write_text(json.dumps({"version": -1, "modules": {}}),
                         encoding="utf-8")
        _, stats = deep_lint(PACKAGE, cache_path=str(cache))
        assert not stats.cache_loaded
        assert stats.modules_analyzed == 4

    def test_no_cache_path_never_writes(self, deep_lint, tmp_path):
        before = {p.name for p in tmp_path.iterdir()}
        deep_lint(PACKAGE, cache_path=None)
        after = {p.name for p in tmp_path.iterdir()}
        assert after - before == {"pkg"}


LOCKED = {
    "pkg/store.py": '''\
        import threading


        class Store:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def forward(self):
                with self._a:
                    with self._b:
                        pass

            def backward(self):
                with self._b:
                    with self._a:
                        pass
    ''',
}


class TestPackToggleInvalidation:
    """The cache key covers the enabled pack set (regression).

    A cache written by a plain ``--deep`` run must not be replayed
    verbatim once ``--concurrency``/``--perf``/``--arch`` joins: the old
    entries carry no pack models and their findings lists are silently
    missing pack results.  The fingerprint now includes the pack set and
    each pack's version, so any toggle invalidates the whole cache.
    """

    def test_enabling_a_pack_invalidates_a_deep_only_cache(self, deep_lint,
                                                           tmp_path):
        cache = str(tmp_path / "cache.json")
        deep_lint(LOCKED, cache_path=cache)                     # cold
        _, warm = deep_lint(LOCKED, cache_path=cache)           # warm
        assert warm.cache_loaded and warm.modules_analyzed == 0

        findings, stats = deep_lint(LOCKED, cache_path=cache,
                                    concurrency=True)
        # The stale deep-only cache must NOT be served: pack toggles
        # change the fingerprint, forcing a cold re-analysis that can
        # actually see the lock-order cycle.
        assert not stats.cache_loaded
        assert stats.modules_analyzed == 1
        assert [f.rule for f in findings] == ["LOCK001", "LOCK001"]

    def test_warm_pack_run_replays_models_without_parsing(self, deep_lint,
                                                          tmp_path):
        cache = str(tmp_path / "cache.json")
        deep_lint(LOCKED, cache_path=cache, concurrency=True)
        findings, stats = deep_lint(LOCKED, cache_path=cache,
                                    concurrency=True)
        assert stats.cache_loaded
        assert stats.modules_analyzed == 0
        assert stats.modules_parsed == 0  # models came from the cache
        assert stats.concurrency["models_reused"] == 1
        assert stats.concurrency["models_extracted"] == 0
        # Pack findings are assembled fresh from cached models, never
        # replayed from stale per-module finding lists.
        assert [f.rule for f in findings] == ["LOCK001", "LOCK001"]

    def test_disabling_the_pack_invalidates_again(self, deep_lint, tmp_path):
        cache = str(tmp_path / "cache.json")
        deep_lint(LOCKED, cache_path=cache, concurrency=True)
        findings, stats = deep_lint(LOCKED, cache_path=cache)
        assert not stats.cache_loaded
        assert findings == []  # no pack, no pack findings

    def test_pack_toggle_preserves_distinct_fingerprints(self, deep_lint,
                                                         tmp_path):
        # perf and arch toggles invalidate independently too.
        cache = str(tmp_path / "cache.json")
        deep_lint(LOCKED, cache_path=cache, perf=True)
        _, stats = deep_lint(LOCKED, cache_path=cache, arch=True)
        assert not stats.cache_loaded
        _, stats = deep_lint(LOCKED, cache_path=cache, arch=True)
        assert stats.cache_loaded
