"""`repro lint` CLI contract: exit codes, formats, baseline workflow."""

import json

from repro.cli import main

DIRTY = "import random\n"
CLEAN = "x = 1\n"


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    return str(path)


def test_clean_run_exits_zero(tmp_path, capsys):
    path = _write(tmp_path, "ok.py", CLEAN)
    assert main(["lint", path]) == 0
    assert "clean:" in capsys.readouterr().out


def test_findings_exit_one(tmp_path, capsys):
    path = _write(tmp_path, "bad.py", DIRTY)
    assert main(["lint", path]) == 1
    assert "DET002" in capsys.readouterr().out


def test_json_format(tmp_path, capsys):
    path = _write(tmp_path, "bad.py", DIRTY)
    assert main(["lint", path, "--format", "json"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["schema"] == "repro-lint/4"
    assert document["counts"] == {"DET002": 1}


def test_output_file(tmp_path, capsys):
    path = _write(tmp_path, "bad.py", DIRTY)
    out = tmp_path / "report.json"
    assert main(["lint", path, "--format", "json",
                 "--output", str(out)]) == 1
    on_disk = json.loads(out.read_text(encoding="utf-8"))
    assert on_disk == json.loads(capsys.readouterr().out)


def test_select_and_ignore(tmp_path, capsys):
    path = _write(tmp_path, "bad.py", DIRTY)
    assert main(["lint", path, "--select", "ERR001"]) == 0
    assert main(["lint", path, "--ignore", "DET002"]) == 0
    capsys.readouterr()


def test_unknown_rule_is_usage_error(tmp_path, capsys):
    path = _write(tmp_path, "ok.py", CLEAN)
    assert main(["lint", path, "--select", "NOPE999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_corrupt_baseline_is_usage_error(tmp_path, capsys):
    path = _write(tmp_path, "ok.py", CLEAN)
    baseline = _write(tmp_path, "base.json", "{broken")
    assert main(["lint", path, "--baseline", baseline]) == 2
    assert "cannot read baseline" in capsys.readouterr().err


def test_write_baseline_then_clean(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    _write(tmp_path, "bad.py", DIRTY)
    baseline = str(tmp_path / "baseline.json")
    assert main(["lint", "bad.py", "--baseline", baseline,
                 "--write-baseline"]) == 0
    assert "wrote 1 finding(s)" in capsys.readouterr().out
    document = json.loads((tmp_path / "baseline.json").read_text())
    assert document["schema"] == "repro-lint-baseline/1"
    assert len(document["entries"]) == 1

    # The grandfathered finding no longer fails the run...
    assert main(["lint", "bad.py", "--baseline", baseline]) == 0
    assert "1 baselined" in capsys.readouterr().out
    # ...but a fresh violation still does.
    _write(tmp_path, "worse.py", "from random import choice\n")
    assert main(["lint", "bad.py", "worse.py", "--baseline", baseline]) == 1


def test_stale_baseline_entry_is_reported(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    _write(tmp_path, "bad.py", DIRTY)
    baseline = str(tmp_path / "baseline.json")
    assert main(["lint", "bad.py", "--baseline", baseline,
                 "--write-baseline"]) == 0
    _write(tmp_path, "bad.py", CLEAN)  # fix the violation
    assert main(["lint", "bad.py", "--baseline", baseline]) == 0
    assert "stale baseline entry" in capsys.readouterr().out


def test_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in ("DET001", "DET002", "DET003", "DET004", "NUM001",
                 "NUM002", "ERR001", "ERR002", "PAR001", "PAR002",
                 "DOC001"):
        assert name in out


def test_list_rules_includes_deep_tier(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in ("FLOW001", "FLOW002", "FLOW003", "FLOW004",
                 "SHAPE001", "SHAPE002", "UNIT001"):
        assert name in out


FLOW_DIRTY = '''\
from repro.robustness.errors import NumericalError


def solve(matrix):
    raise NumericalError("matrix is singular")
'''


def test_deep_tier_flags_flow_findings(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    _write(tmp_path, "sim.py", FLOW_DIRTY)
    assert main(["lint", "sim.py", "--deep", "--cache", "off"]) == 1
    assert "FLOW003" in capsys.readouterr().out


def test_deep_tier_off_by_default(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    _write(tmp_path, "sim.py", FLOW_DIRTY)
    assert main(["lint", "sim.py"]) == 0
    capsys.readouterr()


def test_deep_cache_file_round_trip(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    _write(tmp_path, "sim.py", FLOW_DIRTY)
    cache = tmp_path / "lint-cache.json"
    argv = ["lint", "sim.py", "--deep", "--cache", str(cache),
            "--format", "json"]
    assert main(argv) == 1
    cold = json.loads(capsys.readouterr().out)
    assert cache.is_file()
    assert main(argv) == 1
    warm = json.loads(capsys.readouterr().out)
    assert warm["counts"] == cold["counts"] == {"FLOW003": 1}


def test_exclude_flag_skips_files(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    _write(tmp_path, "bad.py", DIRTY)
    assert main(["lint", ".", "--exclude", "bad.py"]) == 0
    capsys.readouterr()


def _git(tmp_path, *argv):
    import subprocess
    subprocess.run(["git", "-C", str(tmp_path),
                    "-c", "user.email=lint@example.com",
                    "-c", "user.name=lint", *argv],
                   check=True, capture_output=True)


def test_changed_mode_restricts_to_git_diff(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    _write(tmp_path, "steady.py", DIRTY)   # dirty but untouched since commit
    _write(tmp_path, "edited.py", CLEAN)
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-q", "-m", "seed")
    _write(tmp_path, "edited.py", DIRTY)   # the only change since HEAD
    assert main(["lint", ".", "--changed"]) == 1
    out = capsys.readouterr().out
    assert "edited.py" in out
    assert "steady.py" not in out


def test_changed_mode_with_no_changes_is_clean(tmp_path, capsys,
                                               monkeypatch):
    monkeypatch.chdir(tmp_path)
    _write(tmp_path, "steady.py", DIRTY)
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-q", "-m", "seed")
    assert main(["lint", ".", "--changed"]) == 0
    assert "no changed python files" in capsys.readouterr().out


# ----------------------------------------------------------------------
# PERF / ARCH packs + repro report --hot
# ----------------------------------------------------------------------
PYPROJECT_LAYERS = """\
[tool.repro-lint.layers]
design = []
nn = ["obs"]
"""

HOT_MODULE = """\
import numpy as np
from repro.design.netlist import Design


def analyze(nets):
    for net in nets:
        np.linalg.eig(net)
"""


def _perf_arch_fixture(tmp_path):
    (tmp_path / "pyproject.toml").write_text(PYPROJECT_LAYERS,
                                             encoding="utf-8")
    pkg = tmp_path / "src" / "repro" / "nn"
    pkg.mkdir(parents=True)
    (pkg / "model.py").write_text(HOT_MODULE, encoding="utf-8")
    trace = tmp_path / "trace.jsonl"
    trace.write_text(json.dumps({"name": "train.epoch", "wall_s": 2.0})
                     + "\n", encoding="utf-8")
    return str(trace)


def test_perf_arch_json_document(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    trace = _perf_arch_fixture(tmp_path)
    assert main(["lint", "src/repro/nn/model.py", "--perf", "--arch",
                 "--hot-profile", trace, "--cache", "off",
                 "--format", "json"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["schema"] == "repro-lint/4"
    assert "PERF" in document["packs"] and "ARCH" in document["packs"]
    rules = sorted(f["rule"] for f in document["findings"])
    assert "ARCH001" in rules and "PERF001" in rules
    perf = document["perf"]
    assert perf["profile_sources"] == [trace]
    assert perf["hot_threshold_s"] > 0
    assert [row["span"] for row in perf["manifest"]] == ["train.epoch"]
    arch = document["arch"]
    assert arch["violations"] == 1
    assert arch["layers_declared"] == 2


def test_perf_implies_deep_and_text_summary(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    trace = _perf_arch_fixture(tmp_path)
    assert main(["lint", "src/repro/nn/model.py", "--perf", "--arch",
                 "--hot-profile", trace, "--cache", "off"]) == 1
    out = capsys.readouterr().out
    assert "PERF001" in out and "ARCH001" in out
    assert "perf: 0 hot / 1 cold finding(s) from 1 profile(s)" in out
    assert "arch: 1 violation(s) over" in out


def test_bad_hot_profile_is_usage_error(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    _write(tmp_path, "ok.py", CLEAN)
    garbage = _write(tmp_path, "garbage.txt", "not a profile\n")
    assert main(["lint", "ok.py", "--perf",
                 "--hot-profile", garbage]) == 2
    assert "error:" in capsys.readouterr().err


def test_list_rules_includes_perf_and_arch(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("PERF001", "PERF002", "PERF003", "PERF004", "PERF005",
                 "ARCH001", "ARCH002"):
        assert rule in out


def test_report_hot_prints_ranked_table(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    trace = _perf_arch_fixture(tmp_path)
    assert main(["report", "--hot", trace, "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("hot functions (")
    assert "train.epoch" in out
    assert "repro.nn.trainer.Trainer.fit" in out


def test_report_hot_rejects_bad_profile(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    garbage = _write(tmp_path, "garbage.txt", "not a profile\n")
    assert main(["report", "--hot", garbage]) == 1
    assert "error:" in capsys.readouterr().err


def test_report_without_inputs_or_hot_is_usage_error(capsys):
    assert main(["report"]) == 2
    err = capsys.readouterr().err
    assert "--verilog" in err and "--hot" in err
