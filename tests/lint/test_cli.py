"""`repro lint` CLI contract: exit codes, formats, baseline workflow."""

import json

from repro.cli import main

DIRTY = "import random\n"
CLEAN = "x = 1\n"


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    return str(path)


def test_clean_run_exits_zero(tmp_path, capsys):
    path = _write(tmp_path, "ok.py", CLEAN)
    assert main(["lint", path]) == 0
    assert "clean:" in capsys.readouterr().out


def test_findings_exit_one(tmp_path, capsys):
    path = _write(tmp_path, "bad.py", DIRTY)
    assert main(["lint", path]) == 1
    assert "DET002" in capsys.readouterr().out


def test_json_format(tmp_path, capsys):
    path = _write(tmp_path, "bad.py", DIRTY)
    assert main(["lint", path, "--format", "json"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["schema"] == "repro-lint/1"
    assert document["counts"] == {"DET002": 1}


def test_output_file(tmp_path, capsys):
    path = _write(tmp_path, "bad.py", DIRTY)
    out = tmp_path / "report.json"
    assert main(["lint", path, "--format", "json",
                 "--output", str(out)]) == 1
    on_disk = json.loads(out.read_text(encoding="utf-8"))
    assert on_disk == json.loads(capsys.readouterr().out)


def test_select_and_ignore(tmp_path, capsys):
    path = _write(tmp_path, "bad.py", DIRTY)
    assert main(["lint", path, "--select", "ERR001"]) == 0
    assert main(["lint", path, "--ignore", "DET002"]) == 0
    capsys.readouterr()


def test_unknown_rule_is_usage_error(tmp_path, capsys):
    path = _write(tmp_path, "ok.py", CLEAN)
    assert main(["lint", path, "--select", "NOPE999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_corrupt_baseline_is_usage_error(tmp_path, capsys):
    path = _write(tmp_path, "ok.py", CLEAN)
    baseline = _write(tmp_path, "base.json", "{broken")
    assert main(["lint", path, "--baseline", baseline]) == 2
    assert "cannot read baseline" in capsys.readouterr().err


def test_write_baseline_then_clean(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    _write(tmp_path, "bad.py", DIRTY)
    baseline = str(tmp_path / "baseline.json")
    assert main(["lint", "bad.py", "--baseline", baseline,
                 "--write-baseline"]) == 0
    assert "wrote 1 finding(s)" in capsys.readouterr().out
    document = json.loads((tmp_path / "baseline.json").read_text())
    assert document["schema"] == "repro-lint-baseline/1"
    assert len(document["entries"]) == 1

    # The grandfathered finding no longer fails the run...
    assert main(["lint", "bad.py", "--baseline", baseline]) == 0
    assert "1 baselined" in capsys.readouterr().out
    # ...but a fresh violation still does.
    _write(tmp_path, "worse.py", "from random import choice\n")
    assert main(["lint", "bad.py", "worse.py", "--baseline", baseline]) == 1


def test_stale_baseline_entry_is_reported(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    _write(tmp_path, "bad.py", DIRTY)
    baseline = str(tmp_path / "baseline.json")
    assert main(["lint", "bad.py", "--baseline", baseline,
                 "--write-baseline"]) == 0
    _write(tmp_path, "bad.py", CLEAN)  # fix the violation
    assert main(["lint", "bad.py", "--baseline", baseline]) == 0
    assert "stale baseline entry" in capsys.readouterr().out


def test_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in ("DET001", "DET002", "DET003", "DET004", "NUM001",
                 "NUM002", "ERR001", "ERR002", "PAR001", "PAR002",
                 "DOC001"):
        assert name in out
