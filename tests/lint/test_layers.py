"""ARCH pack: layer contracts, the layer graph, and the repo golden."""

import ast
import textwrap
from pathlib import Path

from repro.lint import DeepAnalyzer, LintConfig, dump_layer_graph
from repro.lint.layers import (LayerGraph, build_layer_graph, module_layer,
                               run_arch)
from repro.lint.symbols import summarize_module

REPO = Path(__file__).resolve().parents[2]
GOLDEN = Path(__file__).resolve().parent / "goldens" / "repro_layer_graph.txt"


def _summaries(files):
    out = {}
    for name, raw in files.items():
        source = textwrap.dedent(raw)
        module = name[:-3].replace("/", ".")
        tree = ast.parse(source)
        out[module] = summarize_module(module, name, tree,
                                      source.splitlines(), False)
    return out


def _arch(files, contracts):
    summaries = _summaries(files)
    return run_arch(summaries, contracts, sorted(summaries))


def test_module_layer_extraction():
    assert module_layer("repro.analysis.awe") == "analysis"
    assert module_layer("repro.cli") == "cli"
    assert module_layer("repro") is None          # the facade is exempt
    assert module_layer("numpy.linalg") is None   # outside the project


def test_arch001_disallowed_toplevel_import():
    findings, stats = _arch(
        {"repro/nn/model.py": """\
            import numpy as np
            from repro.design.netlist import Design

            def forward(design):
                return np.asarray(design)
            """},
        {"nn": ("obs", "robustness"), "design": ()})
    (finding,) = findings
    assert finding.rule == "ARCH001" and finding.severity == "error"
    assert finding.line == 2
    assert "'nn' may not import 'design'" in finding.message
    assert "defer the import" in finding.message
    assert stats["violations"] == 1


def test_arch001_deferred_import_is_the_escape_hatch():
    findings, _ = _arch(
        {"repro/nn/model.py": """\
            def forward(raw):
                from repro.design.netlist import Design
                return Design(raw)
            """},
        {"nn": ("obs", "robustness"), "design": ()})
    assert findings == []


def test_arch001_same_layer_and_stdlib_are_free():
    findings, _ = _arch(
        {"repro/nn/model.py": """\
            import json
            from repro.nn.layers import Dense
            from repro.obs import get_metrics
            """},
        {"nn": ("obs",), "obs": ()})
    assert findings == []


def test_arch002_undeclared_layer_warns():
    findings, stats = _arch(
        {"repro/viz/plots.py": "x = 1\n"},
        {"nn": ("obs",)})
    (finding,) = findings
    assert finding.rule == "ARCH002" and finding.severity == "warning"
    assert finding.line == 1
    assert "'viz'" in finding.message
    assert stats["violations"] == 0  # ARCH002 is advisory


def test_empty_contract_table_is_a_no_op():
    findings, stats = _arch(
        {"repro/viz/plots.py": "from repro.design.netlist import Design\n"},
        {})
    assert findings == []
    assert stats["layers_declared"] == 0


def test_layer_graph_dump_is_stable():
    graph = LayerGraph()
    graph.add("core", "design", "repro/core/flow.py:10")
    graph.add("core", "features", "repro/core/flow.py:11")
    graph.layers.add("obs")
    assert graph.dump() == (
        "layer graph (top-level imports)\n"
        "  core -> design features\n"
        "  design -> (none)\n"
        "  features -> (none)\n"
        "  obs -> (none)\n")
    assert graph.dump() == graph.dump()


def test_build_layer_graph_skips_deferred_imports():
    graph = build_layer_graph(_summaries({"repro/cli.py": """\
        from repro.core.config import load

        def main():
            from repro.design.netlist import Design
            return Design(load())
        """}))
    assert set(graph.edges) == {("cli", "core")}


def test_repo_layer_graph_matches_golden(monkeypatch):
    monkeypatch.chdir(REPO)
    assert dump_layer_graph(["src/repro"]) == GOLDEN.read_text(
        encoding="utf-8")


def test_deep_analyzer_arch_wiring(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    pkg = tmp_path / "src" / "repro" / "nn"
    pkg.mkdir(parents=True)
    (pkg / "model.py").write_text(
        "from repro.design.netlist import Design\n", encoding="utf-8")
    config = LintConfig(layers=(("design", ()), ("nn", ("obs",))))
    analyzer = DeepAnalyzer(config=config, cache_path=None, arch=True)
    findings, stats = analyzer.analyze(["src/repro/nn/model.py"])
    assert [f.rule for f in findings] == ["ARCH001"]
    assert stats.arch is not None
    assert stats.arch["violations"] == 1
    assert stats.arch["layers_declared"] == 2


def test_arch_suppressible_inline(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    pkg = tmp_path / "src" / "repro" / "nn"
    pkg.mkdir(parents=True)
    (pkg / "model.py").write_text(
        "from repro.design.netlist import Design"
        "  # repro-lint: disable=ARCH001\n", encoding="utf-8")
    config = LintConfig(layers=(("design", ()), ("nn", ("obs",))))
    analyzer = DeepAnalyzer(config=config, cache_path=None, arch=True)
    findings, stats = analyzer.analyze(["src/repro/nn/model.py"])
    assert findings == []
    assert stats.suppressed == 1
    assert stats.arch is not None and stats.arch["violations"] == 0
