"""Shape contract parsing and SHAPE001/002 call-edge checking."""

import ast
import textwrap

import pytest

from repro.lint.shapes import (ContractError, ShapeSpec, parse_contract,
                               parse_contract_text)


class TestContractParsing:
    def test_params_ret_and_dtypes(self):
        contract = parse_contract_text("q=(n, h):f64 k=(m, h):f64 -> (n, m)")
        assert contract.params["q"] == ShapeSpec(("n", "h"), "f64")
        assert contract.params["k"] == ShapeSpec(("m", "h"), "f64")
        assert contract.ret == ShapeSpec(("n", "m"), None)

    def test_ints_wildcards_and_scalars(self):
        contract = parse_contract_text("x=(?, 8) bias=() -> (4,):f32")
        assert contract.params["x"] == ShapeSpec(("?", 8), None)
        assert contract.params["bias"] == ShapeSpec((), None)
        assert contract.ret == ShapeSpec((4,), "f32")

    def test_bad_dimension_raises(self):
        with pytest.raises(ContractError, match="bad dimension"):
            parse_contract_text("x=(N,)")

    def test_unknown_dtype_raises(self):
        with pytest.raises(ContractError, match="unknown dtype"):
            parse_contract_text("x=(n,):f99")

    def test_malformed_param_spec_raises(self):
        with pytest.raises(ContractError, match="bad parameter spec"):
            parse_contract_text("x=[n]")


class TestContractPlacement:
    def _contract(self, source):
        source = textwrap.dedent(source)
        tree = ast.parse(source)
        return parse_contract(tree.body[0], source.splitlines())

    def test_marker_above_def(self):
        contract = self._contract('''\
            # repro-shape: x=(n,) -> (n,)
            def f(x):
                return x
        ''')
        assert contract is not None and contract.line == 1

    def test_marker_below_docstring(self):
        contract = self._contract('''\
            def f(x):
                """Identity."""
                # repro-shape: x=(n,) -> (n,)
                return x
        ''')
        assert contract is not None and contract.params["x"].dims == ("n",)

    def test_marker_too_deep_is_ignored(self):
        contract = self._contract('''\
            def f(x):
                y = x + 1
                # repro-shape: x=(n,) -> (n,)
                return y
        ''')
        assert contract is None

    def test_prose_mention_does_not_poison(self):
        contract = self._contract('''\
            def f(x):
                """Docs mention the # repro-shape: marker syntax here."""
                return x
        ''')
        assert contract is None


class TestShapeCallEdges:
    def test_integer_dim_conflict_flags(self, deep_lint):
        findings, _ = deep_lint({
            "pkg/__init__.py": "",
            "pkg/kern.py": '''\
                def kernel(a):
                    # repro-shape: a=(n, 8):f64 -> (n,):f64
                    return a.sum(axis=1)


                def caller(feats):
                    # repro-shape: feats=(n, 4):f64
                    return kernel(feats)
            ''',
        })
        shape = [f for f in findings if f.rule == "SHAPE001"]
        assert len(shape) == 1
        assert "expected dim 8, got 4" in shape[0].message
        assert shape[0].severity == "error"

    def test_symbol_bound_twice_in_one_call_flags(self, deep_lint):
        findings, _ = deep_lint({
            "pkg/__init__.py": "",
            "pkg/kern.py": '''\
                def matmul(a, b):
                    # repro-shape: a=(n, k) b=(k, m) -> (n, m)
                    return a @ b


                def caller(x, y):
                    # repro-shape: x=(p, 3) y=(4, q)
                    return matmul(x, y)
            ''',
        })
        shape = [f for f in findings if f.rule == "SHAPE001"]
        assert len(shape) == 1
        assert "symbol 'k' bound to 3 and 4" in shape[0].message

    def test_dtype_mismatch_flags_shape002(self, deep_lint):
        findings, _ = deep_lint({
            "pkg/__init__.py": "",
            "pkg/kern.py": '''\
                def kernel(a):
                    # repro-shape: a=(n, 8):f64 -> (n,):f64
                    return a.sum(axis=1)


                def caller(feats):
                    # repro-shape: feats=(n, 8):f32
                    return kernel(feats)
            ''',
        })
        assert [f.rule for f in findings] == ["SHAPE002"]
        assert "f32" in findings[0].message

    def test_matching_call_is_clean(self, deep_lint):
        findings, _ = deep_lint({
            "pkg/__init__.py": "",
            "pkg/kern.py": '''\
                def kernel(a):
                    # repro-shape: a=(n, 8):f64 -> (n,):f64
                    return a.sum(axis=1)


                def caller(feats):
                    # repro-shape: feats=(m, 8):f64
                    return kernel(feats)
            ''',
        })
        assert findings == []

    def test_return_shape_propagates_to_next_edge(self, deep_lint):
        findings, _ = deep_lint({
            "pkg/__init__.py": "",
            "pkg/kern.py": '''\
                def first(a):
                    # repro-shape: a=(n, 8) -> (n, 4)
                    return a[:, :4]


                def second(b):
                    # repro-shape: b=(n, 5) -> (n,)
                    return b.sum(axis=1)


                def chain(feats):
                    # repro-shape: feats=(n, 8)
                    mid = first(feats)
                    return second(mid)
            ''',
        })
        shape = [f for f in findings if f.rule == "SHAPE001"]
        assert len(shape) == 1
        assert "'b'" in shape[0].message
        assert "expected dim 5, got 4" in shape[0].message

    def test_unannotated_callee_stays_silent(self, deep_lint):
        findings, _ = deep_lint({
            "pkg/__init__.py": "",
            "pkg/kern.py": '''\
                def mystery(a):
                    return a


                def caller(feats):
                    # repro-shape: feats=(n, 4)
                    return mystery(feats)
            ''',
        })
        assert findings == []
