"""Shared fixture helpers for the lint suite: write-and-lint snippets."""

import textwrap

import pytest

from repro.lint import LintRunner


@pytest.fixture
def lint_snippet(tmp_path):
    """Write a code snippet to a (possibly nested) path and lint it.

    Returns ``lint(code, name="snippet.py", select=None, ignore=None)``
    -> :class:`repro.lint.LintResult`.  ``name`` may contain directories
    (``"analysis/foo.py"``) so scoped rules see the right module segments.
    """

    def lint(code, name="snippet.py", select=None, ignore=None):
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(code), encoding="utf-8")
        runner = LintRunner(select=select, ignore=ignore)
        return runner.run([str(path)])

    return lint


def rule_names(result):
    """Sorted rule names of a result's active findings."""
    return sorted(finding.rule for finding in result.findings)
