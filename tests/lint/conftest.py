"""Shared fixture helpers for the lint suite: write-and-lint snippets."""

import textwrap

import pytest

from repro.lint import DeepAnalyzer, LintConfig, LintRunner


@pytest.fixture
def lint_snippet(tmp_path):
    """Write a code snippet to a (possibly nested) path and lint it.

    Returns ``lint(code, name="snippet.py", select=None, ignore=None)``
    -> :class:`repro.lint.LintResult`.  ``name`` may contain directories
    (``"analysis/foo.py"``) so scoped rules see the right module segments.
    """

    def lint(code, name="snippet.py", select=None, ignore=None):
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(code), encoding="utf-8")
        runner = LintRunner(select=select, ignore=ignore)
        return runner.run([str(path)])

    return lint


@pytest.fixture
def deep_lint(tmp_path, monkeypatch):
    """Write a package of snippets and run the deep tier over it.

    Returns ``deep(files, cache_path=None, config=None, **packs)`` ->
    ``(findings, stats)`` where ``files`` maps relative paths (package
    layout, e.g. ``"pkg/tasks.py"``) to source text.  Re-invoking with the
    same ``cache_path`` exercises the incremental cache; ``**packs``
    forwards pack toggles (``concurrency=True``, ``perf=True``, ...).
    """
    monkeypatch.chdir(tmp_path)

    def deep(files, cache_path=None, config=None, **packs):
        for name, source in files.items():
            path = tmp_path / name
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source), encoding="utf-8")
        analyzer = DeepAnalyzer(config=config or LintConfig(),
                                cache_path=cache_path, **packs)
        return analyzer.analyze(sorted(files))

    return deep


def rule_names(result):
    """Sorted rule names of a result's active findings."""
    return sorted(finding.rule for finding in result.findings)
