"""CFG construction goldens: stable dumps for representative shapes."""

import ast
import textwrap

from repro.lint import build_cfg, dump_cfg
from repro.lint.cfg import EDGE_EXCEPT, EDGE_NORMAL, function_cfgs

BRANCH = textwrap.dedent('''\
    def classify(x):
        if x < 0:
            sign = -1
        else:
            sign = 1
        return sign
''')

BRANCH_GOLDEN = """\
cfg classify entry=B0 exit=B1
B0 (entry): If@2 -> B3, B4
B1 (exit): - -> -
B2: Return@6 -> B1
B3: Assign@3 -> B2
B4: Assign@5 -> B2"""

LOOP_TRY = textwrap.dedent('''\
    def drain(items):
        total = 0
        for item in items:
            try:
                total += item.cost()
            except AttributeError:
                continue
            if total > 100:
                break
        return total
''')

LOOP_TRY_GOLDEN = """\
cfg drain entry=B0 exit=B1
B0 (entry): Assign@2 -> B2
B1 (exit): - -> -
B2: For@3 -> B4, B3
B3: Return@10 -> B1
B4: - -> B5
B5: AugAssign@5 -> B7!, B6
B6: If@8 -> B9, B8
B7: Continue@7 -> B2
B8: - -> B2
B9: Break@9 -> B3"""


def _cfg(source):
    tree = ast.parse(source)
    return build_cfg(tree.body[0])


def test_branch_golden():
    assert dump_cfg(_cfg(BRANCH)) == BRANCH_GOLDEN


def test_loop_try_golden():
    assert dump_cfg(_cfg(LOOP_TRY)) == LOOP_TRY_GOLDEN


def test_dump_is_deterministic():
    assert dump_cfg(_cfg(LOOP_TRY)) == dump_cfg(_cfg(LOOP_TRY))


def test_try_body_has_exception_edge_into_handler():
    cfg = _cfg(LOOP_TRY)
    kinds = {kind for block in cfg.blocks for _, kind in block.succs}
    assert EDGE_EXCEPT in kinds and EDGE_NORMAL in kinds


def test_every_reachable_block_reaches_exit_or_loops():
    cfg = _cfg(LOOP_TRY)
    reachable = cfg.reachable()
    assert cfg.entry in reachable and cfg.exit in reachable


def test_function_cfgs_covers_methods():
    tree = ast.parse(textwrap.dedent('''\
        def top(): pass

        class Box:
            def get(self): return 1
    '''))
    names = [name for name, _ in function_cfgs(tree)]
    assert names == ["top", "Box.get"]
