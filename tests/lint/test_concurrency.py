"""The CONC pack: lock-order, guarded-by, thread-escape, and the graph.

Every rule gets a positive fixture (the finding fires on the exact line)
and a negative twin (the disciplined version stays clean), because the
concurrency tier's value is precision: a lint that cries wolf on correct
locking gets suppressed wholesale.  The lock graph itself is covered by a
synthetic golden here and a real serve-subsystem golden in
``test_serve_lock_graph_golden``.
"""

import textwrap
from pathlib import Path

import pytest

from repro.lint import (DeepAnalyzer, LintConfig, build_lock_graph,
                        dump_lock_graph)

REPO = Path(__file__).resolve().parents[2]
GOLDEN = Path(__file__).parent / "goldens" / "serve_lock_graph.txt"


@pytest.fixture
def conc_lint(tmp_path, monkeypatch):
    """Write a package of snippets, run deep+concurrency, return findings.

    ``conc(files)`` -> ``(findings, stats)``; files map relative paths to
    source text.  The summary cache is disabled so each call is hermetic.
    """
    monkeypatch.chdir(tmp_path)

    def conc(files):
        for name, source in files.items():
            path = tmp_path / name
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source), encoding="utf-8")
        analyzer = DeepAnalyzer(config=LintConfig(), cache_path=None,
                                concurrency=True)
        return analyzer.analyze(sorted(files))

    return conc


@pytest.fixture
def graph_of(tmp_path, monkeypatch):
    """Write snippets and return their standalone lock graph."""
    monkeypatch.chdir(tmp_path)

    def build(files):
        for name, source in files.items():
            path = tmp_path / name
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source), encoding="utf-8")
        return build_lock_graph(sorted(files))

    return build


def _rules(findings):
    return sorted(f.rule for f in findings)


# ----------------------------------------------------------------------
# LOCK001: lock-order cycles
# ----------------------------------------------------------------------
INVERTED = """\
    import threading


    class Store:
        def __init__(self):
            self._a = threading.Lock()
            self._b = threading.Lock()

        def forward(self):
            with self._a:
                with self._b:
                    pass

        def backward(self):
            with self._b:
                with self._a:
                    pass
"""


def test_lock001_reports_inverted_nesting(conc_lint):
    findings, stats = conc_lint({"pkg/store.py": INVERTED})
    lock001 = [f for f in findings if f.rule == "LOCK001"]
    # Both edges of the 2-cycle are reported, each at its own with-site.
    assert len(lock001) == 2
    assert all(f.severity == "error" for f in lock001)
    assert all("Store._a" in f.message and "Store._b" in f.message
               for f in lock001)
    assert stats.concurrency["lock_edges"] == 2


def test_lock001_clean_on_consistent_order(conc_lint):
    consistent = INVERTED.replace(
        "with self._b:\n                with self._a:",
        "with self._a:\n                with self._b:")
    findings, stats = conc_lint({"pkg/store.py": consistent})
    assert _rules(findings) == []
    assert stats.concurrency["lock_edges"] == 1


def test_lock001_cycle_through_transitive_call(conc_lint):
    """The closing edge may live in a callee two hops away."""
    files = {
        "pkg/a.py": """\
            import threading

            from . import b


            class Alpha:
                def __init__(self):
                    self._lock = threading.Lock()

                def poke(self):
                    with self._lock:
                        b.deposit()

                def grab(self):
                    with self._lock:
                        pass
        """,
        "pkg/b.py": """\
            import threading

            from . import a

            _LOCK = threading.Lock()
            ALPHA = a.Alpha()


            def deposit():
                with _LOCK:
                    pass


            def sweep():
                with _LOCK:
                    _helper()


            def _helper():
                ALPHA.grab()
        """,
        "pkg/__init__.py": "",
    }
    findings, _ = conc_lint(files)
    lock001 = [f for f in findings if f.rule == "LOCK001"]
    assert lock001, "cross-module cycle must be found"
    assert any("pkg.b._LOCK" in f.message for f in lock001)


# ----------------------------------------------------------------------
# LOCK002: callbacks under a lock
# ----------------------------------------------------------------------
CALLBACK = """\
    import threading


    class Notifier:
        def __init__(self, on_event):
            self.on_event = on_event
            self._lock = threading.Lock()

        def fire(self):
            with self._lock:
                self.on_event()

        def run(self, fn):
            with self._lock:
                fn()
"""


def test_lock002_flags_injected_attribute_and_parameter(conc_lint):
    findings, _ = conc_lint({"pkg/notify.py": CALLBACK})
    lock002 = [f for f in findings if f.rule == "LOCK002"]
    assert len(lock002) == 2
    messages = " | ".join(f.message for f in lock002)
    assert "injected attribute 'self.on_event'" in messages
    assert "parameter 'fn'" in messages
    assert all(f.severity == "warning" for f in lock002)


def test_lock002_clean_when_called_outside_lock(conc_lint):
    clean = """\
        import threading


        class Notifier:
            def __init__(self, on_event):
                self.on_event = on_event
                self._lock = threading.Lock()

            def fire(self):
                with self._lock:
                    pending = True
                if pending:
                    self.on_event()
    """
    findings, _ = conc_lint({"pkg/notify.py": clean})
    assert _rules(findings) == []


def test_lock002_suppressible_inline(conc_lint):
    suppressed = CALLBACK.replace(
        "self.on_event()",
        "self.on_event()  # repro-lint: disable=LOCK002 non-blocking")
    findings, stats = conc_lint({"pkg/notify.py": suppressed})
    assert len([f for f in findings if f.rule == "LOCK002"]) == 1
    assert stats.suppressed == 1


# ----------------------------------------------------------------------
# GUARD001: declared and inferred guards
# ----------------------------------------------------------------------
GUARDED = """\
    import threading


    class Box:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = {}  # repro-guarded-by: _lock

        def put(self, key, value):
            with self._lock:
                self._items[key] = value

        def peek(self, key):
            return self._items.get(key)
"""


def test_guard001_flags_unlocked_access_to_annotated_attr(conc_lint):
    findings, _ = conc_lint({"pkg/box.py": GUARDED})
    guard = [f for f in findings if f.rule == "GUARD001"]
    assert len(guard) == 1
    assert guard[0].severity == "error"
    assert "Box._items" in guard[0].message
    assert "Box.peek" in guard[0].message


def test_guard001_clean_when_every_access_holds_the_lock(conc_lint):
    clean = GUARDED.replace(
        "        return self._items.get(key)",
        "        with self._lock:\n"
        "            return self._items.get(key)")
    findings, _ = conc_lint({"pkg/box.py": clean})
    assert _rules(findings) == []


def test_guard001_rejects_annotation_naming_missing_lock(conc_lint):
    bad = GUARDED.replace("repro-guarded-by: _lock",
                          "repro-guarded-by: _mutex")
    findings, _ = conc_lint({"pkg/box.py": bad})
    assert any(f.rule == "GUARD001" and "no such lock" in f.message
               for f in findings)


def test_guard001_dotted_annotation_documents_external_guard(conc_lint):
    """``Owner._lock`` marks an externally-serialized field: unchecked."""
    external = """\
        import threading


        class Inner:
            def __init__(self):
                self.count = 0  # repro-guarded-by: Owner._lock

            def bump(self):
                self.count += 1


        class Owner:
            def __init__(self):
                self._lock = threading.Lock()
                self.inner = Inner()

            def bump(self):
                with self._lock:
                    self.inner.bump()
    """
    findings, _ = conc_lint({"pkg/ext.py": external})
    assert _rules(findings) == []


def test_guard001_locked_suffix_requires_caller_lock(conc_lint):
    locked = """\
        import threading


        class Pool:
            def __init__(self):
                self._lock = threading.Lock()
                self._slots = []  # repro-guarded-by: _lock

            def _grow_locked(self):
                self._slots.append(object())

            def grow(self):
                self._grow_locked()

            def grow_safely(self):
                with self._lock:
                    self._grow_locked()
    """
    findings, _ = conc_lint({"pkg/pool.py": locked})
    guard = [f for f in findings if f.rule == "GUARD001"]
    assert len(guard) == 1
    assert "Pool.grow" in guard[0].message
    assert "_locked suffix" in guard[0].message


def test_guard001_infers_guard_from_majority_usage(conc_lint):
    inferred = """\
        import threading


        class Tally:
            def __init__(self):
                self._lock = threading.Lock()
                self.rows = []

            def add(self, row):
                with self._lock:
                    self.rows.append(row)

            def drop(self):
                with self._lock:
                    self.rows.clear()

            def skim(self):
                return self.rows[-1]
    """
    findings, _ = conc_lint({"pkg/tally.py": inferred})
    guard = [f for f in findings if f.rule == "GUARD001"]
    assert len(guard) == 1
    assert guard[0].severity == "warning"
    assert "Tally.skim" in guard[0].message
    assert "repro-guarded-by" in guard[0].message


# ----------------------------------------------------------------------
# ESCAPE001: thread escape
# ----------------------------------------------------------------------
ESCAPE = """\
    import threading

    RESULTS = []


    def worker():
        RESULTS.append(1)


    def launch():
        thread = threading.Thread(target=worker)
        thread.start()
        return thread
"""


def test_escape001_flags_unlocked_global_mutation(conc_lint):
    findings, _ = conc_lint({"pkg/jobs.py": ESCAPE})
    escape = [f for f in findings if f.rule == "ESCAPE001"]
    assert len(escape) == 1
    assert "RESULTS.append()" in escape[0].message
    assert "thread spawn" in escape[0].message


def test_escape001_clean_under_module_lock(conc_lint):
    clean = ESCAPE.replace(
        "RESULTS = []",
        "RESULTS = []\n_RESULTS_LOCK = threading.Lock()").replace(
        "    RESULTS.append(1)",
        "    with _RESULTS_LOCK:\n        RESULTS.append(1)")
    findings, _ = conc_lint({"pkg/jobs.py": clean})
    assert _rules(findings) == []


def test_escape001_reaches_through_transitive_calls(conc_lint):
    deep = """\
        import threading

        STATE = {}


        def _inner():
            STATE["k"] = 1


        def _outer():
            _inner()


        def launch(pool):
            pool.submit(_outer)
    """
    findings, _ = conc_lint({"pkg/deep.py": deep})
    escape = [f for f in findings if f.rule == "ESCAPE001"]
    assert len(escape) == 1
    assert "submit spawn" in escape[0].message


def test_escape001_parallel_map_and_global_rebind(conc_lint):
    rebind = """\
        from repro.parallel import parallel_map

        TOTAL = 0


        def bump(item):
            global TOTAL
            TOTAL += item
            return item


        def run(items):
            return parallel_map(bump, items)
    """
    findings, _ = conc_lint({"pkg/rebind.py": rebind})
    escape = [f for f in findings if f.rule == "ESCAPE001"]
    assert len(escape) == 1
    assert "TOTAL" in escape[0].message
    assert "parallel_map spawn" in escape[0].message


def test_escape001_ignores_local_shadows(conc_lint):
    shadowed = """\
        import threading

        RESULTS = []


        def worker():
            RESULTS = []
            RESULTS.append(1)
            return RESULTS


        def launch():
            threading.Thread(target=worker).start()
    """
    findings, _ = conc_lint({"pkg/shadow.py": shadowed})
    assert _rules(findings) == []


# ----------------------------------------------------------------------
# The lock graph
# ----------------------------------------------------------------------
def test_condition_aliases_to_its_underlying_lock(graph_of):
    graph = graph_of({"pkg/cond.py": """\
        import threading


        class Queue:
            def __init__(self):
                self._lock = threading.Lock()
                self._not_empty = threading.Condition(self._lock)

            def wake(self):
                with self._not_empty:
                    pass
    """})
    # The Condition is not a distinct node: acquiring it is acquiring
    # the underlying lock, exactly as at runtime.
    assert "Queue._lock" in graph.locks
    assert "Queue._not_empty" not in graph.locks


def test_named_lock_counts_as_lock_constructor(graph_of):
    graph = graph_of({"pkg/named.py": """\
        from repro.obs import named_lock


        class Cache:
            def __init__(self):
                self._lock = named_lock("Cache._lock")
    """})
    assert graph.locks["Cache._lock"] == ("Lock", "pkg.named")


def test_graph_dump_golden_is_stable(graph_of, tmp_path):
    files = {"pkg/pair.py": """\
        import threading

        _REGISTRY = threading.Lock()


        class Worker:
            def __init__(self):
                self._lock = threading.RLock()

            def enroll(self):
                with self._lock:
                    with _REGISTRY:
                        pass
    """}
    graph = graph_of(files)
    assert graph.dump() == (
        "lock-graph: 2 lock(s), 1 edge(s)\n"
        "lock Worker._lock (RLock) defined-in pkg.pair\n"
        "lock pkg.pair._REGISTRY (Lock) defined-in pkg.pair\n"
        "edge Worker._lock -> pkg.pair._REGISTRY via pkg.pair:Worker.enroll")
    # Dumping twice (and re-building) is byte-identical.
    assert graph.dump() == graph_of(files).dump()


def test_serve_lock_graph_golden():
    """The real serving stack's lock graph, pinned.

    No line numbers appear in the dump, so this golden only moves when a
    lock is added/removed/renamed or a nesting edge changes — exactly the
    diffs a reviewer must see.  Regenerate with::

        PYTHONPATH=src python -c "from repro.lint import dump_lock_graph; \\
            print(dump_lock_graph([...files below...]))"
    """
    files = [str(REPO / "src" / "repro" / rel) for rel in (
        "serve/admission.py", "serve/engine.py", "serve/lifecycle.py",
        "obs/metrics.py", "obs/lockwatch.py")]
    expected = GOLDEN.read_text(encoding="utf-8").rstrip("\n")
    assert dump_lock_graph(files) == expected


def test_repo_lock_graph_is_acyclic():
    """Global invariant: no lock-order cycles anywhere in src/repro."""
    graph = build_lock_graph([str(REPO / "src" / "repro")])
    for outer, inner in graph.edges:
        assert graph.cycle_path(inner, outer) is None, (
            f"lock-order cycle through {outer} -> {inner}")
    assert len(graph.locks) >= 9


# ----------------------------------------------------------------------
# Wiring: stats, report, CLI surface
# ----------------------------------------------------------------------
def test_stats_carry_concurrency_block(conc_lint):
    findings, stats = conc_lint({"pkg/store.py": INVERTED})
    assert stats.concurrency == {
        "modules": 1, "findings": 2, "locks": 2, "lock_edges": 2,
        "models_reused": 0, "models_extracted": 1}
    assert "CONC" in stats.as_dict()["packs"]


def test_plain_deep_run_has_no_concurrency_block(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "mod.py").write_text("x = 1\n", encoding="utf-8")
    analyzer = DeepAnalyzer(config=LintConfig(), cache_path=None)
    _, stats = analyzer.analyze(["mod.py"])
    assert stats.concurrency is None
    assert "CONC" not in stats.as_dict()["packs"]
