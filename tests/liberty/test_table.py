"""NLDM lookup tables: interpolation exactness and clamping."""

import numpy as np
import pytest

from repro.liberty import TimingTable


@pytest.fixture
def table():
    slew = [10e-12, 20e-12, 40e-12]
    load = [1e-15, 2e-15, 4e-15]
    values = np.array([[1.0, 2.0, 4.0],
                       [2.0, 3.0, 5.0],
                       [4.0, 5.0, 7.0]]) * 1e-12
    return TimingTable(slew, load, values)


class TestLookup:
    def test_exact_grid_points(self, table):
        assert table.lookup(10e-12, 1e-15) == pytest.approx(1e-12)
        assert table.lookup(40e-12, 4e-15) == pytest.approx(7e-12)

    def test_midpoint_bilinear(self, table):
        # Halfway in both axes within the first cell.
        value = table.lookup(15e-12, 1.5e-15)
        assert value == pytest.approx((1 + 2 + 2 + 3) / 4 * 1e-12)

    def test_linear_along_one_axis(self, table):
        value = table.lookup(10e-12, 3e-15)
        assert value == pytest.approx(3e-12)  # halfway between 2 and 4

    def test_clamps_below(self, table):
        assert table.lookup(1e-12, 0.1e-15) == pytest.approx(1e-12)

    def test_clamps_above(self, table):
        assert table.lookup(1e-9, 1e-12) == pytest.approx(7e-12)

    def test_monotone_inputs_monotone_outputs(self, table):
        """For this monotone table, lookup must preserve monotonicity."""
        values = [table.lookup(s, 2e-15)
                  for s in np.linspace(5e-12, 50e-12, 20)]
        assert all(a <= b + 1e-18 for a, b in zip(values, values[1:]))


class TestValidation:
    def test_non_increasing_axis_rejected(self):
        with pytest.raises(ValueError):
            TimingTable([2e-12, 1e-12], [1e-15, 2e-15], np.zeros((2, 2)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TimingTable([1e-12, 2e-12], [1e-15, 2e-15], np.zeros((3, 2)))

    def test_2d_axis_rejected(self):
        with pytest.raises(ValueError):
            TimingTable(np.zeros((2, 2)), [1e-15, 2e-15], np.zeros((2, 2)))


from hypothesis import given, settings
from hypothesis import strategies as st


class TestInterpolationProperties:
    @given(st.floats(min_value=1e-12, max_value=1e-9),
           st.floats(min_value=0.5e-15, max_value=100e-15))
    @settings(max_examples=60, deadline=None)
    def test_lookup_within_table_range(self, slew, load):
        """Bilinear interpolation with clamping never extrapolates beyond
        the table's value range."""
        import numpy as np

        rng = np.random.default_rng(0)
        slew_axis = np.sort(rng.uniform(1e-12, 1e-10, size=5))
        load_axis = np.sort(rng.uniform(1e-15, 50e-15, size=5))
        values = rng.uniform(1e-12, 9e-12, size=(5, 5))
        table = TimingTable(slew_axis, load_axis, values)
        out = table.lookup(slew, load)
        assert values.min() - 1e-18 <= out <= values.max() + 1e-18

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=30, deadline=None)
    def test_exact_at_grid_points(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        slew_axis = np.sort(rng.uniform(1e-12, 1e-10, size=4))
        load_axis = np.sort(rng.uniform(1e-15, 50e-15, size=4))
        # Ensure strictly increasing (resample duplicates away).
        slew_axis += np.arange(4) * 1e-15
        load_axis += np.arange(4) * 1e-18
        values = rng.uniform(1e-12, 9e-12, size=(4, 4))
        table = TimingTable(slew_axis, load_axis, values)
        for i in range(4):
            for j in range(4):
                out = table.lookup(float(slew_axis[i]), float(load_axis[j]))
                assert out == pytest.approx(values[i, j], rel=1e-12)
