"""Liberty (.lib) file round trips and error handling."""

import numpy as np
import pytest

from repro.liberty import (LibertyError, load_liberty, make_default_library,
                           parse_liberty, save_liberty, write_liberty)


@pytest.fixture(scope="module")
def liberty_text(library):
    return write_liberty(library)


@pytest.fixture(scope="module")
def library():
    return make_default_library()


@pytest.fixture(scope="module")
def parsed(liberty_text):
    return parse_liberty(liberty_text)


class TestRoundTrip:
    def test_cell_inventory_preserved(self, library, parsed):
        assert len(parsed) == len(library)
        assert {c.name for c in parsed} == {c.name for c in library}

    def test_library_name(self, parsed):
        assert parsed.name == "repro16"

    def test_electrical_attributes(self, library, parsed):
        for cell in library:
            clone = parsed.cell(cell.name)
            assert clone.function == cell.function
            assert clone.drive_strength == cell.drive_strength
            assert clone.num_inputs == cell.num_inputs
            assert clone.input_cap == pytest.approx(cell.input_cap, rel=1e-5)
            assert clone.drive_resistance == pytest.approx(
                cell.drive_resistance, rel=1e-5)

    def test_sequential_flag(self, parsed):
        assert parsed.cell("DFF_X1").is_sequential
        assert not parsed.cell("INV_X1").is_sequential

    def test_table_lookups_agree(self, library, parsed):
        """Interpolated delay/slew identical across the file boundary."""
        points = [(8e-12, 3e-15), (25e-12, 10e-15), (150e-12, 50e-15)]
        for name in ("INV_X1", "NAND2_X4", "AOI21_X2", "DFF_X2"):
            original = library.cell(name)
            clone = parsed.cell(name)
            for pin in original.arcs:
                for slew, load in points:
                    d0, s0 = original.delay_and_slew(slew, load, pin)
                    d1, s1 = clone.delay_and_slew(slew, load, pin)
                    assert d1 == pytest.approx(d0, rel=1e-4)
                    assert s1 == pytest.approx(s0, rel=1e-4)

    def test_file_roundtrip(self, library, tmp_path):
        path = str(tmp_path / "cells.lib")
        save_liberty(path, library)
        loaded = load_liberty(path)
        assert len(loaded) == len(library)

    def test_arcs_per_pin(self, library, parsed):
        aoi = parsed.cell("AOI21_X1")
        assert set(aoi.arcs) == {"A", "B", "C"}


class TestSyntax:
    def test_output_contains_standard_constructs(self, liberty_text):
        assert 'time_unit : "1ns";' in liberty_text
        assert "lu_table_template (" in liberty_text
        assert "cell (INV_X1)" in liberty_text
        assert 'related_pin : "A";' in liberty_text
        assert "cell_rise (" in liberty_text
        assert "rise_transition (" in liberty_text

    def test_whitespace_insensitive(self, liberty_text):
        squeezed = "\n".join(line.strip() for line in liberty_text.splitlines())
        parsed = parse_liberty(squeezed)
        assert len(parsed) == 38

    def test_comments_stripped(self, liberty_text):
        assert parse_liberty("/* header */\n" + liberty_text)


class TestErrors:
    def test_not_a_library(self):
        with pytest.raises(LibertyError):
            parse_liberty("cell (X) { }")

    def test_unterminated_group(self):
        with pytest.raises(LibertyError, match="unterminated"):
            parse_liberty("library (l) { cell (c) { ")

    def test_empty_library(self):
        with pytest.raises(LibertyError, match="no cells"):
            parse_liberty("library (l) { }")

    def test_unknown_template(self, liberty_text):
        broken = liberty_text.replace("lu_table_template (tmpl_7x7)",
                                      "lu_table_template (other)")
        with pytest.raises(LibertyError, match="unknown table template"):
            parse_liberty(broken)

    def test_unknown_function_name(self, liberty_text):
        broken = liberty_text.replace("cell (INV_X1)", "cell (MYSTERY_X1)")
        with pytest.raises(LibertyError, match="infer"):
            parse_liberty(broken)

    def test_missing_attribute(self):
        with pytest.raises(LibertyError, match="missing"):
            parse_liberty(
                "library (l) { cell (INV_X1) { drive_strength : 1; } }")
