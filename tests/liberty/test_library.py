"""Cells, the synthetic library and effective capacitance."""

import numpy as np
import pytest

from repro.liberty import (FUNCTION_IDS, Cell, Library, effective_capacitance,
                           make_default_library)
from repro.rcnet import chain_net, star_net


class TestDefaultLibrary:
    def test_contains_expected_families(self, library):
        assert "INV_X1" in library
        assert "NAND2_X4" in library
        assert "DFF_X1" in library
        assert "INV_X16" not in library

    def test_dff_limited_strengths(self, library):
        dffs = library.cells_with_function("DFF")
        assert {c.drive_strength for c in dffs} == {1, 2}

    def test_stronger_cells_drive_harder(self, library):
        x1 = library.cell("INV_X1")
        x8 = library.cell("INV_X8")
        assert x8.drive_resistance < x1.drive_resistance
        assert x8.input_cap > x1.input_cap

    def test_stronger_cell_is_faster_at_load(self, library):
        delay_x1, _ = library.cell("INV_X1").delay_and_slew(20e-12, 20e-15)
        delay_x8, _ = library.cell("INV_X8").delay_and_slew(20e-12, 20e-15)
        assert delay_x8 < delay_x1

    def test_delay_increases_with_load(self, library):
        cell = library.cell("BUF_X2")
        d_light, s_light = cell.delay_and_slew(20e-12, 2e-15)
        d_heavy, s_heavy = cell.delay_and_slew(20e-12, 40e-15)
        assert d_heavy > d_light
        assert s_heavy > s_light

    def test_delay_increases_with_input_slew(self, library):
        cell = library.cell("NOR2_X1")
        d_fast, _ = cell.delay_and_slew(5e-12, 8e-15)
        d_slow, _ = cell.delay_and_slew(200e-12, 8e-15)
        assert d_slow > d_fast

    def test_multi_input_cells_have_arc_per_pin(self, library):
        aoi = library.cell("AOI21_X1")
        assert set(aoi.arcs) == {"A", "B", "C"}
        nand = library.cell("NAND2_X2")
        assert set(nand.arcs) == {"A", "B"}

    def test_sequential_partition(self, library):
        assert all(c.function == "DFF" for c in library.sequential)
        assert all(c.function != "DFF" for c in library.combinational)
        assert len(library.sequential) + len(library.combinational) == len(library)

    def test_function_ids_stable(self, library):
        for cell in library:
            assert cell.function_id == FUNCTION_IDS[cell.function]

    def test_unknown_cell_raises(self, library):
        with pytest.raises(KeyError):
            library.cell("NONSENSE_X1")

    def test_unknown_arc_raises(self, library):
        with pytest.raises(KeyError):
            library.cell("INV_X1").arc("Z")


class TestCellValidation:
    def test_unknown_function(self):
        with pytest.raises(ValueError):
            Cell("X", "MUX4", 1, 1, 1e-15, 100.0)

    def test_bad_strength(self, library):
        with pytest.raises(ValueError):
            Cell("X", "INV", 0, 1, 1e-15, 100.0)

    def test_duplicate_cells_rejected(self, library):
        cell = library.cell("INV_X1")
        with pytest.raises(ValueError):
            Library("dup", [cell, cell])


class TestEffectiveCapacitance:
    def test_upper_bounded_by_total_cap(self, tree_net):
        ceff = effective_capacitance(tree_net, drive_resistance=100.0)
        total = tree_net.total_cap + tree_net.total_coupling_cap
        assert 0.0 < ceff <= total

    def test_strong_driver_sees_nearly_total(self, small_chain):
        """R_drive >> R_wire: no shielding, ceff -> total cap."""
        ceff = effective_capacitance(small_chain, drive_resistance=1e6)
        assert ceff == pytest.approx(small_chain.total_cap, rel=1e-3)

    def test_weak_driver_sees_shielded_load(self, small_chain):
        strong = effective_capacitance(small_chain, drive_resistance=1e5)
        weak = effective_capacitance(small_chain, drive_resistance=10.0)
        assert weak < strong

    def test_monotone_in_drive_resistance(self, nontree_net):
        values = [effective_capacitance(nontree_net, r)
                  for r in (10.0, 100.0, 1000.0, 10000.0)]
        assert all(a <= b + 1e-21 for a, b in zip(values, values[1:]))

    def test_sink_loads_counted(self, small_chain):
        base = effective_capacitance(small_chain, 100.0)
        loaded = effective_capacitance(small_chain, 100.0,
                                       sink_loads=np.array([10e-15]))
        assert loaded > base

    def test_invalid_resistance(self, small_chain):
        with pytest.raises(ValueError):
            effective_capacitance(small_chain, 0.0)
