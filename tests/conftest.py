"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.liberty import make_default_library
from repro.rcnet import chain_net, random_nontree_net, random_tree_net


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def library():
    return make_default_library()


@pytest.fixture
def small_chain():
    """10-node uniform RC ladder with known closed-form Elmore delays."""
    return chain_net(10, resistance=100.0, cap=2e-15)


@pytest.fixture
def tree_net(rng):
    return random_tree_net(rng, n_nodes=20, n_sinks=4, name="t")


@pytest.fixture
def nontree_net(rng):
    return random_nontree_net(rng, n_nodes=20, n_sinks=4, n_loops=3, name="nt")
