"""The process-pool map: ordering, determinism, crash containment."""

import numpy as np
import pytest

from repro.obs import get_metrics
from repro.parallel import (MapFailure, parallel_map, resolve_jobs,
                            spawn_seeds, worker_context)
from repro.robustness import WorkerError
from repro.robustness.faultinject import crashing_task


def _square(x):
    return x * x


def _draw(seed_seq):
    return float(np.random.default_rng(seed_seq).random())


def _boom(x):
    raise RuntimeError(f"task {x} failed")


class TestInlinePath:
    def test_single_job_is_plain_loop(self):
        assert parallel_map(_square, [1, 2, 3], jobs=1) == [1, 4, 9]

    def test_empty_items(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_single_item_stays_inline(self):
        # One task never justifies a pool, whatever jobs says.
        assert parallel_map(_square, [5], jobs=8) == [25]

    def test_inline_runs_initializer(self):
        calls = []
        parallel_map(_square, [1, 2], jobs=1,
                     initializer=calls.append, initargs=("ready",))
        assert calls == ["ready"]

    def test_fn_exception_propagates(self):
        with pytest.raises(RuntimeError, match="task 3"):
            parallel_map(_boom, [3], jobs=1)


class TestPoolPath:
    def test_results_in_task_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=4) == [x * x for x in items]

    def test_matches_serial(self):
        items = list(range(8))
        assert parallel_map(_square, items, jobs=3) == \
            parallel_map(_square, items, jobs=1)

    def test_fn_exception_propagates_from_worker(self):
        # Results collect in index order, so the first failing index wins.
        with pytest.raises(RuntimeError, match="task 0"):
            parallel_map(_boom, [0, 1], jobs=2)

    def test_spawn_context_smoke(self):
        # Everything shipped must survive the spawn start method too.
        assert parallel_map(_square, [2, 3, 4], jobs=2,
                            context="spawn") == [4, 9, 16]


class TestSeeding:
    def test_spawn_seeds_reproducible(self):
        a = [_draw(s) for s in spawn_seeds(7, 4)]
        b = [_draw(s) for s in spawn_seeds(7, 4)]
        assert a == b

    def test_children_independent_of_count(self):
        # Child i is a function of (seed, i) only — growing the batch must
        # not reshuffle earlier streams.
        few = [_draw(s) for s in spawn_seeds(7, 2)]
        many = [_draw(s) for s in spawn_seeds(7, 6)]
        assert many[:2] == few

    def test_different_seeds_differ(self):
        assert _draw(spawn_seeds(1, 1)[0]) != _draw(spawn_seeds(2, 1)[0])

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)


class TestResolveJobs:
    def test_explicit_value(self):
        import os
        # Explicit requests are honoured up to the machine's core count.
        assert resolve_jobs(2) == min(2, os.cpu_count() or 1)

    def test_one_is_always_one(self):
        assert resolve_jobs(1) == 1

    def test_none_and_zero_mean_all_cores(self):
        import os
        cores = os.cpu_count() or 1
        assert resolve_jobs(None) == cores
        assert resolve_jobs(0) == cores

    def test_clamped_to_cores(self):
        import os
        assert resolve_jobs(10_000) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestWorkerContext:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_CONTEXT", "spawn")
        assert worker_context().get_start_method() == "spawn"

    def test_explicit_name_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_CONTEXT", "spawn")
        assert worker_context("fork").get_start_method() == "fork"


class TestCrashContainment:
    def test_crash_recovers_via_serial_retry(self):
        """Dead workers degrade to an in-parent retry, not an abort."""
        failures = []
        crashes_before = get_metrics().counter(
            "parallel.worker_crashes").value
        result = parallel_map(crashing_task, [10, 11, 12], jobs=2,
                              failures=failures)
        # crashing_task returns its item when run in the parent, so the
        # retry tier completes the map with the right values in order.
        assert result == [10, 11, 12]
        assert failures and all(f.recovered for f in failures)
        assert all(isinstance(f, MapFailure) for f in failures)
        assert get_metrics().counter(
            "parallel.worker_crashes").value > crashes_before

    def test_crash_raises_typed_error_without_retry(self):
        failures = []
        with pytest.raises(WorkerError) as excinfo:
            parallel_map(crashing_task, [1, 2], jobs=2,
                         retry_crashed=False, failures=failures)
        assert excinfo.value.task_index is not None
        assert failures and not failures[0].recovered

    def test_crashing_task_is_inline_safe(self):
        # In the parent process the fault helper is a no-op passthrough.
        assert crashing_task(42) == 42
