"""Jobs-invariance: every parallel entry point must match its serial run.

The ISSUE-level contract of the parallel layer is that ``jobs`` is purely a
throughput knob: golden labels, evaluation metrics and STA arrivals are
bitwise identical whatever the worker count, because every per-net random
stream is derived from the workload seed (``SeedSequence.spawn``), never
from worker identity or scheduling order.
"""

import numpy as np
import pytest

from repro.core import GNNTransConfig, WireTimingEstimator
from repro.data import generate_dataset
from repro.design import (DesignSpec, ElmoreWireModel, STAEngine,
                          generate_design)
from repro.liberty import make_default_library

DATASET_KW = dict(train_names=["PCI_BRIDGE"], test_names=["WB_DMA"],
                  scale=2000, nets_per_design=6, seed=11)

TINY = GNNTransConfig(l1=1, l2=1, hidden=8, num_heads=2, head_hidden=(16,),
                      epochs=4, learning_rate=5e-3)


def _assert_samples_equal(lhs, rhs):
    assert len(lhs) == len(rhs)
    for a, b in zip(lhs, rhs):
        assert a.name == b.name
        assert a.design == b.design
        assert a.is_tree == b.is_tree
        np.testing.assert_array_equal(a.node_features, b.node_features)
        np.testing.assert_array_equal(a.adjacency, b.adjacency)
        assert len(a.paths) == len(b.paths)
        for pa, pb in zip(a.paths, b.paths):
            assert pa.sink == pb.sink
            assert pa.node_indices == pb.node_indices
            np.testing.assert_array_equal(pa.features, pb.features)
            assert pa.label_slew == pb.label_slew
            assert pa.label_delay == pb.label_delay
            assert pa.input_slew_ps == pb.input_slew_ps


class TestDatasetJobsInvariance:
    @pytest.fixture(scope="class")
    def serial(self):
        return generate_dataset(n_jobs=1, **DATASET_KW)

    @pytest.fixture(scope="class")
    def pooled(self):
        return generate_dataset(n_jobs=2, **DATASET_KW)

    def test_labels_bitwise_identical(self, serial, pooled):
        _assert_samples_equal(serial.train, pooled.train)
        _assert_samples_equal(serial.test, pooled.test)

    def test_skip_records_identical(self, serial, pooled):
        assert serial.skipped == pooled.skipped

    def test_scaler_statistics_identical(self, serial, pooled):
        for key, value in serial.scaler.state().items():
            other = pooled.scaler.state()[key]
            np.testing.assert_array_equal(np.asarray(value),
                                          np.asarray(other))


class TestEvaluateJobsInvariance:
    def test_metrics_identical(self):
        dataset = generate_dataset(n_jobs=1, **DATASET_KW)
        estimator = WireTimingEstimator(TINY)
        estimator.fit(dataset.train, epochs=TINY.epochs, verbose=False)
        serial = estimator.evaluate(dataset.test, jobs=1)
        pooled = estimator.evaluate(dataset.test, jobs=2)
        assert serial.r2_slew == pooled.r2_slew
        assert serial.r2_delay == pooled.r2_delay
        assert serial.max_err_slew_ps == pooled.max_err_slew_ps
        assert serial.max_err_delay_ps == pooled.max_err_delay_ps
        assert serial.num_paths == pooled.num_paths


class TestSTAJobsInvariance:
    def test_arrivals_and_tiers_identical(self):
        library = make_default_library()
        design = generate_design(
            DesignSpec("par", n_combinational=30, n_ffs=4, n_paths=8,
                       seed=5), library)
        serial = STAEngine(design, ElmoreWireModel()).analyze_design(jobs=1)
        pooled = STAEngine(design, ElmoreWireModel()).analyze_design(jobs=3)
        np.testing.assert_array_equal(serial.arrivals(), pooled.arrivals())
        for a, b in zip(serial.paths, pooled.paths):
            assert a.path_name == b.path_name
            assert a.arrival == b.arrival
            assert [s.tier for s in a.stages] == [s.tier for s in b.stages]
