"""Trainer behaviour: convergence, early stopping, best-state restore."""

import numpy as np
import pytest

from repro.nn import Adam, Linear, MLP, Module, Tensor, Trainer, mse_loss


class ToyModel(Module):
    """y = w x regression over (x, y) sample tuples."""

    def __init__(self, rng):
        super().__init__()
        self.layer = Linear(1, 1, rng)

    def forward(self, x):
        return self.layer(x)


def make_samples(rng, n=64, slope=3.0, noise=0.0):
    xs = rng.normal(size=(n, 1))
    return [(x.reshape(1, 1), slope * x.reshape(1, 1)
             + noise * rng.normal(size=(1, 1))) for x in xs]


def loss_fn(model, sample):
    x, y = sample
    return mse_loss(model(Tensor(x)), Tensor(y))


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestTrainerFit:
    def test_converges_on_linear_data(self, rng):
        model = ToyModel(rng)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.05), loss_fn)
        history = trainer.fit(make_samples(rng), epochs=60, batch_size=8)
        assert history.final_train_loss < 1e-3
        np.testing.assert_allclose(model.layer.weight.data, [[3.0]], atol=0.05)

    def test_history_records_epochs(self, rng):
        model = ToyModel(rng)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.05), loss_fn)
        history = trainer.fit(make_samples(rng, n=8), epochs=5, batch_size=4)
        assert len(history) == 5
        assert all(e.seconds >= 0 for e in history.epochs)

    def test_early_stopping(self, rng):
        model = ToyModel(rng)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.05), loss_fn)
        samples = make_samples(rng, n=32)
        val = make_samples(rng, n=8)
        history = trainer.fit(samples, epochs=500, batch_size=8,
                              val_samples=val, patience=5)
        assert len(history) < 500

    def test_best_state_restored(self, rng):
        """After early stopping, evaluation equals the best recorded value."""
        model = ToyModel(rng)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.2), loss_fn)
        samples = make_samples(rng, n=16, noise=0.5)
        val = make_samples(rng, n=8, noise=0.5)
        history = trainer.fit(samples, epochs=40, batch_size=4,
                              val_samples=val, patience=100)
        final_val = trainer.evaluate(val)
        assert final_val == pytest.approx(history.best_val_loss, rel=1e-6)

    def test_model_left_in_eval_mode(self, rng):
        model = ToyModel(rng)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.05), loss_fn)
        trainer.fit(make_samples(rng, n=4), epochs=1)
        assert not model.training

    def test_invalid_epochs(self, rng):
        model = ToyModel(rng)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.05), loss_fn)
        with pytest.raises(ValueError):
            trainer.fit([], epochs=0)

    def test_invalid_batch_size(self, rng):
        model = ToyModel(rng)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.05), loss_fn)
        with pytest.raises(ValueError):
            trainer.fit(make_samples(rng, n=4), epochs=1, batch_size=0)

    def test_grad_clip_allows_training(self, rng):
        model = ToyModel(rng)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.05), loss_fn,
                          grad_clip=0.5)
        history = trainer.fit(make_samples(rng), epochs=100, batch_size=16)
        assert history.final_train_loss < 0.05


class TestTrainerWithSchedule:
    def test_cosine_schedule_steps_each_epoch(self, rng):
        from repro.nn import CosineSchedule

        model = ToyModel(rng)
        opt = Adam(model.parameters(), lr=0.1)
        trainer = Trainer(model, opt, loss_fn)
        sched = CosineSchedule(opt, total_steps=10)
        history = trainer.fit(make_samples(rng, n=8), epochs=10,
                              batch_size=4, schedule=sched)
        lrs = [e.lr for e in history.epochs]
        # LR recorded per epoch decays towards zero under the cosine.
        assert lrs[-1] < lrs[0]
        assert opt.lr < 0.1
