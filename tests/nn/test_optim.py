"""Optimizers, schedules and losses: convergence on analytic problems."""

import numpy as np
import pytest

from repro.nn import (Adam, AdamW, CosineSchedule, Linear, SGD, Tensor,
                      huber_loss, mae_loss, mse_loss)
from repro.nn.layers import Parameter


def quadratic_descent(optimizer_cls, **kwargs):
    """Minimize ||x - target||^2; returns the final parameter value."""
    p = Parameter(np.array([5.0, -3.0]))
    target = np.array([1.0, 2.0])
    opt = optimizer_cls([p], **kwargs)
    for _ in range(300):
        opt.zero_grad()
        loss = ((p - Tensor(target)) ** 2).sum()
        loss.backward()
        opt.step()
    return p.data


class TestOptimizers:
    def test_sgd_converges(self):
        final = quadratic_descent(SGD, lr=0.1)
        np.testing.assert_allclose(final, [1.0, 2.0], atol=1e-4)

    def test_sgd_momentum_converges(self):
        final = quadratic_descent(SGD, lr=0.05, momentum=0.9)
        np.testing.assert_allclose(final, [1.0, 2.0], atol=1e-3)

    def test_adam_converges(self):
        final = quadratic_descent(Adam, lr=0.1)
        np.testing.assert_allclose(final, [1.0, 2.0], atol=1e-3)

    def test_adamw_converges(self):
        final = quadratic_descent(AdamW, lr=0.1, weight_decay=1e-4)
        np.testing.assert_allclose(final, [1.0, 2.0], atol=1e-2)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([10.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (p * 0.0).sum().backward()  # zero data gradient
        opt.step()
        assert abs(p.data[0]) < 10.0

    def test_empty_parameters_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_negative_lr_raises(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=-1.0)

    def test_skips_none_grads(self):
        p1 = Parameter(np.array([1.0]))
        p2 = Parameter(np.array([2.0]))
        opt = Adam([p1, p2], lr=0.1)
        (p1 * 2.0).sum().backward()
        opt.step()  # p2 has no grad; must not crash
        np.testing.assert_allclose(p2.data, [2.0])


class TestAdamWDecoupledDecay:
    def test_decay_applied_exactly_once_per_step(self):
        """A zero-gradient parameter shrinks by exactly lr * wd * value."""
        p = Parameter(np.array([10.0]))
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(1)
        opt.step()
        # Decoupled decay only (the Adam update of a zero grad is zero).
        assert p.data[0] == pytest.approx(10.0 * (1.0 - 0.1 * 0.5))
        opt.step()
        assert p.data[0] == pytest.approx(10.0 * (1.0 - 0.1 * 0.5) ** 2)

    def test_decay_not_folded_into_moments(self):
        """Decoupled decay must leave the Adam moments untouched."""
        p = Parameter(np.array([10.0]))
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(1)
        opt.step()
        np.testing.assert_allclose(opt._m[0], [0.0])
        np.testing.assert_allclose(opt._v[0], [0.0])

    def test_weight_decay_attribute_stable(self):
        """No temporary self.weight_decay=0 mutation, even mid-step."""
        p = Parameter(np.array([1.0]))
        opt = AdamW([p], lr=0.1, weight_decay=0.25)
        p.grad = np.array([0.3])
        opt.step()
        assert opt.weight_decay == 0.25
        assert opt.decoupled is True

    def test_survives_exception_in_step(self):
        """A crash inside step() must not leave weight_decay zeroed."""
        p = Parameter(np.array([1.0]))
        opt = AdamW([p], lr=0.1, weight_decay=0.25)
        p.grad = np.array([float("nan")])  # survives: no exception path
        opt.step()
        assert opt.weight_decay == 0.25
        # Force a real failure: corrupt internal state so step() raises.
        opt._m = [np.zeros(2)]  # wrong shape -> broadcast error
        p.grad = np.array([0.5])
        with pytest.raises(ValueError):
            opt.step()
        assert opt.weight_decay == 0.25

    def test_matches_adam_with_decoupled_flag(self):
        """AdamW is exactly Adam(decoupled=True) — same trajectory."""
        rng = np.random.default_rng(3)
        start = rng.normal(size=4)
        grads = [rng.normal(size=4) for _ in range(5)]
        pa = Parameter(start.copy())
        pw = Parameter(start.copy())
        adam = Adam([pa], lr=0.05, weight_decay=0.1, decoupled=True)
        adamw = AdamW([pw], lr=0.05, weight_decay=0.1)
        for grad in grads:
            pa.grad = grad.copy()
            pw.grad = grad.copy()
            adam.step()
            adamw.step()
        np.testing.assert_array_equal(pa.data, pw.data)


class TestGradClipping:
    def test_clip_reduces_norm(self):
        p = Parameter(np.zeros(4))
        opt = SGD([p], lr=0.1)
        p.grad = np.full(4, 10.0)
        norm = opt.clip_grad_norm(1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_no_clip_below_threshold(self):
        p = Parameter(np.zeros(2))
        opt = SGD([p], lr=0.1)
        p.grad = np.array([0.3, 0.4])
        opt.clip_grad_norm(10.0)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])


class TestCosineSchedule:
    def test_warmup_then_decay(self):
        p = Parameter(np.zeros(1))
        opt = Adam([p], lr=1.0)
        sched = CosineSchedule(opt, total_steps=10, warmup_steps=2)
        lrs = [sched.step() for _ in range(10)]
        assert lrs[0] == pytest.approx(0.5)
        assert lrs[1] == pytest.approx(1.0)
        assert lrs[-1] == pytest.approx(0.0, abs=1e-9)
        assert all(a >= b for a, b in zip(lrs[1:], lrs[2:]))

    def test_invalid_total_steps(self):
        p = Parameter(np.zeros(1))
        with pytest.raises(ValueError):
            CosineSchedule(Adam([p], lr=1.0), total_steps=0)


class TestLosses:
    def test_mse_value(self):
        pred = Tensor(np.array([1.0, 2.0]))
        target = Tensor(np.array([0.0, 4.0]))
        assert mse_loss(pred, target).item() == pytest.approx(2.5)

    def test_mae_value(self):
        pred = Tensor(np.array([1.0, 2.0]))
        target = Tensor(np.array([0.0, 4.0]))
        assert mae_loss(pred, target).item() == pytest.approx(1.5)

    def test_huber_between_mse_and_mae_in_tails(self):
        pred = Tensor(np.array([100.0]))
        target = Tensor(np.array([0.0]))
        h = huber_loss(pred, target, delta=1.0).item()
        assert h < mse_loss(pred, target).item()
        assert h == pytest.approx(99.0, rel=0.02)

    def test_huber_quadratic_near_zero(self):
        pred = Tensor(np.array([0.01]))
        target = Tensor(np.array([0.0]))
        h = huber_loss(pred, target, delta=1.0).item()
        assert h == pytest.approx(0.5 * 0.01 ** 2, rel=1e-3)

    def test_huber_invalid_delta(self):
        with pytest.raises(ValueError):
            huber_loss(Tensor(np.zeros(1)), Tensor(np.zeros(1)), delta=0.0)

    def test_losses_backprop(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        target = Tensor(np.array([0.0, 0.0]))
        for loss_fn in (mse_loss, mae_loss, huber_loss):
            pred.zero_grad()
            loss_fn(pred, target).backward()
            assert pred.grad is not None


class TestLinearRegressionEndToEnd:
    def test_fits_line(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 3))
        true_w = np.array([[2.0], [-1.0], [0.5]])
        y = x @ true_w + 0.3
        layer = Linear(3, 1, rng)
        opt = Adam(layer.parameters(), lr=0.05)
        for _ in range(400):
            opt.zero_grad()
            loss = mse_loss(layer(Tensor(x)), Tensor(y))
            loss.backward()
            opt.step()
        np.testing.assert_allclose(layer.weight.data, true_w, atol=1e-2)
        np.testing.assert_allclose(layer.bias.data, [0.3], atol=1e-2)
