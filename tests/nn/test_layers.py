"""Layer and Module behaviour: parameter collection, state dicts, shapes."""

import numpy as np
import pytest

from repro.nn import (Dropout, LayerNorm, Linear, MLP, Module, Parameter,
                      Sequential, Tensor)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestLinear:
    def test_shapes(self, rng):
        layer = Linear(4, 7, rng)
        out = layer(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 7)

    def test_no_bias(self, rng):
        layer = Linear(4, 2, rng, bias=False)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((1, 4))))
        np.testing.assert_allclose(out.data, 0.0)

    def test_gradient_flows_to_weights(self, rng):
        layer = Linear(3, 2, rng)
        layer(Tensor(np.ones((5, 3)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        np.testing.assert_allclose(layer.bias.grad, [5.0, 5.0])

    def test_parameter_count(self, rng):
        layer = Linear(3, 2, rng)
        assert layer.num_parameters() == 3 * 2 + 2


class TestMLP:
    def test_output_shape(self, rng):
        mlp = MLP(6, [16, 8], 1, rng)
        assert mlp(Tensor(np.ones((10, 6)))).shape == (10, 1)

    def test_parameters_collected_from_list(self, rng):
        mlp = MLP(6, [16, 8], 1, rng)
        # 3 Linear layers, each with weight + bias.
        assert len(mlp.parameters()) == 6

    def test_nonlinearity_present(self, rng):
        """An MLP must not be a pure linear map (ReLU between layers)."""
        mlp = MLP(1, [8], 1, rng)
        xs = np.linspace(-3, 3, 7).reshape(-1, 1)
        ys = mlp(Tensor(xs)).data.reshape(-1)
        # Linear functions satisfy midpoint equality everywhere.
        mid = mlp(Tensor(np.array([[0.0]]))).data[0, 0]
        assert not np.isclose(mid, (ys[0] + ys[-1]) / 2, atol=1e-9)


class TestLayerNorm:
    def test_normalizes_last_axis(self, rng):
        norm = LayerNorm(8)
        x = Tensor(rng.normal(loc=5.0, scale=3.0, size=(4, 8)))
        out = norm(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gradients(self, rng):
        norm = LayerNorm(4)
        x = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        (norm(x) ** 2).sum().backward()
        assert x.grad is not None
        assert norm.gamma.grad is not None


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        drop = Dropout(0.5, rng)
        drop.eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_allclose(drop(x).data, 1.0)

    def test_train_mode_scales(self, rng):
        drop = Dropout(0.5, rng)
        x = Tensor(np.ones((100, 100)))
        out = drop(x).data
        # Inverted dropout: surviving entries are scaled by 1/(1-p).
        surviving = out[out > 0]
        np.testing.assert_allclose(surviving, 2.0)
        assert 0.3 < (out > 0).mean() < 0.7

    def test_invalid_probability(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)


class TestModuleStateDict:
    def _model(self, rng):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.layers = [Linear(3, 3, rng) for _ in range(2)]
                self.head = MLP(3, [4], 1, rng)

            def forward(self, x):
                for l in self.layers:
                    x = l(x).relu()
                return self.head(x)

        return Net()

    def test_roundtrip(self, rng):
        model = self._model(rng)
        state = model.state_dict()
        model2 = self._model(np.random.default_rng(99))
        before = model2(Tensor(np.ones((2, 3)))).data.copy()
        model2.load_state_dict(state)
        after = model2(Tensor(np.ones((2, 3)))).data
        expected = model(Tensor(np.ones((2, 3)))).data
        assert not np.allclose(before, expected)
        np.testing.assert_allclose(after, expected)

    def test_missing_key_raises(self, rng):
        model = self._model(rng)
        state = model.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self, rng):
        model = self._model(rng)
        state = model.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_train_eval_propagates(self, rng):
        model = self._model(rng)
        model.eval()
        assert all(not l.training for l in model.layers)
        model.train()
        assert all(l.training for l in model.layers)

    def test_zero_grad_clears_all(self, rng):
        model = self._model(rng)
        model(Tensor(np.ones((2, 3)))).sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestSequential:
    def test_applies_in_order(self, rng):
        seq = Sequential(Linear(2, 4, rng), Linear(4, 1, rng))
        assert len(seq) == 2
        assert seq(Tensor(np.ones((3, 2)))).shape == (3, 1)
