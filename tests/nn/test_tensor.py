"""Autograd correctness: every op is checked against numerical gradients."""

import numpy as np
import pytest

from repro.nn import Tensor, concat, matmul_const, stack


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar fn w.r.t. array x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x)
        flat[i] = orig - eps
        lo = fn(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_gradient(op, shape, seed=0, scale=1.0, tol=1e-5):
    """Compare autograd with numerical gradient for a unary tensor op."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape) * scale
    t = Tensor(x.copy(), requires_grad=True)
    out = op(t)
    loss = (out * out).sum()
    loss.backward()

    def scalar_fn(arr):
        o = op(Tensor(arr))
        return float((o.data ** 2).sum())

    expected = numerical_grad(scalar_fn, x.copy())
    np.testing.assert_allclose(t.grad, expected, rtol=tol, atol=tol)


class TestElementwiseOps:
    def test_add(self):
        check_gradient(lambda t: t + 3.0, (3, 4))

    def test_sub(self):
        check_gradient(lambda t: 5.0 - t, (3, 4))

    def test_mul(self):
        check_gradient(lambda t: t * 2.5, (3, 4))

    def test_div(self):
        check_gradient(lambda t: t / 2.0, (4,))

    def test_rdiv(self):
        check_gradient(lambda t: 1.0 / t, (4,), scale=1.0, seed=3)

    def test_pow(self):
        check_gradient(lambda t: (t * t + 1.0) ** 1.5, (3,))

    def test_neg(self):
        check_gradient(lambda t: -t, (2, 3))

    def test_exp(self):
        check_gradient(lambda t: t.exp(), (3, 3), scale=0.5)

    def test_log(self):
        check_gradient(lambda t: (t * t + 1.0).log(), (4,))

    def test_tanh(self):
        check_gradient(lambda t: t.tanh(), (5,))

    def test_sigmoid(self):
        check_gradient(lambda t: t.sigmoid(), (5,))

    def test_abs(self):
        check_gradient(lambda t: (t + 10.0).abs(), (4,))

    def test_relu_grad_zero_below(self):
        t = Tensor(np.array([-2.0, -0.5, 0.5, 2.0]), requires_grad=True)
        t.relu().sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 0.0, 1.0, 1.0])

    def test_leaky_relu(self):
        t = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        t.leaky_relu(0.1).sum().backward()
        np.testing.assert_allclose(t.grad, [0.1, 1.0])


class TestMatmul:
    def test_matmul_2d(self):
        rng = np.random.default_rng(1)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        ((a @ b) ** 2).sum().backward()
        a_num = numerical_grad(
            lambda arr: float(((arr @ b.data) ** 2).sum()), a.data.copy())
        b_num = numerical_grad(
            lambda arr: float(((a.data @ arr) ** 2).sum()), b.data.copy())
        np.testing.assert_allclose(a.grad, a_num, rtol=1e-5, atol=1e-6)
        np.testing.assert_allclose(b.grad, b_num, rtol=1e-5, atol=1e-6)

    def test_matmul_vector(self):
        a = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]), requires_grad=True)
        v = Tensor(np.array([1.0, -1.0]), requires_grad=True)
        (a @ v).sum().backward()
        np.testing.assert_allclose(v.grad, [4.0, 6.0])
        np.testing.assert_allclose(a.grad, [[1.0, -1.0], [1.0, -1.0]])

    def test_matmul_const(self):
        m = np.array([[0.5, 0.5], [1.0, 0.0]])
        x = Tensor(np.array([[1.0], [3.0]]), requires_grad=True)
        out = matmul_const(m, x)
        np.testing.assert_allclose(out.data, [[2.0], [1.0]])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, m.T @ np.ones((2, 1)))


class TestReductionsAndShape:
    def test_sum_axis(self):
        check_gradient(lambda t: t.sum(axis=0), (3, 4))

    def test_sum_keepdims(self):
        check_gradient(lambda t: t.sum(axis=1, keepdims=True), (3, 4))

    def test_mean(self):
        t = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        t.mean().backward()
        np.testing.assert_allclose(t.grad, np.full((2, 3), 1.0 / 6.0))

    def test_mean_axis(self):
        check_gradient(lambda t: t.mean(axis=-1), (4, 5))

    def test_max(self):
        t = Tensor(np.array([1.0, 5.0, 3.0]), requires_grad=True)
        t.max().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])

    def test_reshape(self):
        check_gradient(lambda t: t.reshape(6), (2, 3))

    def test_transpose(self):
        check_gradient(lambda t: t.T, (2, 3))

    def test_getitem(self):
        t = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        t[1].sum().backward()
        expected = np.zeros((3, 4))
        expected[1] = 1.0
        np.testing.assert_allclose(t.grad, expected)


class TestSoftmaxConcat:
    def test_softmax_rows_sum_to_one(self):
        t = Tensor(np.random.default_rng(0).normal(size=(4, 6)))
        s = t.softmax(axis=-1)
        np.testing.assert_allclose(s.data.sum(axis=-1), np.ones(4))

    def test_softmax_gradient(self):
        check_gradient(lambda t: t.softmax(axis=-1), (3, 5), tol=1e-4)

    def test_softmax_stable_large_logits(self):
        t = Tensor(np.array([[1000.0, 1000.0, 999.0]]))
        s = t.softmax(axis=-1).data
        assert np.all(np.isfinite(s))
        np.testing.assert_allclose(s.sum(), 1.0)

    def test_concat_values_and_grads(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(2 * np.ones((2, 2)), requires_grad=True)
        c = concat([a, b], axis=-1)
        assert c.shape == (2, 5)
        (c * np.arange(5.0)).sum().backward()
        np.testing.assert_allclose(a.grad, np.tile([0.0, 1.0, 2.0], (2, 1)))
        np.testing.assert_allclose(b.grad, np.tile([3.0, 4.0], (2, 1)))

    def test_stack(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        s = stack([a, b], axis=0)
        assert s.shape == (2, 3)
        s[0].sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, np.zeros(3))

    def test_concat_empty_raises(self):
        with pytest.raises(ValueError):
            concat([])


class TestBackwardMechanics:
    def test_broadcasting_add_bias(self):
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        (x + b).sum().backward()
        np.testing.assert_allclose(b.grad, [4.0, 4.0, 4.0])

    def test_reused_tensor_accumulates(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        y = t * t  # t used twice
        y.backward()
        np.testing.assert_allclose(t.grad, [4.0])

    def test_diamond_graph(self):
        t = Tensor(np.array([3.0]), requires_grad=True)
        a = t * 2.0
        b = t * 5.0
        (a + b).backward()
        np.testing.assert_allclose(t.grad, [7.0])

    def test_backward_nonscalar_raises(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2.0).backward()

    def test_backward_without_grad_raises(self):
        t = Tensor(np.ones(1))
        with pytest.raises(RuntimeError):
            t.backward()

    def test_detach_cuts_graph(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        out = d * 3.0
        assert not out.requires_grad

    def test_no_grad_tracking_for_constants(self):
        a = Tensor(np.ones(3))
        b = Tensor(np.ones(3))
        assert not (a + b).requires_grad

    def test_zero_grad(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t * 2.0).sum().backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None

    def test_deep_chain_no_recursion_error(self):
        t = Tensor(np.ones(4), requires_grad=True)
        x = t
        for _ in range(3000):
            x = x * 1.0001
        x.sum().backward()
        assert t.grad is not None
