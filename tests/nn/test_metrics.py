"""Metric correctness: R^2, max-abs-error, mean-abs-error, RMSE."""

import numpy as np
import pytest

from repro.nn import max_abs_error, mean_abs_error, r2_score, rmse


class TestR2Score:
    def test_perfect_prediction(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == pytest.approx(1.0)

    def test_mean_prediction_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        pred = np.full(3, 2.0)
        assert r2_score(y, pred) == pytest.approx(0.0)

    def test_worse_than_mean_is_negative(self):
        y = np.array([1.0, 2.0, 3.0])
        pred = np.array([3.0, 2.0, 1.0])
        assert r2_score(y, pred) < 0.0

    def test_constant_target_perfect(self):
        y = np.full(4, 5.0)
        assert r2_score(y, y) == pytest.approx(1.0)

    def test_constant_target_imperfect(self):
        y = np.full(4, 5.0)
        assert r2_score(y, y + 1.0) == pytest.approx(0.0)

    def test_known_value(self):
        y = np.array([0.0, 1.0, 2.0, 3.0])
        pred = y + np.array([0.5, -0.5, 0.5, -0.5])
        ss_res = 4 * 0.25
        ss_tot = float(np.sum((y - y.mean()) ** 2))
        assert r2_score(y, pred) == pytest.approx(1 - ss_res / ss_tot)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            r2_score(np.zeros(3), np.zeros(4))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            r2_score(np.zeros(0), np.zeros(0))

    def test_accepts_2d_inputs(self):
        y = np.arange(4.0).reshape(2, 2)
        assert r2_score(y, y) == pytest.approx(1.0)


class TestErrorMetrics:
    def test_max_abs_error(self):
        y = np.array([0.0, 0.0, 0.0])
        pred = np.array([0.5, -2.0, 1.0])
        assert max_abs_error(y, pred) == pytest.approx(2.0)

    def test_mean_abs_error(self):
        y = np.zeros(4)
        pred = np.array([1.0, -1.0, 2.0, 0.0])
        assert mean_abs_error(y, pred) == pytest.approx(1.0)

    def test_rmse(self):
        y = np.zeros(2)
        pred = np.array([3.0, 4.0])
        assert rmse(y, pred) == pytest.approx(np.sqrt(12.5))

    def test_empty_is_zero(self):
        assert max_abs_error(np.zeros(0), np.zeros(0)) == 0.0
        assert mean_abs_error(np.zeros(0), np.zeros(0)) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            max_abs_error(np.zeros(2), np.zeros(3))
