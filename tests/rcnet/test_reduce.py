"""TICER-style RC reduction: exactness and conservation properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import GoldenTimer, elmore_delays
from repro.rcnet import (chain_net, random_net, random_nontree_net,
                         random_tree_net, reduce_net, reduction_stats,
                         star_net)


class TestStructure:
    def test_chain_collapses_to_endpoints(self, small_chain):
        reduced = reduce_net(small_chain)
        assert reduced.num_nodes == 2  # source + sink survive
        assert reduced.num_edges == 1
        assert reduced.total_resistance == pytest.approx(
            small_chain.total_resistance)

    def test_protected_nodes_survive(self, small_chain):
        reduced = reduce_net(small_chain, keep={5})
        assert reduced.num_nodes == 3
        names = {n.name for n in reduced.nodes}
        assert "chain:5" in names

    def test_star_keeps_sinks(self):
        net = star_net(4)
        reduced = reduce_net(net)
        assert reduced.num_sinks == 4
        # Hub may be eliminated (degree 5 > max_degree default keeps it).
        assert reduced.num_nodes >= 1 + 4

    def test_couplings_preserved(self, nontree_net):
        reduced = reduce_net(nontree_net)
        assert len(reduced.couplings) == len(nontree_net.couplings)
        assert reduced.total_coupling_cap == pytest.approx(
            nontree_net.total_coupling_cap)


class TestConservation:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=30, deadline=None)
    def test_total_cap_conserved(self, seed):
        net = random_net(np.random.default_rng(seed), name="red")
        reduced = reduce_net(net)
        stats = reduction_stats(net, reduced)
        assert stats["cap_error"] < 1e-12
        assert stats["nodes_after"] <= stats["nodes_before"]

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=30, deadline=None)
    def test_elmore_exact_at_surviving_nodes(self, seed):
        """Kron reduction of G is exact and the TICER split preserves the
        first moment, so surviving-node Elmore delays match exactly."""
        rng = np.random.default_rng(seed)
        net = random_net(rng, name="red", coupling_prob=0.0)
        reduced = reduce_net(net)
        original = elmore_delays(net)
        after = elmore_delays(reduced)
        name_to_new = {n.name: n.index for n in reduced.nodes}
        for node in reduced.nodes:
            old_index = next(n.index for n in net.nodes if n.name == node.name)
            np.testing.assert_allclose(after[node.index], original[old_index],
                                       rtol=1e-9, atol=1e-20)

    def test_sink_order_preserved(self, nontree_net):
        reduced = reduce_net(nontree_net)
        original_names = [nontree_net.nodes[s].name for s in nontree_net.sinks]
        reduced_names = [reduced.nodes[s].name for s in reduced.sinks]
        assert original_names == reduced_names


class TestTimingAccuracy:
    def test_golden_delay_close_after_reduction(self):
        """Reduction is exact to first order; golden (all-moment) delay
        shifts only a few percent on a heavily reduced chain."""
        net = chain_net(20, resistance=50.0, cap=1e-15)
        reduced = reduce_net(net)
        timer = GoldenTimer(si_mode=False)
        full = timer.analyze(net, 20e-12).delays()[0]
        red = timer.analyze(reduced, 20e-12).delays()[0]
        assert red == pytest.approx(full, rel=0.10)

    def test_reduction_speeds_up_golden_analysis(self):
        import time

        rng = np.random.default_rng(1)
        nets = [random_tree_net(rng, 40, n_sinks=2, name=f"big{i}")
                for i in range(10)]
        reduced = [reduce_net(n) for n in nets]
        timer = GoldenTimer(si_mode=False)

        start = time.perf_counter()
        for n in nets:
            timer.analyze(n, 20e-12)
        t_full = time.perf_counter() - start
        start = time.perf_counter()
        for n in reduced:
            timer.analyze(n, 20e-12)
        t_red = time.perf_counter() - start
        assert t_red < t_full
