"""Topology generators: structural and statistical properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rcnet import (ParasiticRanges, chain_net, random_net,
                         random_nontree_net, random_tree_net, star_net)


class TestChainAndStar:
    def test_chain_structure(self):
        net = chain_net(5)
        assert net.num_nodes == 5
        assert net.num_edges == 4
        assert net.sinks == (4,)
        assert net.is_tree()

    def test_chain_too_short(self):
        with pytest.raises(ValueError):
            chain_net(1)

    def test_star_structure(self):
        net = star_net(6)
        assert net.num_sinks == 6
        assert net.num_nodes == 8  # src + hub + 6 sinks
        assert net.is_tree()

    def test_star_needs_sink(self):
        with pytest.raises(ValueError):
            star_net(0)


class TestRandomTree:
    @given(st.integers(min_value=2, max_value=60),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_always_a_valid_tree(self, n_nodes, seed):
        rng = np.random.default_rng(seed)
        net = random_tree_net(rng, n_nodes)
        assert net.num_nodes == n_nodes
        assert net.num_edges == n_nodes - 1
        assert net.is_tree()
        assert net.num_sinks >= 1

    def test_sink_count_respected(self, rng):
        net = random_tree_net(rng, 30, n_sinks=3)
        assert net.num_sinks == 3

    def test_sinks_are_leaves(self, rng):
        net = random_tree_net(rng, 30)
        for sink in net.sinks:
            assert net.degree(sink) == 1

    def test_deterministic_given_seed(self):
        a = random_tree_net(np.random.default_rng(5), 20)
        b = random_tree_net(np.random.default_rng(5), 20)
        assert [e.resistance for e in a.edges] == [e.resistance for e in b.edges]

    def test_parasitics_within_ranges(self, rng):
        ranges = ParasiticRanges()
        net = random_tree_net(rng, 40, ranges=ranges)
        for node in net.nodes:
            assert ranges.cap_min <= node.cap <= ranges.cap_max
        for edge in net.edges:
            assert ranges.res_min <= edge.resistance <= ranges.res_max

    def test_coupling_probability(self, rng):
        net = random_tree_net(rng, 50, coupling_prob=1.0)
        assert len(net.couplings) == 50

    def test_too_small_rejected(self, rng):
        with pytest.raises(ValueError):
            random_tree_net(rng, 1)


class TestRandomNonTree:
    @given(st.integers(min_value=4, max_value=50),
           st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_loops_added(self, n_nodes, n_loops, seed):
        rng = np.random.default_rng(seed)
        net = random_nontree_net(rng, n_nodes, n_loops=n_loops)
        assert net.num_edges >= net.num_nodes - 1
        assert net.num_edges <= net.num_nodes - 1 + n_loops
        # Requested loops should almost always be placeable on >3 nodes.
        if n_nodes > 6:
            assert not net.is_tree()

    def test_coupling_attached(self, rng):
        net = random_nontree_net(rng, 30, coupling_prob=1.0)
        assert len(net.couplings) == 30


class TestRandomNetMix:
    def test_population_mix(self):
        rng = np.random.default_rng(0)
        nets = [random_net(rng, name=f"n{i}", non_tree_prob=0.4)
                for i in range(100)]
        nontree = sum(1 for n in nets if not n.is_tree())
        assert 20 <= nontree <= 60  # around 40%

    def test_size_bounds(self):
        rng = np.random.default_rng(1)
        for i in range(30):
            net = random_net(rng, name=f"n{i}", n_nodes_range=(6, 12))
            assert 6 <= net.num_nodes <= 12

    def test_sink_bounds(self):
        rng = np.random.default_rng(2)
        for i in range(30):
            net = random_net(rng, name=f"n{i}", n_sinks_range=(1, 4))
            assert 1 <= net.num_sinks <= 4
