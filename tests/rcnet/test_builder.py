"""RCNetBuilder: incremental construction semantics."""

import pytest

from repro.rcnet import RCNetBuilder, RCNetError


class TestBuilder:
    def test_basic_build(self):
        b = RCNetBuilder("n")
        b.add_node("a", cap=1e-15)
        b.add_node("b", cap=2e-15)
        b.add_edge("a", "b", 50.0)
        b.set_source("a")
        b.add_sink("b")
        net = b.build()
        assert net.name == "n"
        assert net.num_nodes == 2
        assert net.nodes[1].cap == pytest.approx(2e-15)

    def test_duplicate_node_rejected(self):
        b = RCNetBuilder("n")
        b.add_node("a")
        with pytest.raises(RCNetError):
            b.add_node("a")

    def test_get_or_add_accumulates_cap(self):
        """SPEF semantics: repeated *CAP entries add up on one node."""
        b = RCNetBuilder("n")
        b.add_cap("a", 1e-15)
        b.add_cap("a", 2e-15)
        b.add_node("b")
        b.add_edge("a", "b", 1.0)
        b.set_source("a")
        b.add_sink("b")
        assert b.build().nodes[0].cap == pytest.approx(3e-15)

    def test_edge_creates_nodes_on_demand(self):
        b = RCNetBuilder("n")
        b.add_edge("x", "y", 10.0)
        assert "x" in b and "y" in b
        assert len(b) == 2

    def test_build_without_source_raises(self):
        b = RCNetBuilder("n")
        b.add_edge("a", "b", 1.0)
        b.add_sink("b")
        with pytest.raises(RCNetError, match="no source"):
            b.build()

    def test_node_index_unknown_raises(self):
        b = RCNetBuilder("n")
        with pytest.raises(RCNetError):
            b.node_index("missing")

    def test_coupling_attached(self):
        b = RCNetBuilder("n")
        b.add_edge("a", "b", 1.0)
        b.set_source("a")
        b.add_sink("b")
        b.add_coupling("b", "other_net:3", 0.5e-15, activity=0.7)
        net = b.build()
        assert len(net.couplings) == 1
        assert net.couplings[0].aggressor_name == "other_net:3"
        assert net.couplings[0].activity == pytest.approx(0.7)

    def test_invalid_topology_caught_at_build(self):
        b = RCNetBuilder("n")
        b.add_node("a", cap=1e-15)
        b.add_node("c", cap=1e-15)  # disconnected
        b.add_edge("a", "b", 1.0)
        b.set_source("a")
        b.add_sink("b")
        with pytest.raises(RCNetError, match="unreachable"):
            b.build()
