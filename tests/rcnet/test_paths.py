"""Wire-path extraction: uniqueness on trees, shortest-path on non-trees."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rcnet import (RCEdge, RCNet, RCNode, branch_nodes, chain_net,
                         count_wire_paths, extract_wire_paths,
                         random_nontree_net, random_tree_net,
                         shortest_path_tree)


class TestChainPaths:
    def test_single_path_covers_chain(self, small_chain):
        paths = extract_wire_paths(small_chain)
        assert len(paths) == 1
        assert paths[0].nodes == tuple(range(10))
        assert paths[0].resistance == pytest.approx(900.0)
        assert paths[0].num_stages == 9

    def test_no_branch_nodes_on_chain(self, small_chain):
        path = extract_wire_paths(small_chain)[0]
        assert branch_nodes(small_chain, path) == []


class TestTreePaths:
    @given(st.integers(min_value=2, max_value=40),
           st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=30, deadline=None)
    def test_one_path_per_sink(self, n_nodes, seed):
        net = random_tree_net(np.random.default_rng(seed), n_nodes)
        paths = extract_wire_paths(net)
        assert len(paths) == net.num_sinks == count_wire_paths(net)
        for path, sink in zip(paths, net.sinks):
            assert path.sink == sink
            assert path.nodes[0] == net.source
            assert path.nodes[-1] == sink
            assert len(path.edges) == len(path.nodes) - 1

    def test_path_edges_consistent(self, tree_net):
        for path in extract_wire_paths(tree_net):
            for (u, v), edge_index in zip(
                    zip(path.nodes, path.nodes[1:]), path.edges):
                edge = tree_net.edges[edge_index]
                assert {edge.u, edge.v} == {u, v}

    def test_path_resistance_is_edge_sum(self, tree_net):
        for path in extract_wire_paths(tree_net):
            total = sum(tree_net.edges[e].resistance for e in path.edges)
            assert path.resistance == pytest.approx(total)


class TestNonTreePaths:
    def test_shortest_route_chosen(self):
        """Diamond net: two routes to the sink; the lower-R one is chosen."""
        nodes = [RCNode(i, f"n{i}", 1e-15) for i in range(4)]
        edges = [
            RCEdge(0, 1, 10.0), RCEdge(1, 3, 10.0),   # cheap route: 20 ohm
            RCEdge(0, 2, 100.0), RCEdge(2, 3, 100.0),  # detour: 200 ohm
        ]
        net = RCNet("diamond", nodes, edges, 0, [3])
        path = extract_wire_paths(net)[0]
        assert path.nodes == (0, 1, 3)
        assert path.resistance == pytest.approx(20.0)
        assert branch_nodes(net, path) == [2]

    @given(st.integers(min_value=6, max_value=40),
           st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=30, deadline=None)
    def test_paths_valid_on_nontree(self, n_nodes, seed):
        net = random_nontree_net(np.random.default_rng(seed), n_nodes,
                                 n_loops=3)
        dist, _, _ = shortest_path_tree(net)
        for path in extract_wire_paths(net):
            assert path.resistance == pytest.approx(dist[path.sink])
            assert len(set(path.nodes)) == len(path.nodes)  # simple path


class TestDijkstra:
    def test_distances_on_chain(self, small_chain):
        dist, parent, _ = shortest_path_tree(small_chain)
        np.testing.assert_allclose(dist, np.arange(10) * 100.0)
        assert parent[0] == -1
        assert all(parent[i] == i - 1 for i in range(1, 10))

    def test_hop_weighting(self, small_chain):
        dist, _, _ = shortest_path_tree(small_chain, weight="hops")
        np.testing.assert_allclose(dist, np.arange(10))

    def test_unknown_weight(self, small_chain):
        with pytest.raises(ValueError):
            shortest_path_tree(small_chain, weight="length")

    def test_matches_networkx(self, nontree_net):
        import networkx as nx
        g = nontree_net.to_networkx()
        expected = nx.single_source_dijkstra_path_length(
            g, nontree_net.source, weight="resistance")
        dist, _, _ = shortest_path_tree(nontree_net)
        for node, d in expected.items():
            assert dist[node] == pytest.approx(d)
