"""RCNet structure validation and accessors."""

import numpy as np
import pytest

from repro.rcnet import (CouplingCap, RCEdge, RCNet, RCNetError, RCNode,
                         chain_net)


def make_nodes(caps):
    return [RCNode(i, f"n{i}", c) for i, c in enumerate(caps)]


class TestValidation:
    def test_minimal_valid_net(self):
        net = RCNet("n", make_nodes([1e-15, 1e-15]), [RCEdge(0, 1, 10.0)], 0, [1])
        assert net.num_nodes == 2
        assert net.is_tree()

    def test_negative_cap_rejected(self):
        with pytest.raises(RCNetError):
            RCNode(0, "bad", -1e-15)

    def test_nonpositive_resistance_rejected(self):
        with pytest.raises(RCNetError):
            RCEdge(0, 1, 0.0)

    def test_self_loop_rejected(self):
        with pytest.raises(RCNetError):
            RCEdge(2, 2, 10.0)

    def test_no_sinks_rejected(self):
        with pytest.raises(RCNetError):
            RCNet("n", make_nodes([1e-15, 1e-15]), [RCEdge(0, 1, 1.0)], 0, [])

    def test_sink_equals_source_rejected(self):
        with pytest.raises(RCNetError):
            RCNet("n", make_nodes([1e-15, 1e-15]), [RCEdge(0, 1, 1.0)], 0, [0])

    def test_duplicate_sinks_rejected(self):
        with pytest.raises(RCNetError):
            RCNet("n", make_nodes([0, 0, 0]),
                  [RCEdge(0, 1, 1.0), RCEdge(1, 2, 1.0)], 0, [1, 1])

    def test_disconnected_rejected(self):
        with pytest.raises(RCNetError, match="unreachable"):
            RCNet("n", make_nodes([0, 0, 0]), [RCEdge(0, 1, 1.0)], 0, [1])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(RCNetError):
            RCNet("n", make_nodes([0, 0]), [RCEdge(0, 5, 1.0)], 0, [1])

    def test_misordered_node_indices_rejected(self):
        nodes = [RCNode(1, "a", 0.0), RCNode(0, "b", 0.0)]
        with pytest.raises(RCNetError):
            RCNet("n", nodes, [RCEdge(0, 1, 1.0)], 0, [1])

    def test_coupling_victim_out_of_range(self):
        with pytest.raises(RCNetError):
            RCNet("n", make_nodes([0, 0]), [RCEdge(0, 1, 1.0)], 0, [1],
                  couplings=[CouplingCap(9, "x", 1e-15)])

    def test_coupling_activity_bounds(self):
        with pytest.raises(RCNetError):
            CouplingCap(0, "x", 1e-15, activity=1.5)


class TestAccessors:
    def test_chain_properties(self, small_chain):
        assert small_chain.num_nodes == 10
        assert small_chain.num_edges == 9
        assert small_chain.is_tree()
        assert small_chain.num_sinks == 1
        assert small_chain.total_cap == pytest.approx(10 * 2e-15)
        assert small_chain.total_resistance == pytest.approx(900.0)

    def test_degree_and_neighbors(self, small_chain):
        assert small_chain.degree(0) == 1
        assert small_chain.degree(5) == 2
        assert sorted(small_chain.neighbors(5)) == [4, 6]

    def test_weighted_adjacency_symmetric(self, nontree_net):
        a = nontree_net.weighted_adjacency()
        np.testing.assert_allclose(a, a.T)
        assert np.all(np.diag(a) == 0.0)

    def test_weighted_adjacency_parallel_edges_combined(self):
        nodes = make_nodes([0.0, 0.0])
        edges = [RCEdge(0, 1, 100.0), RCEdge(0, 1, 100.0)]
        net = RCNet("p", nodes, edges, 0, [1])
        assert net.weighted_adjacency()[0, 1] == pytest.approx(50.0)

    def test_nontree_detected(self, nontree_net):
        assert not nontree_net.is_tree()
        assert nontree_net.num_edges > nontree_net.num_nodes - 1

    def test_cap_vector(self, small_chain):
        np.testing.assert_allclose(small_chain.cap_vector(), 2e-15)

    def test_coupling_cap_vector(self, nontree_net):
        vec = nontree_net.coupling_cap_vector()
        assert vec.shape == (nontree_net.num_nodes,)
        assert vec.sum() == pytest.approx(nontree_net.total_coupling_cap)

    def test_to_networkx(self, tree_net):
        g = tree_net.to_networkx()
        assert g.number_of_nodes() == tree_net.num_nodes
        assert g.number_of_edges() == tree_net.num_edges
        import networkx as nx
        assert nx.is_connected(g)

    def test_edge_other(self):
        edge = RCEdge(2, 5, 1.0)
        assert edge.other(2) == 5
        assert edge.other(5) == 2
        with pytest.raises(ValueError):
            edge.other(3)

    def test_repr_mentions_kind(self, small_chain, nontree_net):
        assert "tree" in repr(small_chain)
        assert "non-tree" in repr(nontree_net)
