"""SPEF reader/writer: round trips, units, name maps, error handling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rcnet import (SPEFError, chain_net, load_spef, parse_spef,
                         random_net, save_spef, write_spef)


def nets_equal(a, b):
    """Structural + value equality of two RCNets, keyed by node *name*.

    SPEF does not preserve node declaration order (*CONN entries appear
    before *CAP entries), so indices may permute across a round trip; the
    electrical identity is name-based.
    """
    if (a.num_nodes, a.num_edges) != (b.num_nodes, b.num_edges):
        return False
    caps_a = {n.name: n.cap for n in a.nodes}
    caps_b = {n.name: n.cap for n in b.nodes}
    if set(caps_a) != set(caps_b):
        return False
    if not all(np.isclose(caps_a[k], caps_b[k], rtol=1e-5) for k in caps_a):
        return False
    if a.nodes[a.source].name != b.nodes[b.source].name:
        return False
    if {a.nodes[s].name for s in a.sinks} != {b.nodes[s].name for s in b.sinks}:
        return False
    ea = sorted((tuple(sorted((a.nodes[e.u].name, a.nodes[e.v].name))),
                 e.resistance) for e in a.edges)
    eb = sorted((tuple(sorted((b.nodes[e.u].name, b.nodes[e.v].name))),
                 e.resistance) for e in b.edges)
    return all(na == nb and np.isclose(ra, rb, rtol=1e-5)
               for (na, ra), (nb, rb) in zip(ea, eb))


class TestRoundTrip:
    def test_chain_roundtrip(self, small_chain):
        design = parse_spef(write_spef([small_chain]))
        assert len(design) == 1
        assert nets_equal(design.nets[0], small_chain)

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=25, deadline=None)
    def test_random_net_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        net = random_net(rng, name=f"net{seed}")
        parsed = parse_spef(write_spef([net])).nets[0]
        assert nets_equal(parsed, net)
        # Coupling caps survive with values.
        assert len(parsed.couplings) == len(net.couplings)
        assert parsed.total_coupling_cap == pytest.approx(
            net.total_coupling_cap, rel=1e-5)

    def test_multiple_nets(self, rng):
        nets = [random_net(rng, name=f"n{i}") for i in range(5)]
        design = parse_spef(write_spef(nets, design="multi"))
        assert design.design == "multi"
        assert len(design) == 5
        assert nets_equal(design.net_by_name("n3"), nets[3])

    def test_file_roundtrip(self, tmp_path, small_chain):
        path = str(tmp_path / "test.spef")
        save_spef(path, [small_chain], design="filetest")
        design = load_spef(path)
        assert design.design == "filetest"
        assert nets_equal(design.nets[0], small_chain)


class TestUnits:
    SPEF_KOHM_PF = """*SPEF "IEEE 1481-1998"
*DESIGN "units"
*DIVIDER /
*DELIMITER :
*T_UNIT 1 NS
*C_UNIT 1 PF
*R_UNIT 1 KOHM

*D_NET n1 0.002
*CONN
*I n1:0 O
*I n1:1 I
*CAP
1 n1:0 0.001
2 n1:1 0.001
*RES
1 n1:0 n1:1 0.05
*END
"""

    def test_unit_scaling(self):
        net = parse_spef(self.SPEF_KOHM_PF).nets[0]
        assert net.nodes[0].cap == pytest.approx(1e-15)   # 0.001 pF = 1 fF
        assert net.edges[0].resistance == pytest.approx(50.0)  # 0.05 kOhm

    def test_unknown_unit_rejected(self):
        with pytest.raises(SPEFError, match="unknown unit"):
            parse_spef(self.SPEF_KOHM_PF.replace("1 PF", "1 QF"))


class TestNameMap:
    SPEF_MAPPED = """*SPEF "IEEE 1481-1998"
*DESIGN "mapped"
*DELIMITER :
*C_UNIT 1 FF
*R_UNIT 1 OHM
*NAME_MAP
*1 top/alu/net7
*D_NET *1 3.0
*CONN
*I *1:0 O
*I *1:1 I
*CAP
1 *1:0 1.5
2 *1:1 1.5
*RES
1 *1:0 *1:1 42.0
*END
"""

    def test_name_map_expanded(self):
        net = parse_spef(self.SPEF_MAPPED).nets[0]
        assert net.name == "top/alu/net7"
        assert net.nodes[0].name == "top/alu/net7:0"
        assert net.edges[0].resistance == pytest.approx(42.0)

    def test_unmapped_index_rejected(self):
        bad = self.SPEF_MAPPED.replace("*NAME_MAP\n*1 top/alu/net7\n", "")
        with pytest.raises(SPEFError, match="unmapped"):
            parse_spef(bad)


class TestErrors:
    def test_missing_header(self):
        with pytest.raises(SPEFError, match=r"\*SPEF header"):
            parse_spef("*DESIGN \"x\"\n")

    def test_net_before_units(self):
        text = '*SPEF "x"\n*D_NET n 1.0\n*CONN\n*END\n'
        with pytest.raises(SPEFError, match="before"):
            parse_spef(text)

    def test_unterminated_net(self, small_chain):
        text = write_spef([small_chain]).replace("*END", "")
        with pytest.raises(SPEFError, match="not terminated"):
            parse_spef(text)

    def test_net_without_driver(self, small_chain):
        text = write_spef([small_chain]).replace("chain:0 O", "chain:0 I")
        with pytest.raises(SPEFError, match="no driver"):
            parse_spef(text)

    def test_comments_ignored(self, small_chain):
        text = write_spef([small_chain])
        commented = "\n".join(
            line + " // trailing comment" if line.startswith("1 ") else line
            for line in text.splitlines())
        assert nets_equal(parse_spef(commented).nets[0], small_chain)

    def test_malformed_resistance(self):
        text = ('*SPEF "x"\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n'
                '*D_NET n 1.0\n*CONN\n*I n:0 O\n*I n:1 I\n'
                '*CAP\n1 n:0 1.0\n2 n:1 1.0\n*RES\n1 n:0\n*END\n')
        with pytest.raises(SPEFError, match="malformed resistance"):
            parse_spef(text)


class TestECOEdits:
    """SPEF-level halves of the ECO parasitic edits."""

    def _design(self):
        nets = [chain_net(4, name="na"), chain_net(5, name="nb")]
        return parse_spef(write_spef(nets, design="eco"))

    def test_replace_net_swaps_by_name_and_returns_old(self):
        design = self._design()
        old = design.net_by_name("na")
        replacement = old.scaled(r_factor=2.0)
        returned = design.replace_net(replacement)
        assert returned is old
        assert design.net_by_name("na") is replacement
        assert design.net_by_name("nb").name == "nb"  # untouched

    def test_replace_unknown_net_rejected(self):
        design = self._design()
        with pytest.raises(KeyError, match="ghost"):
            design.replace_net(chain_net(3, name="ghost"))

    def test_scale_net_rc_scales_in_place(self):
        design = self._design()
        old = design.net_by_name("na")
        returned = design.scale_net_rc("na", r_factor=1.5, c_factor=0.5)
        assert returned is old
        scaled = design.net_by_name("na")
        for before, after in zip(old.edges, scaled.edges):
            assert after.resistance == pytest.approx(1.5 * before.resistance)
        for before, after in zip(old.nodes, scaled.nodes):
            assert after.cap == pytest.approx(0.5 * before.cap)


class TestRCNetScaled:
    def test_topology_and_names_preserved(self):
        net = chain_net(6, name="c")
        scaled = net.scaled(r_factor=1.2, c_factor=0.8)
        assert scaled.name == "c"
        assert scaled.source == net.source and scaled.sinks == net.sinks
        assert [n.name for n in scaled.nodes] == [n.name for n in net.nodes]

    def test_identity_factors_are_bitwise(self):
        net = chain_net(6, name="c")
        scaled = net.scaled()
        assert [n.cap for n in scaled.nodes] == [n.cap for n in net.nodes]
        assert [e.resistance for e in scaled.edges] == \
            [e.resistance for e in net.edges]

    def test_nonpositive_factor_rejected(self):
        from repro.rcnet import RCNetError

        with pytest.raises(RCNetError, match="positive"):
            chain_net(4, name="c").scaled(r_factor=0.0)
        with pytest.raises(RCNetError, match="positive"):
            chain_net(4, name="c").scaled(c_factor=-1.0)
