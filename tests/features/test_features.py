"""Table I feature extraction: node features, path features, scaler."""

import numpy as np
import pytest

from repro.analysis import GoldenTimer
from repro.features import (ADJACENCY_RESISTANCE_SCALE, FeatureScaler,
                            NODE_FEATURE_NAMES, NUM_NODE_FEATURES,
                            NUM_PATH_FEATURES, PATH_FEATURE_NAMES, NetContext,
                            build_adjacency, build_net_sample,
                            extract_node_features, extract_path_features)
from repro.rcnet import chain_net, extract_wire_paths


@pytest.fixture
def context(library):
    drive = library.cell("INV_X4")
    return drive


def make_context(library, net):
    drive = library.cell("INV_X4")
    loads = [library.cell("BUF_X1")] * net.num_sinks
    return NetContext(input_slew=25e-12, drive_cell=drive, load_cells=loads)


class TestNodeFeatures:
    def test_shape_and_names(self, tree_net):
        x = extract_node_features(tree_net)
        assert x.shape == (tree_net.num_nodes, NUM_NODE_FEATURES)
        assert len(NODE_FEATURE_NAMES) == NUM_NODE_FEATURES

    def test_chain_middle_node(self):
        net = chain_net(5, resistance=100.0, cap=2e-15)
        x = extract_node_features(net)
        mid = x[2]
        assert mid[0] == pytest.approx(2.0)        # cap in fF
        assert mid[1] == 1.0                        # one input neighbor
        assert mid[2] == 1.0                        # one output neighbor
        assert mid[3] == pytest.approx(2.0)        # input neighbor cap (fF)
        assert mid[5] == 2.0                        # two incident resistances
        assert mid[6] == pytest.approx(0.1)        # 100 ohm in kOhm
        assert mid[7] == pytest.approx(0.1)

    def test_source_has_no_inputs(self, tree_net):
        x = extract_node_features(tree_net)
        assert x[tree_net.source, 1] == 0.0
        assert x[tree_net.source, 6] == 0.0

    def test_degree_column_matches_graph(self, nontree_net):
        x = extract_node_features(nontree_net)
        for i in range(nontree_net.num_nodes):
            assert x[i, 5] == nontree_net.degree(i)

    def test_input_output_partition(self, nontree_net):
        x = extract_node_features(nontree_net)
        for i in range(nontree_net.num_nodes):
            assert x[i, 1] + x[i, 2] == x[i, 5]


class TestPathFeatures:
    def test_shape(self, tree_net, library):
        paths = extract_wire_paths(tree_net)
        h = extract_path_features(tree_net, paths, make_context(library, tree_net))
        assert h.shape == (len(paths), NUM_PATH_FEATURES)
        assert len(PATH_FEATURE_NAMES) == NUM_PATH_FEATURES

    def test_cell_features_encoded(self, tree_net, library):
        paths = extract_wire_paths(tree_net)
        ctx = make_context(library, tree_net)
        h = extract_path_features(tree_net, paths, ctx)
        assert np.all(h[:, 2] == pytest.approx(25.0))       # slew in ps
        assert np.all(h[:, 3] == 4)                         # INV_X4 strength
        assert np.all(h[:, 4] == ctx.drive_cell.function_id)
        assert np.all(h[:, 5] == 1)                         # BUF_X1 strength

    def test_elmore_and_d2m_columns(self, small_chain, library):
        paths = extract_wire_paths(small_chain)
        ctx = make_context(library, small_chain)
        h = extract_path_features(small_chain, paths, ctx)
        # Elmore (col 8) includes the receiver pin load; must exceed the
        # bare-wire closed form of 9 ps and stay on that scale.
        assert h[0, 8] > 9.0
        assert h[0, 9] < h[0, 8]       # D2M below Elmore
        assert h[0, 9] > 0.0

    def test_mismatched_load_cells(self, tree_net, library):
        ctx = NetContext(20e-12, library.cell("INV_X1"),
                         [library.cell("BUF_X1")])  # too few
        with pytest.raises(ValueError):
            extract_path_features(tree_net, extract_wire_paths(tree_net), ctx)


class TestBuildNetSample:
    def test_labeled_sample(self, tree_net, library):
        sample = build_net_sample(tree_net, make_context(library, tree_net),
                                  design="D")
        assert sample.design == "D"
        assert sample.num_paths == tree_net.num_sinks
        slews, delays = sample.labels()
        assert np.all(slews > 0.0)
        assert np.all(delays > 0.0)
        assert sample.is_tree

    def test_unlabeled_sample_skips_golden(self, tree_net, library):
        sample = build_net_sample(tree_net, make_context(library, tree_net),
                                  labeled=False)
        slews, delays = sample.labels()
        assert np.all(np.isnan(slews))
        assert np.all(np.isnan(delays))

    def test_adjacency_scaled(self, tree_net, library):
        sample = build_net_sample(tree_net, make_context(library, tree_net))
        raw = tree_net.weighted_adjacency()
        np.testing.assert_allclose(
            sample.adjacency, raw / ADJACENCY_RESISTANCE_SCALE)

    def test_custom_timer_used(self, tree_net, library):
        quiet = build_net_sample(tree_net, make_context(library, tree_net),
                                 timer=GoldenTimer(si_mode=False))
        noisy = build_net_sample(tree_net, make_context(library, tree_net),
                                 timer=GoldenTimer(si_mode=True))
        if tree_net.couplings:
            assert noisy.paths[0].label_delay >= quiet.paths[0].label_delay


class TestFeatureScaler:
    def _samples(self, library, rng, n=10):
        from repro.rcnet import random_net

        out = []
        for i in range(n):
            net = random_net(rng, name=f"s{i}")
            out.append(build_net_sample(net, make_context(library, net)))
        return out

    def test_standardizes_train_stats(self, library, rng):
        samples = self._samples(library, rng)
        scaler = FeatureScaler()
        transformed = scaler.fit_transform(samples)
        nodes = np.vstack([s.node_features for s in transformed])
        np.testing.assert_allclose(nodes.mean(axis=0), 0.0, atol=1e-9)
        stds = nodes.std(axis=0)
        np.testing.assert_allclose(stds[stds > 1e-6], 1.0, atol=1e-6)

    def test_originals_untouched(self, library, rng):
        samples = self._samples(library, rng, n=4)
        before = samples[0].node_features.copy()
        FeatureScaler().fit_transform(samples)
        np.testing.assert_allclose(samples[0].node_features, before)

    def test_labels_not_scaled(self, library, rng):
        samples = self._samples(library, rng, n=4)
        scaled = FeatureScaler().fit_transform(samples)
        assert scaled[0].paths[0].label_delay == pytest.approx(
            samples[0].paths[0].label_delay)

    def test_transform_before_fit_raises(self, library, rng):
        with pytest.raises(RuntimeError):
            FeatureScaler().transform(self._samples(library, rng, n=2))

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            FeatureScaler().fit([])

    def test_state_roundtrip(self, library, rng):
        samples = self._samples(library, rng, n=5)
        scaler = FeatureScaler().fit(samples)
        clone = FeatureScaler.from_state(scaler.state())
        a = scaler.transform(samples[:1])[0]
        b = clone.transform(samples[:1])[0]
        np.testing.assert_allclose(a.node_features, b.node_features)
