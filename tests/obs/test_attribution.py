"""Span attribution tables stay truthful: every entry names real code.

These tests are the drift alarm promised in ``repro/obs/attribution.py``:
renaming a traced function (or a span) without updating the tables fails
here, next to the tracer, instead of silently mis-ranking hot paths in
the PERF lint pack.
"""

import importlib

import pytest

from repro.obs import (SPAN_CHILDREN, SPAN_FAMILIES, SPAN_FUNCTIONS,
                       span_children, span_function)


def _resolve(module, qualname):
    """Import ``module`` and walk ``qualname`` attribute by attribute."""
    obj = importlib.import_module(module)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


@pytest.mark.parametrize("span", sorted(SPAN_FUNCTIONS))
def test_every_exact_attribution_resolves(span):
    module, qualname = SPAN_FUNCTIONS[span]
    target = _resolve(module, qualname)
    assert callable(target), f"{span} -> {module}.{qualname} not callable"


def test_every_family_attribution_resolves():
    for prefix, target in SPAN_FAMILIES.items():
        assert prefix.endswith(".")
        if target is None:
            continue  # declared harness family
        module, qualname = target
        assert callable(_resolve(module, qualname))


def test_family_prefix_matching():
    assert span_function("bench.sta") is None          # harness span
    assert span_function("bench.anything.new") is None
    assert span_function("parallel.generate_designs") == \
        ("repro.parallel.pool", "parallel_map")
    assert span_function("unknown.span") is None


def test_exact_entry_wins_over_family_prefix():
    # No exact entry currently shadows a family; the contract is that an
    # exact entry would win, which span_function implements by checking
    # SPAN_FUNCTIONS first.
    assert span_function("train.epoch") == ("repro.nn.trainer",
                                            "Trainer.fit")


def test_children_tree_references_known_spans():
    known = set(SPAN_FUNCTIONS)
    prefixes = tuple(SPAN_FAMILIES)
    for parent, children in SPAN_CHILDREN.items():
        for name in (parent, *children):
            assert name in known or name.startswith(prefixes), (
                f"span {name!r} in SPAN_CHILDREN has no attribution entry")
        assert len(children) == len(set(children))


def test_children_tree_is_acyclic():
    def walk(name, seen):
        assert name not in seen, f"cycle through {name!r}"
        for child in span_children(name):
            walk(child, seen | {name})

    for root in SPAN_CHILDREN:
        walk(root, frozenset())


def test_span_children_of_a_leaf_is_empty():
    assert span_children("simulate.decompose") == []
