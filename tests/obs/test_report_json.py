"""CLI ``repro report`` observability flags: --json and --profile."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def design_dir(tmp_path_factory):
    """Export a small benchmark once; reused by every test in the module."""
    outdir = tmp_path_factory.mktemp("design")
    code = main(["export-design", "PCI_BRIDGE", "-o", str(outdir),
                 "--scale", "3200"])
    assert code == 0
    return outdir


def _report_args(design_dir, *extra):
    return ["report",
            "--verilog", str(design_dir / "netlist.v"),
            "--spef", str(design_dir / "parasitics.spef"),
            "--lib", str(design_dir / "cells.lib"),
            "--engine", "elmore", "--paths", "4", *extra]


class TestReportJson:
    def test_json_report_is_machine_readable(self, design_dir, capsys):
        code = main(_report_args(design_dir, "--json"))
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro-report/1"
        assert document["wire_model"] == "ElmoreWireModel"
        assert document["clock_period_s"] == pytest.approx(1.5e-9)
        assert document["gate_seconds"] > 0.0
        assert document["wire_seconds"] > 0.0
        assert document["paths"]
        for path in document["paths"]:
            assert path["arrival_s"] > 0.0
            assert path["stages"] >= 1

    def test_json_report_carries_stage_timings(self, design_dir, capsys):
        code = main(_report_args(design_dir, "--json"))
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert "sta.analyze_design" in document["stages"]
        stage = document["stages"]["sta.analyze_design"]
        assert stage["count"] == 1
        assert stage["wall_s"] > 0.0
        counters = document["metrics"]["counters"]
        assert counters["sta.paths_timed"] >= 1

    def test_fallback_engine_reports_tier_counters(self, design_dir, capsys):
        code = main(_report_args(design_dir, "--json",
                                 "--engine", "fallback"))
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert "fallback_tiers" in document
        assert sum(document["fallback_tiers"].values()) >= 1


class TestReportProfile:
    def test_profile_appends_stage_table(self, design_dir, capsys):
        code = main(_report_args(design_dir, "--profile"))
        assert code == 0
        out = capsys.readouterr().out
        assert "per-stage profile" in out
        assert "sta.analyze_design" in out

    def test_plain_report_has_no_profile(self, design_dir, capsys):
        code = main(_report_args(design_dir))
        assert code == 0
        assert "per-stage profile" not in capsys.readouterr().out
