"""The docs internal-link checker (tools/check_docs_links.py) works and
the repo's own documentation passes it."""

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
CHECKER = os.path.join(REPO_ROOT, "tools", "check_docs_links.py")


def _run(root):
    return subprocess.run([sys.executable, CHECKER, root],
                          capture_output=True, text=True)


class TestCheckerTool:
    def test_repo_docs_have_no_broken_links(self):
        result = _run(REPO_ROOT)
        assert result.returncode == 0, result.stderr

    def test_broken_file_link_detected(self, tmp_path):
        (tmp_path / "a.md").write_text("see [other](missing.md)\n")
        result = _run(str(tmp_path))
        assert result.returncode == 1
        assert "a.md:1" in result.stderr
        assert "missing.md" in result.stderr

    def test_broken_anchor_detected(self, tmp_path):
        (tmp_path / "a.md").write_text("# Real Heading\n\n"
                                       "[jump](a.md#not-a-heading)\n")
        result = _run(str(tmp_path))
        assert result.returncode == 1
        assert "missing anchor" in result.stderr

    def test_valid_links_pass(self, tmp_path):
        (tmp_path / "b.md").write_text("# Target Section\n")
        (tmp_path / "a.md").write_text(
            "[file](b.md) [anchor](b.md#target-section) "
            "[self](#local)\n\n# Local\n"
            "[external](https://example.com/nope)\n")
        result = _run(str(tmp_path))
        assert result.returncode == 0, result.stderr

    def test_links_inside_code_fences_ignored(self, tmp_path):
        (tmp_path / "a.md").write_text(
            "```markdown\n[fake](nowhere.md)\n```\n")
        result = _run(str(tmp_path))
        assert result.returncode == 0, result.stderr
