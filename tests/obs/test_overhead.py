"""Disabled-mode overhead: instrumentation must be a cheap no-op.

The acceptance bar is <2% overhead on the bench workload with tracing
disabled; these tests enforce the mechanism behind that number (shared
null span, no allocation growth, sub-microsecond-scale per-call cost with
a generous flake margin) rather than a tight wall-clock ratio, which would
be unreliable on shared CI machines.
"""

import time

import pytest

from repro.obs import NULL_SPAN, Tracer, get_metrics, get_tracer


class TestDisabledNoOp:
    def test_disabled_span_returns_singleton_without_recording(self):
        tracer = Tracer(enabled=False)
        for _ in range(1000):
            with tracer.span("hot", net="n", nodes=12):
                pass
        assert tracer.spans == []
        assert tracer.dropped == 0

    def test_disabled_per_call_cost_is_tiny(self):
        """Per-call cost of a disabled span must stay in the µs range.

        The bound (20 µs/call) is ~100x the typical cost, so the test only
        fails when the no-op path grows real work (I/O, allocation storms),
        not from scheduler noise.
        """
        tracer = Tracer(enabled=False)
        calls = 20_000
        start = time.perf_counter()
        for _ in range(calls):
            span = tracer.span("hot", net="n")
            span.__enter__()
            span.__exit__(None, None, None)
        elapsed = time.perf_counter() - start
        assert elapsed / calls < 20e-6

    def test_counter_per_call_cost_is_tiny(self):
        counter = get_metrics().counter("overhead.test")
        calls = 100_000
        start = time.perf_counter()
        for _ in range(calls):
            counter.inc()
        elapsed = time.perf_counter() - start
        assert elapsed / calls < 5e-6
        counter.reset()


class TestInstrumentedPipelineWhenDisabled:
    @pytest.fixture(autouse=True)
    def cold_solve_cache(self):
        # These tests assert that the eigendecomposition itself runs; a
        # solve cache warmed by earlier tests would legitimately skip it.
        from repro.analysis import get_solve_cache

        get_solve_cache().clear()

    def test_golden_timer_records_no_spans_when_disabled(self, small_chain):
        from repro.analysis import GoldenTimer

        tracer = get_tracer()
        tracer.disable()
        tracer.reset()
        GoldenTimer().analyze(small_chain, 20e-12)
        assert tracer.spans == []

    def test_golden_timer_counters_still_tick_when_disabled(self, small_chain):
        from repro.analysis import GoldenTimer

        get_tracer().disable()
        registry = get_metrics()
        registry.reset()
        GoldenTimer().analyze(small_chain, 20e-12)
        counters = registry.snapshot()["counters"]
        assert counters["simulator.nets_analyzed"] == 1
        assert counters["simulator.eigendecompositions"] == 1
        assert counters["simulator.crossing_searches"] >= 4

    def test_golden_timer_spans_recorded_when_enabled(self, small_chain):
        from repro.analysis import GoldenTimer

        tracer = get_tracer()
        tracer.reset()
        tracer.enable()
        GoldenTimer().analyze(small_chain, 20e-12)
        names = {span.name for span in tracer.spans}
        assert {"simulate.net", "simulate.decompose"} <= names
        decompose = next(s for s in tracer.spans
                         if s.name == "simulate.decompose")
        assert decompose.parent == "simulate.net"
        assert decompose.attrs["nodes"] == small_chain.num_nodes

    def test_null_span_is_module_singleton(self):
        assert Tracer(enabled=False).span("a") is NULL_SPAN
        assert Tracer(enabled=False).span("b", x=1) is NULL_SPAN
