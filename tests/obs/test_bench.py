"""Bench workload: schema validation, filenames, and the CLI smoke test."""

import json
import os

import pytest

from repro.cli import main
from repro.obs import (BENCH_SCHEMA, QUICK_WORKLOAD, REQUIRED_STAGES,
                       bench_filename, format_bench_summary,
                       validate_bench_report, write_bench_report)


def _minimal_document():
    """Smallest document that passes ``validate_bench_report``."""
    return {
        "schema": BENCH_SCHEMA,
        "created_utc": "2026-08-05T00:00:00Z",
        "environment": {"python": "3.12", "platform": "linux",
                        "numpy": "1.0"},
        "workload": QUICK_WORKLOAD.to_dict(),
        "stages": [{"name": name, "wall_s": 1.0, "cpu_s": 1.0}
                   for name in REQUIRED_STAGES],
        "results": {
            "dataset": {},
            "train": {},
            "evaluate": {"r2_slew": 0.9, "r2_delay": 0.9,
                         "throughput_nets_per_s": 100.0},
            "sta": {"paths": 4, "gate_seconds": 1e-9, "wire_seconds": 1e-10,
                    "fallback_tiers": {}},
        },
        "observability": {},
    }


def _stage(document, name):
    return next(s for s in document["stages"] if s["name"] == name)


class TestValidator:
    def test_minimal_document_is_valid(self):
        assert validate_bench_report(_minimal_document()) == []

    def test_non_dict_rejected(self):
        problems = validate_bench_report([1, 2])
        assert problems and "object" in problems[0]

    def test_wrong_schema_id_rejected(self):
        document = _minimal_document()
        document["schema"] = "repro-bench/0"
        assert any("schema" in p for p in validate_bench_report(document))

    def test_missing_stage_rejected(self):
        document = _minimal_document()
        document["stages"] = [s for s in document["stages"]
                              if s["name"] != "train"]
        assert any("train" in p for p in validate_bench_report(document))

    def test_stage_without_timing_rejected(self):
        document = _minimal_document()
        del _stage(document, "sta")["wall_s"]
        assert any("sta" in p and "wall_s" in p
                   for p in validate_bench_report(document))

    def test_stage_with_negative_timing_rejected(self):
        document = _minimal_document()
        _stage(document, "dataset")["cpu_s"] = -1.0
        assert any("dataset" in p and "cpu_s" in p
                   for p in validate_bench_report(document))

    def test_missing_top_level_key_rejected(self):
        document = _minimal_document()
        del document["workload"]
        assert any("workload" in p for p in validate_bench_report(document))


class TestWriteBenchReport:
    def test_filename_uses_date_stamp(self):
        assert bench_filename("2026-08-05") == "BENCH_2026-08-05.json"

    def test_invalid_document_refused(self, tmp_path):
        with pytest.raises(ValueError, match="invalid bench report"):
            write_bench_report({"schema": "nope"}, out_dir=str(tmp_path))
        assert list(tmp_path.iterdir()) == []

    def test_valid_document_written(self, tmp_path):
        path = write_bench_report(_minimal_document(), out_dir=str(tmp_path),
                                  date="2026-01-02")
        assert os.path.basename(path) == "BENCH_2026-01-02.json"
        assert json.load(open(path))["schema"] == BENCH_SCHEMA

    def test_summary_renders_stages(self):
        text = format_bench_summary(_minimal_document())
        for name in REQUIRED_STAGES:
            assert name in text


class TestBenchCliSmoke:
    def test_quick_bench_writes_schema_valid_report(self, tmp_path, capsys):
        """End-to-end: ``repro bench --quick`` must emit a valid BENCH file."""
        code = main(["bench", "--quick", "-o", str(tmp_path),
                     "--date", "2026-08-05"])
        assert code == 0
        path = tmp_path / "BENCH_2026-08-05.json"
        assert path.exists()
        document = json.load(open(path))
        assert validate_bench_report(document) == []
        # Per-stage wall/CPU timings for every pipeline phase.
        for name in REQUIRED_STAGES:
            stage = _stage(document, name)
            assert stage["wall_s"] > 0.0
            assert stage["cpu_s"] >= 0.0
        # The workload is pinned so runs are comparable across PRs.
        assert document["workload"] == QUICK_WORKLOAD.to_dict()
        # Counters from the instrumented hot paths made it into the report.
        counters = document["observability"]["metrics"]["counters"]
        assert counters["simulator.nets_analyzed"] > 0
        assert counters["trainer.epochs_run"] == QUICK_WORKLOAD.epochs
        out = capsys.readouterr().out
        assert "wrote" in out and "BENCH_2026-08-05.json" in out


def _minimal_serve_document():
    from repro.serve.loadgen import QUICK_SERVE_WORKLOAD

    return {
        "schema": BENCH_SCHEMA,
        "created_utc": "2026-08-08T00:00:00Z",
        "environment": {"python": "3.12", "platform": "linux",
                        "numpy": "1.0", "mp_start_method": "fork",
                        "jobs": 1},
        "workload": QUICK_SERVE_WORKLOAD.to_dict(),
        "stages": [{"name": "serve", "wall_s": 1.0, "cpu_s": 1.0}],
        "results": {"serve": {
            "requests_sent": 24, "lost_requests": 0,
            "throughput_nets_per_s": 1000.0,
            "latency_ms": {"p50": 5.0, "p99": 20.0}}},
        "observability": {},
    }


class TestServeModeValidator:
    def test_serve_document_is_valid(self):
        assert validate_bench_report(_minimal_serve_document()) == []

    def test_serve_mode_requires_the_serve_stage(self):
        document = _minimal_serve_document()
        document["stages"] = [{"name": "dataset", "wall_s": 1.0,
                               "cpu_s": 1.0}]
        problems = validate_bench_report(document)
        assert any("serve" in p for p in problems)

    def test_serve_mode_does_not_require_pipeline_stages(self):
        # A serve report has no dataset/train/evaluate stages; the
        # pipeline requirements must not leak across modes.
        assert validate_bench_report(_minimal_serve_document()) == []

    @pytest.mark.parametrize("missing", [
        "requests_sent", "lost_requests", "throughput_nets_per_s",
        "latency_ms"])
    def test_missing_serve_result_field_rejected(self, missing):
        document = _minimal_serve_document()
        del document["results"]["serve"][missing]
        problems = validate_bench_report(document)
        assert any(missing in p for p in problems)

    def test_unknown_mode_rejected(self):
        document = _minimal_serve_document()
        document["workload"]["mode"] = "interpretive-dance"
        problems = validate_bench_report(document)
        assert any("mode" in p for p in problems)

    def test_pipeline_documents_keep_validating_without_mode_key(self):
        document = _minimal_document()
        assert "mode" not in document["workload"]
        assert validate_bench_report(document) == []


def _minimal_eco_document():
    from repro.obs import QUICK_ECO_WORKLOAD

    return {
        "schema": BENCH_SCHEMA,
        "created_utc": "2026-08-08T00:00:00Z",
        "environment": {"python": "3.12", "platform": "linux",
                        "numpy": "1.0", "mp_start_method": "fork",
                        "jobs": 1},
        "workload": QUICK_ECO_WORKLOAD.to_dict(),
        "stages": [{"name": "full_pass", "wall_s": 0.2, "cpu_s": 0.2},
                   {"name": "eco_replay", "wall_s": 0.05, "cpu_s": 0.05}],
        "results": {"eco": {
            "design": "WB_DMA", "paths": 16, "edits_applied": 5,
            "paths_retimed": 9, "stages_reused": 40,
            "full_pass_s": 0.2, "edit_replay_mean_s": 0.01,
            "edit_replay_max_s": 0.02, "speedup_vs_full": 20.0,
            "parity_ok": True, "parity_problems": 0}},
        "observability": {},
    }


class TestEcoModeValidator:
    def test_eco_document_is_valid(self):
        assert validate_bench_report(_minimal_eco_document()) == []

    def test_workload_dict_declares_eco_mode(self):
        from repro.obs import DEFAULT_ECO_WORKLOAD, QUICK_ECO_WORKLOAD

        assert QUICK_ECO_WORKLOAD.to_dict()["mode"] == "eco"
        assert DEFAULT_ECO_WORKLOAD.to_dict()["edits"] == 10

    def test_eco_mode_requires_both_stages(self):
        document = _minimal_eco_document()
        document["stages"] = [{"name": "full_pass", "wall_s": 0.2,
                               "cpu_s": 0.2}]
        problems = validate_bench_report(document)
        assert any("eco_replay" in p for p in problems)

    @pytest.mark.parametrize("missing", [
        "edits_applied", "edit_replay_mean_s", "speedup_vs_full",
        "parity_ok"])
    def test_missing_eco_result_field_rejected(self, missing):
        document = _minimal_eco_document()
        del document["results"]["eco"][missing]
        problems = validate_bench_report(document)
        assert any(missing in p for p in problems)

    def test_parity_violation_rejected(self):
        # A report whose incremental replay disagrees with the cold pass
        # must never validate — the speedup number would be meaningless.
        document = _minimal_eco_document()
        document["results"]["eco"]["parity_ok"] = False
        problems = validate_bench_report(document)
        assert any("parity" in p for p in problems)

    def test_eco_mode_does_not_require_pipeline_sections(self):
        assert "dataset" not in _minimal_eco_document()["results"]
        assert validate_bench_report(_minimal_eco_document()) == []


class TestEcoBenchRun:
    @pytest.fixture(scope="class")
    def document(self):
        from repro.obs import ECOBenchWorkload, run_eco_bench

        tiny = ECOBenchWorkload(name="eco-test", benchmark="WB_DMA",
                                scale=6000, sta_paths=8, edits=3)
        return run_eco_bench(tiny)

    def test_document_passes_schema_validation(self, document):
        assert validate_bench_report(document) == []

    def test_replay_is_faster_than_full_pass(self, document):
        eco = document["results"]["eco"]
        # The acceptance floor is 5x on the pinned workload; the tiny
        # CI design must still clearly beat the full pass.
        assert eco["speedup_vs_full"] > 1.0
        assert eco["edit_replay_mean_s"] < eco["full_pass_s"]

    def test_parity_checked_and_ok(self, document):
        eco = document["results"]["eco"]
        assert eco["parity_ok"] is True
        assert eco["parity_problems"] == 0

    def test_counters_exported(self, document):
        counters = document["observability"]["metrics"]["counters"]
        assert counters["incremental.edits_applied"] >= 3
        assert "incremental.stale_entries_dropped" in counters

    def test_summary_renders(self, document):
        from repro.obs import format_eco_summary

        text = format_eco_summary(document)
        assert "eco-test" in text and "parity ok" in text


class TestEcoBenchCliSmoke:
    def test_quick_eco_bench_writes_schema_valid_report(self, tmp_path,
                                                        capsys):
        code = main(["bench", "--eco", "--quick", "-o", str(tmp_path),
                     "--date", "2026-08-08"])
        assert code == 0
        document = json.load(open(tmp_path / "BENCH_2026-08-08.json"))
        assert validate_bench_report(document) == []
        assert document["workload"]["mode"] == "eco"
        out = capsys.readouterr().out
        assert "parity ok" in out

    def test_serve_and_eco_flags_conflict(self, capsys):
        assert main(["bench", "--serve", "--eco"]) == 2
