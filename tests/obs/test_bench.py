"""Bench workload: schema validation, filenames, and the CLI smoke test."""

import json
import os

import pytest

from repro.cli import main
from repro.obs import (BENCH_SCHEMA, QUICK_WORKLOAD, REQUIRED_STAGES,
                       bench_filename, format_bench_summary,
                       validate_bench_report, write_bench_report)


def _minimal_document():
    """Smallest document that passes ``validate_bench_report``."""
    return {
        "schema": BENCH_SCHEMA,
        "created_utc": "2026-08-05T00:00:00Z",
        "environment": {"python": "3.12", "platform": "linux",
                        "numpy": "1.0"},
        "workload": QUICK_WORKLOAD.to_dict(),
        "stages": [{"name": name, "wall_s": 1.0, "cpu_s": 1.0}
                   for name in REQUIRED_STAGES],
        "results": {
            "dataset": {},
            "train": {},
            "evaluate": {"r2_slew": 0.9, "r2_delay": 0.9,
                         "throughput_nets_per_s": 100.0},
            "sta": {"paths": 4, "gate_seconds": 1e-9, "wire_seconds": 1e-10,
                    "fallback_tiers": {}},
        },
        "observability": {},
    }


def _stage(document, name):
    return next(s for s in document["stages"] if s["name"] == name)


class TestValidator:
    def test_minimal_document_is_valid(self):
        assert validate_bench_report(_minimal_document()) == []

    def test_non_dict_rejected(self):
        problems = validate_bench_report([1, 2])
        assert problems and "object" in problems[0]

    def test_wrong_schema_id_rejected(self):
        document = _minimal_document()
        document["schema"] = "repro-bench/0"
        assert any("schema" in p for p in validate_bench_report(document))

    def test_missing_stage_rejected(self):
        document = _minimal_document()
        document["stages"] = [s for s in document["stages"]
                              if s["name"] != "train"]
        assert any("train" in p for p in validate_bench_report(document))

    def test_stage_without_timing_rejected(self):
        document = _minimal_document()
        del _stage(document, "sta")["wall_s"]
        assert any("sta" in p and "wall_s" in p
                   for p in validate_bench_report(document))

    def test_stage_with_negative_timing_rejected(self):
        document = _minimal_document()
        _stage(document, "dataset")["cpu_s"] = -1.0
        assert any("dataset" in p and "cpu_s" in p
                   for p in validate_bench_report(document))

    def test_missing_top_level_key_rejected(self):
        document = _minimal_document()
        del document["workload"]
        assert any("workload" in p for p in validate_bench_report(document))


class TestWriteBenchReport:
    def test_filename_uses_date_stamp(self):
        assert bench_filename("2026-08-05") == "BENCH_2026-08-05.json"

    def test_invalid_document_refused(self, tmp_path):
        with pytest.raises(ValueError, match="invalid bench report"):
            write_bench_report({"schema": "nope"}, out_dir=str(tmp_path))
        assert list(tmp_path.iterdir()) == []

    def test_valid_document_written(self, tmp_path):
        path = write_bench_report(_minimal_document(), out_dir=str(tmp_path),
                                  date="2026-01-02")
        assert os.path.basename(path) == "BENCH_2026-01-02.json"
        assert json.load(open(path))["schema"] == BENCH_SCHEMA

    def test_summary_renders_stages(self):
        text = format_bench_summary(_minimal_document())
        for name in REQUIRED_STAGES:
            assert name in text


class TestBenchCliSmoke:
    def test_quick_bench_writes_schema_valid_report(self, tmp_path, capsys):
        """End-to-end: ``repro bench --quick`` must emit a valid BENCH file."""
        code = main(["bench", "--quick", "-o", str(tmp_path),
                     "--date", "2026-08-05"])
        assert code == 0
        path = tmp_path / "BENCH_2026-08-05.json"
        assert path.exists()
        document = json.load(open(path))
        assert validate_bench_report(document) == []
        # Per-stage wall/CPU timings for every pipeline phase.
        for name in REQUIRED_STAGES:
            stage = _stage(document, name)
            assert stage["wall_s"] > 0.0
            assert stage["cpu_s"] >= 0.0
        # The workload is pinned so runs are comparable across PRs.
        assert document["workload"] == QUICK_WORKLOAD.to_dict()
        # Counters from the instrumented hot paths made it into the report.
        counters = document["observability"]["metrics"]["counters"]
        assert counters["simulator.nets_analyzed"] > 0
        assert counters["trainer.epochs_run"] == QUICK_WORKLOAD.epochs
        out = capsys.readouterr().out
        assert "wrote" in out and "BENCH_2026-08-05.json" in out


def _minimal_serve_document():
    from repro.serve.loadgen import QUICK_SERVE_WORKLOAD

    return {
        "schema": BENCH_SCHEMA,
        "created_utc": "2026-08-08T00:00:00Z",
        "environment": {"python": "3.12", "platform": "linux",
                        "numpy": "1.0", "mp_start_method": "fork",
                        "jobs": 1},
        "workload": QUICK_SERVE_WORKLOAD.to_dict(),
        "stages": [{"name": "serve", "wall_s": 1.0, "cpu_s": 1.0}],
        "results": {"serve": {
            "requests_sent": 24, "lost_requests": 0,
            "throughput_nets_per_s": 1000.0,
            "latency_ms": {"p50": 5.0, "p99": 20.0}}},
        "observability": {},
    }


class TestServeModeValidator:
    def test_serve_document_is_valid(self):
        assert validate_bench_report(_minimal_serve_document()) == []

    def test_serve_mode_requires_the_serve_stage(self):
        document = _minimal_serve_document()
        document["stages"] = [{"name": "dataset", "wall_s": 1.0,
                               "cpu_s": 1.0}]
        problems = validate_bench_report(document)
        assert any("serve" in p for p in problems)

    def test_serve_mode_does_not_require_pipeline_stages(self):
        # A serve report has no dataset/train/evaluate stages; the
        # pipeline requirements must not leak across modes.
        assert validate_bench_report(_minimal_serve_document()) == []

    @pytest.mark.parametrize("missing", [
        "requests_sent", "lost_requests", "throughput_nets_per_s",
        "latency_ms"])
    def test_missing_serve_result_field_rejected(self, missing):
        document = _minimal_serve_document()
        del document["results"]["serve"][missing]
        problems = validate_bench_report(document)
        assert any(missing in p for p in problems)

    def test_unknown_mode_rejected(self):
        document = _minimal_serve_document()
        document["workload"]["mode"] = "interpretive-dance"
        problems = validate_bench_report(document)
        assert any("mode" in p for p in problems)

    def test_pipeline_documents_keep_validating_without_mode_key(self):
        document = _minimal_document()
        assert "mode" not in document["workload"]
        assert validate_bench_report(document) == []
