"""Instrument atomicity: counters and histograms under thread contention.

``value += 1`` is a read-modify-write; without the instrument locks added
alongside the concurrency lint tier, two racing ``inc()`` calls can both
read the same old value and one update vanishes.  These tests drive
enough concurrent updates that a lost update is overwhelmingly likely to
surface as a wrong total.
"""

import threading

from repro.obs.metrics import Counter, Histogram, MetricRegistry

THREADS = 8
ITERATIONS = 5_000


def _run(worker):
    barrier = threading.Barrier(THREADS)

    def entry(index):
        barrier.wait(timeout=10.0)
        worker(index)

    threads = [threading.Thread(target=entry, args=(i,))
               for i in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert not any(t.is_alive() for t in threads)


def test_counter_increments_are_never_lost():
    counter = Counter("hammer.count")
    _run(lambda index: [counter.inc() for _ in range(ITERATIONS)])
    assert counter.snapshot() == THREADS * ITERATIONS


def test_counter_weighted_increments_sum_exactly():
    counter = Counter("hammer.weighted")
    _run(lambda index: [counter.inc(3) for _ in range(ITERATIONS)])
    assert counter.snapshot() == 3 * THREADS * ITERATIONS


def test_histogram_observation_count_is_exact():
    histogram = Histogram("hammer.hist")
    _run(lambda index: [histogram.observe(float(index))
                        for _ in range(ITERATIONS)])
    snap = histogram.snapshot()
    assert snap["count"] == THREADS * ITERATIONS
    # total = sum(index * ITERATIONS); the mean follows exactly because
    # float sums of small ints are exact.
    expected_total = sum(range(THREADS)) * ITERATIONS
    assert snap["sum"] == float(expected_total)
    assert snap["mean"] == expected_total / (THREADS * ITERATIONS)
    assert snap["min"] == 0.0
    assert snap["max"] == float(THREADS - 1)


def test_histogram_snapshot_is_internally_consistent_mid_storm():
    """Snapshots taken while observers run must be coherent: count, sum
    and mean from one locked read, never a torn mixture."""
    histogram = Histogram("hammer.snap")
    stop = threading.Event()
    torn = []

    def snapshotter():
        while not stop.is_set():
            snap = histogram.snapshot()
            if snap["count"]:
                if snap["mean"] != snap["sum"] / snap["count"]:
                    torn.append(snap)

    watcher = threading.Thread(target=snapshotter)
    watcher.start()
    try:
        _run(lambda index: [histogram.observe(1.0)
                            for _ in range(ITERATIONS)])
    finally:
        stop.set()
        watcher.join(timeout=30.0)
    assert torn == []
    assert histogram.snapshot()["count"] == THREADS * ITERATIONS


def test_registry_returns_one_instrument_per_name_under_races():
    registry = MetricRegistry()
    seen = []
    lock = threading.Lock()

    def worker(index):
        counter = registry.counter("shared.name")
        with lock:
            seen.append(counter)
        counter.inc()

    _run(worker)
    assert len({id(counter) for counter in seen}) == 1
    assert registry.counter("shared.name").snapshot() == THREADS


def test_registry_reset_races_with_increments():
    """reset() during a storm must not corrupt state: the final count
    after all threads finish and one more reset is exactly zero."""
    registry = MetricRegistry()
    counter = registry.counter("reset.target")
    stop = threading.Event()

    def resetter():
        while not stop.is_set():
            registry.reset()

    churn = threading.Thread(target=resetter)
    churn.start()
    try:
        _run(lambda index: [counter.inc() for _ in range(ITERATIONS)])
    finally:
        stop.set()
        churn.join(timeout=30.0)
    registry.reset()
    assert counter.snapshot() == 0
