"""Counter/gauge/histogram aggregation and registry snapshots."""

import math

from repro.obs import Counter, Gauge, Histogram, MetricRegistry


class TestCounter:
    def test_increments_aggregate(self):
        counter = Counter("events")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.snapshot() == 5

    def test_reset_zeroes(self):
        counter = Counter("events")
        counter.inc(7)
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_last_write_wins(self):
        gauge = Gauge("lr")
        assert gauge.snapshot() is None
        gauge.set(0.1)
        gauge.set(0.05)
        assert gauge.snapshot() == 0.05

    def test_reset_unsets(self):
        gauge = Gauge("lr")
        gauge.set(1.0)
        gauge.reset()
        assert gauge.snapshot() is None


class TestHistogram:
    def test_summary_statistics(self):
        hist = Histogram("sizes")
        for value in (2.0, 8.0, 32.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 42.0
        assert hist.min == 2.0
        assert hist.max == 32.0
        assert hist.mean == 14.0

    def test_power_of_two_buckets(self):
        hist = Histogram("sizes")
        hist.observe(3.0)    # 2 < 3 <= 4  -> bucket "2"
        hist.observe(4.0)    # exactly 4   -> bucket "2"
        hist.observe(5.0)    # 4 < 5 <= 8  -> bucket "3"
        hist.observe(0.0)    # non-positive bucket
        assert hist.buckets == {"2": 2, "3": 1, "<=0": 1}

    def test_empty_snapshot(self):
        snapshot = Histogram("empty").snapshot()
        assert snapshot["count"] == 0
        assert snapshot["min"] is None
        assert math.isnan(Histogram("empty").mean)

    def test_reset(self):
        hist = Histogram("sizes")
        hist.observe(1.0)
        hist.reset()
        assert hist.count == 0
        assert hist.buckets == {}
        assert hist.min == math.inf


class TestMetricRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.gauge("g") is registry.gauge("g")

    def test_snapshot_layout_and_omission_of_untouched(self):
        registry = MetricRegistry()
        registry.counter("hit").inc(3)
        registry.counter("untouched")
        registry.gauge("lr").set(0.01)
        registry.gauge("unset")
        registry.histogram("size").observe(16.0)
        registry.histogram("empty")
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"hit": 3}
        assert snapshot["gauges"] == {"lr": 0.01}
        assert list(snapshot["histograms"]) == ["size"]
        assert snapshot["histograms"]["size"]["count"] == 1

    def test_reset_zeroes_in_place_keeping_references(self):
        """Module-level cached instruments must survive registry resets."""
        registry = MetricRegistry()
        cached = registry.counter("module.cached")
        cached.inc(9)
        registry.reset()
        assert cached.value == 0
        cached.inc()
        assert registry.counter("module.cached").value == 1
        assert registry.counter("module.cached") is cached

    def test_snapshot_is_json_safe(self):
        import json

        registry = MetricRegistry()
        registry.counter("c").inc()
        registry.histogram("h").observe(2.5)
        json.dumps(registry.snapshot())  # must not raise
