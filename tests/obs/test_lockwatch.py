"""Runtime lock-order watchdog: env gate, inversion detection, Condition.

These are the dynamic twin of ``tests/lint/test_concurrency.py`` — the
static tier proves the source orders locks consistently, the watchdog
proves the *schedule* does.  The cross-check test at the bottom asserts
the two views compose: static edges plus observed edges stay acyclic.
"""

import threading

import pytest

from repro.obs import (WATCHDOG_ENV, LockOrderInversion, LockOrderWatchdog,
                       WatchedLock, named_lock, watchdog_enabled)


@pytest.fixture
def watchdog():
    return LockOrderWatchdog()


def _watched(name, watchdog, factory=threading.Lock):
    return WatchedLock(name, watchdog, factory)


# ----------------------------------------------------------------------
# The env gate
# ----------------------------------------------------------------------
def test_named_lock_is_plain_lock_by_default(monkeypatch):
    monkeypatch.delenv(WATCHDOG_ENV, raising=False)
    assert not watchdog_enabled()
    lock = named_lock("Thing._lock")
    assert not isinstance(lock, WatchedLock)
    with lock:  # full lock protocol, zero instrumentation
        assert lock.locked()


@pytest.mark.parametrize("value", ["1", "true", "yes", "on", "anything"])
def test_named_lock_is_watched_when_env_truthy(monkeypatch, value):
    monkeypatch.setenv(WATCHDOG_ENV, value)
    assert watchdog_enabled()
    lock = named_lock("Thing._lock")
    assert isinstance(lock, WatchedLock)
    assert lock.name == "Thing._lock"


@pytest.mark.parametrize("value", ["", "0", "false", "no", "off", " OFF "])
def test_falsey_env_values_keep_plain_locks(monkeypatch, value):
    monkeypatch.setenv(WATCHDOG_ENV, value)
    assert not watchdog_enabled()


# ----------------------------------------------------------------------
# Ordering
# ----------------------------------------------------------------------
def test_consistent_order_records_edge_and_never_raises(watchdog):
    a = _watched("A", watchdog)
    b = _watched("B", watchdog)
    for _ in range(3):
        with a:
            with b:
                pass
    assert set(watchdog.edges()) == {("A", "B")}


def test_inversion_raises_before_blocking(watchdog):
    a = _watched("A", watchdog)
    b = _watched("B", watchdog)
    with a:
        with b:
            pass
    with b:
        with pytest.raises(LockOrderInversion) as exc:
            with a:
                pass
        # Raised *before* acquiring: nothing left half-held.
    assert not a.locked()
    assert exc.value.outer == "B"
    assert exc.value.inner == "A"
    assert "A' -> 'B'" in str(exc.value)


def test_inversion_detected_across_threads(watchdog):
    """Thread 1 records A->B; thread 2's B->A attempt must raise even
    though the schedule never actually deadlocks (sequential phases)."""
    a = _watched("A", watchdog)
    b = _watched("B", watchdog)

    def record_forward():
        with a:
            with b:
                pass

    thread = threading.Thread(target=record_forward)
    thread.start()
    thread.join()

    caught = []

    def attempt_backward():
        try:
            with b:
                with a:
                    pass
        except LockOrderInversion as exc:
            caught.append(exc)

    thread = threading.Thread(target=attempt_backward)
    thread.start()
    thread.join()
    assert len(caught) == 1


def test_reentrant_rlock_is_not_an_edge(watchdog):
    lock = _watched("R", watchdog, factory=threading.RLock)
    with lock:
        with lock:
            pass
    assert watchdog.edges() == {}


def test_nonblocking_acquire_skips_the_check(watchdog):
    """try-lock idioms must not raise: a failed try-acquire cannot
    deadlock, and a successful one is still recorded as an edge."""
    a = _watched("A", watchdog)
    b = _watched("B", watchdog)
    with a:
        with b:
            pass
    with b:
        assert a.acquire(blocking=False)
        a.release()
    assert ("B", "A") in watchdog.edges()


def test_release_pops_matching_entry_and_reset_clears(watchdog):
    a = _watched("A", watchdog)
    b = _watched("B", watchdog)
    a.acquire()
    b.acquire()
    a.release()  # out-of-order release: pops A, keeps B held
    with _watched("C", watchdog):
        pass
    b.release()
    assert ("B", "C") in watchdog.edges()
    assert ("A", "C") not in watchdog.edges()
    watchdog.reset()
    assert watchdog.edges() == {}


# ----------------------------------------------------------------------
# Condition compatibility
# ----------------------------------------------------------------------
def test_condition_over_watched_lock_round_trips(watchdog):
    lock = _watched("Queue._lock", watchdog)
    cond = threading.Condition(lock)  # type: ignore[arg-type]
    items = []

    def producer():
        with cond:
            items.append(1)
            cond.notify()

    with cond:
        thread = threading.Thread(target=producer)
        thread.start()
        # wait() exercises _release_save/_acquire_restore/_is_owned.
        assert cond.wait_for(lambda: items, timeout=5.0)
    thread.join()
    assert items == [1]
    assert not lock.locked()


def test_condition_wait_keeps_held_stack_consistent(watchdog):
    outer = _watched("Outer", watchdog)
    lock = _watched("Queue._lock", watchdog)
    cond = threading.Condition(lock)  # type: ignore[arg-type]

    def producer():
        with cond:
            cond.notify_all()

    with cond:
        thread = threading.Thread(target=producer)
        thread.start()
        cond.wait(timeout=5.0)
    thread.join()
    # After the wait dance, this thread holds nothing: taking Outer must
    # not record a Queue._lock -> Outer edge.
    with outer:
        pass
    assert ("Queue._lock", "Outer") not in watchdog.edges()
