"""JSONL trace round-trip, profile aggregation, JSON documents."""

import json

import pytest

from repro.obs import (MetricRegistry, Tracer, aggregate_spans, dump_json,
                       format_profile, load_trace, observability_document,
                       write_trace)


def _traced(n_outer=3, n_inner=2):
    tracer = Tracer(enabled=True)
    for i in range(n_outer):
        with tracer.span("outer", index=i):
            for _ in range(n_inner):
                with tracer.span("inner", net=f"n{i}"):
                    pass
    return tracer


class TestJsonlRoundTrip:
    def test_write_then_load_preserves_spans(self, tmp_path):
        tracer = _traced()
        path = str(tmp_path / "trace.jsonl")
        written = write_trace(tracer.spans, path)
        assert written == len(tracer.spans) == 9
        assert load_trace(path) == tracer.spans

    def test_load_skips_blank_lines(self, tmp_path):
        tracer = _traced(1, 0)
        path = str(tmp_path / "trace.jsonl")
        write_trace(tracer.spans, path)
        with open(path, "a") as handle:
            handle.write("\n\n")
        assert len(load_trace(path)) == 1

    def test_malformed_line_raises_with_line_number(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w") as handle:
            handle.write('{"name": "ok", "wall_s": 1.0, "cpu_s": 1.0}\n')
            handle.write("not json\n")
        with pytest.raises(ValueError, match=":2:"):
            load_trace(path)

    def test_numpy_attrs_serialize(self, tmp_path):
        import numpy as np

        tracer = Tracer(enabled=True)
        with tracer.span("s", size=np.int64(5), value=np.float64(1.5)):
            pass
        path = str(tmp_path / "np.jsonl")
        write_trace(tracer.spans, path)
        attrs = load_trace(path)[0].attrs
        assert attrs == {"size": 5, "value": 1.5}


class TestAggregation:
    def test_counts_and_totals(self):
        tracer = _traced(3, 2)
        profiles = aggregate_spans(tracer.spans)
        assert profiles["inner"].count == 6
        assert profiles["outer"].count == 3
        # Children are fully contained in their parents.
        assert profiles["outer"].wall_s >= profiles["inner"].wall_s
        assert profiles["outer"].max_wall_s >= profiles["outer"].mean_wall_s

    def test_format_profile_lists_stages(self):
        text = format_profile(aggregate_spans(_traced().spans))
        assert "outer" in text and "inner" in text

    def test_format_profile_empty(self):
        assert "no spans recorded" in format_profile({})


class TestObservabilityDocument:
    def test_document_layout(self):
        tracer = _traced()
        registry = MetricRegistry()
        registry.counter("nets").inc(12)
        document = observability_document(tracer, registry,
                                          extra={"design": "WB_DMA"})
        assert document["design"] == "WB_DMA"
        assert document["spans_recorded"] == 9
        assert document["spans_dropped"] == 0
        assert document["metrics"]["counters"] == {"nets": 12}
        assert document["stages"]["inner"]["count"] == 6
        json.dumps(document)  # JSON-safe

    def test_dump_json_writes_file(self, tmp_path):
        path = str(tmp_path / "doc.json")
        text = dump_json({"a": 1}, path=path)
        assert json.loads(text) == {"a": 1}
        assert json.loads(open(path).read()) == {"a": 1}
