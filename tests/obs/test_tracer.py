"""Tracer behaviour: nesting, provenance, disabled no-op, env hook."""

import json

import pytest

from repro.obs import (NULL_SPAN, Span, Tracer, configure_from_env,
                       get_tracer)


class TestSpanNesting:
    def test_depth_and_parent_recorded(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["outer"].depth == 0
        assert by_name["outer"].parent is None
        assert by_name["middle"].depth == 1
        assert by_name["middle"].parent == "outer"
        assert by_name["inner"].depth == 2
        assert by_name["inner"].parent == "middle"

    def test_children_finish_before_parents(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_sibling_spans_share_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b = (s for s in tracer.spans if s.name in "ab")
        assert a.parent == b.parent == "outer"
        assert a.depth == b.depth == 1

    def test_current_depth_tracks_open_spans(self):
        tracer = Tracer(enabled=True)
        assert tracer.current_depth == 0
        with tracer.span("outer"):
            assert tracer.current_depth == 1
        assert tracer.current_depth == 0

    def test_stack_unwinds_on_exception(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.span("fails"):
                raise RuntimeError("boom")
        assert tracer.current_depth == 0
        assert tracer.spans[-1].name == "fails"  # still recorded


class TestSpanTimingAndAttrs:
    def test_wall_and_cpu_time_nonnegative(self):
        tracer = Tracer(enabled=True)
        with tracer.span("work"):
            sum(range(1000))
        span = tracer.spans[0]
        assert span.wall_s >= 0.0
        assert span.cpu_s >= 0.0

    def test_provenance_attrs(self):
        tracer = Tracer(enabled=True)
        with tracer.span("simulate.net", net="n42", design="WB_DMA") as span:
            span.set(sinks=3)
        recorded = tracer.spans[0]
        assert recorded.attrs == {"net": "n42", "design": "WB_DMA",
                                  "sinks": 3}

    def test_to_dict_round_trip(self):
        tracer = Tracer(enabled=True)
        with tracer.span("stage", net="n1"):
            pass
        original = tracer.spans[0]
        restored = Span.from_dict(
            json.loads(json.dumps(original.to_dict())))
        assert restored == original


class TestDisabledTracer:
    def test_disabled_span_is_shared_null_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything", net="x") is NULL_SPAN

    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert tracer.spans == []
        assert tracer.current_depth == 0

    def test_null_span_set_is_noop(self):
        with Tracer(enabled=False).span("x") as span:
            assert span.set(net="n") is span

    def test_enable_disable_toggles_recording(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("on"):
            pass
        tracer.disable()
        with tracer.span("off"):
            pass
        assert [s.name for s in tracer.spans] == ["on"]


class TestBufferBound:
    def test_overflow_drops_oldest(self):
        tracer = Tracer(enabled=True, max_spans=5)
        for i in range(8):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.spans) == 5
        assert tracer.dropped == 3
        assert [s.name for s in tracer.spans] == [f"s{i}" for i in range(3, 8)]

    def test_reset_clears_buffer_and_dropped(self):
        tracer = Tracer(enabled=True, max_spans=2)
        for i in range(4):
            with tracer.span(f"s{i}"):
                pass
        tracer.reset()
        assert tracer.spans == []
        assert tracer.dropped == 0

    def test_max_spans_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)


class TestEnvHook:
    def test_unset_env_leaves_tracer_alone(self):
        assert configure_from_env(environ={}) is False

    def test_env_var_enables_global_tracer_with_jsonl(self, tmp_path):
        trace_path = str(tmp_path / "trace.jsonl")
        tracer = get_tracer()
        assert configure_from_env(environ={"REPRO_TRACE": trace_path}) is True
        assert tracer.enabled
        with tracer.span("streamed", net="n1"):
            pass
        tracer.close()
        lines = [json.loads(line) for line in
                 open(trace_path).read().splitlines() if line]
        assert any(record["name"] == "streamed" for record in lines)
