"""Fixtures for the observability suite: isolate global tracer/metrics."""

import pytest

from repro.obs import get_metrics, get_tracer


@pytest.fixture(autouse=True)
def _isolate_observability_state():
    """Save/restore the global tracer and zero the metric registry.

    The obs tests (and the CLI commands they drive) flip the process-wide
    tracer on and off; without this fixture that state would leak into
    unrelated tests in the same session.
    """
    tracer = get_tracer()
    was_enabled = tracer.enabled
    yield
    tracer.enabled = was_enabled
    tracer.reset()
    tracer.close()
    get_metrics().reset()
