"""The live HTTP front: endpoints, typed wire errors, drain behavior."""

import http.client
import json

from repro.serve.protocol import PROTOCOL_SCHEMA, decode_response

from .conftest import make_request


def _get(handle, path):
    connection = http.client.HTTPConnection("127.0.0.1", handle.port,
                                            timeout=10.0)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def _post(handle, path, body, headers=None):
    connection = http.client.HTTPConnection("127.0.0.1", handle.port,
                                            timeout=10.0)
    try:
        connection.request("POST", path, body=body,
                           headers=headers
                           or {"Content-Type": "application/json"})
        response = connection.getresponse()
        return response.status, response.read(), dict(response.getheaders())
    finally:
        connection.close()


class TestProbesOverHTTP:
    def test_health_and_ready_on_fresh_server(self, live_server):
        status, document = _get(live_server, "/healthz")
        assert status == 200 and document["healthy"] is True
        assert document["schema"] == PROTOCOL_SCHEMA
        status, document = _get(live_server, "/readyz")
        assert status == 200 and document["ready"] is True

    def test_metrics_endpoint_returns_snapshot(self, live_server):
        status, snapshot = _get(live_server, "/metrics")
        assert status == 200 and isinstance(snapshot, dict)

    def test_unknown_paths_are_404(self, live_server):
        status, _ = _get(live_server, "/nope")
        assert status == 404
        status, _, _ = _post(live_server, "/nope", b"{}")
        assert status == 404


class TestTimingEndpoint:
    def test_round_trip_serves_every_query(self, live_server):
        request = make_request(3, deadline_ms=5000.0, request_id="http-1")
        status, body, _ = _post(live_server, "/v1/timing", request.encode())
        assert status == 200
        response = decode_response(body)
        assert response.ok and response.request_id == "http-1"
        assert len(response.results) == 3
        assert all(r.ok for r in response.results)

    def test_malformed_body_is_typed_400(self, live_server):
        status, body, _ = _post(live_server, "/v1/timing", b"not json")
        assert status == 400
        response = decode_response(body)
        assert response.error["type"] == "InputError"
        assert response.error["provenance"]["stage"] == "protocol"

    def test_wrong_schema_version_is_typed_400(self, live_server):
        payload = json.dumps({"schema": "repro-serve/999",
                              "queries": []}).encode()
        status, body, _ = _post(live_server, "/v1/timing", payload)
        assert status == 400
        assert b"repro-serve/1" in body

    def test_oversized_body_rejected_without_reading(self, live_server):
        status, body, _ = _post(
            live_server, "/v1/timing", b"",
            headers={"Content-Type": "application/json",
                     "Content-Length": str(512 * 1024 * 1024)})
        assert status == 413
        response = decode_response(body)
        assert response.error["type"] == "OverloadError"


class TestDrain:
    def test_drain_endpoint_flips_readiness_and_rejects(self, live_server):
        status, document = _post(live_server, "/drain", b"")[0:2], None
        assert status[0] == 202
        status, document = _get(live_server, "/readyz")
        assert status == 503 and document["ready"] is False
        # Still healthy (the process should live through the drain)...
        status, document = _get(live_server, "/healthz")
        assert status == 200 and document["healthy"] is True
        # ...but new work gets typed backpressure, not silence.
        request = make_request(1)
        status, body, headers = _post(live_server, "/v1/timing",
                                      request.encode())
        assert status == 429
        response = decode_response(body)
        assert response.error["type"] == "OverloadError"
        assert "Retry-After" in headers
