"""Lifecycle: probe semantics, drain transitions, supervised respawn."""

import threading
import time

import pytest

from repro.serve.lifecycle import (DRAINING, READY, STARTING, STOPPED,
                                   Lifecycle, WorkerSupervisor,
                                   install_sigterm_drain)


class TestProbes:
    def test_starting_is_healthy_but_not_ready(self):
        lifecycle = Lifecycle()
        assert lifecycle.state == STARTING
        assert lifecycle.healthy() and not lifecycle.ready()

    def test_ready_after_mark(self):
        lifecycle = Lifecycle()
        lifecycle.mark_ready()
        assert lifecycle.state == READY
        assert lifecycle.ready() and lifecycle.healthy()

    def test_drain_revokes_readiness_keeps_liveness(self):
        lifecycle = Lifecycle()
        lifecycle.mark_ready()
        lifecycle.begin_drain()
        assert lifecycle.state == DRAINING
        assert not lifecycle.ready()
        assert lifecycle.healthy()      # keep the process, stop routing

    def test_stopped_is_neither(self):
        lifecycle = Lifecycle()
        lifecycle.mark_stopped()
        assert not lifecycle.ready() and not lifecycle.healthy()
        lifecycle.begin_drain()          # drain after stop is a no-op
        assert lifecycle.state == STOPPED

    def test_dead_workers_make_ready_service_unhealthy(self):
        lifecycle = Lifecycle()
        lifecycle.mark_ready()
        assert not lifecycle.healthy(workers_alive=False)

    def test_snapshot_reports_state_and_age(self):
        lifecycle = Lifecycle()
        snap = lifecycle.snapshot()
        assert snap["state"] == STARTING and snap["since_s"] >= 0.0


class TestSigterm:
    def test_installs_in_main_thread_and_reports_elsewhere(self):
        # Installing from a non-main thread must *report* failure, never
        # raise — embedders without signal access still get a server.
        outcome = {}

        def attempt():
            outcome["ok"] = install_sigterm_drain(lambda: None)

        thread = threading.Thread(target=attempt)
        thread.start()
        thread.join()
        assert outcome["ok"] is False


class TestSupervisor:
    def test_spawns_requested_workers(self):
        started = []
        release = threading.Event()

        def loop(worker_id):
            started.append(worker_id)
            release.wait(5.0)

        supervisor = WorkerSupervisor(loop, workers=3)
        supervisor.start()
        deadline = time.monotonic() + 2.0
        while len(started) < 3 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert sorted(started) == [0, 1, 2]
        assert supervisor.alive_count() == 3
        release.set()
        supervisor.stop(join_timeout=2.0)
        assert supervisor.restarts == 0

    def test_crash_respawns_until_budget_exhausted(self):
        lives = []

        def loop(worker_id):
            lives.append(worker_id)
            if supervisor.report_crash(worker_id, "synthetic"):
                return
            return

        supervisor = WorkerSupervisor(loop, workers=1, max_restarts=3)
        supervisor.start()
        deadline = time.monotonic() + 2.0
        while supervisor.restarts < 3 and time.monotonic() < deadline:
            time.sleep(0.01)
        supervisor.stop(join_timeout=2.0)
        assert supervisor.restarts == 3          # budget fully consumed
        assert len(lives) == 4                   # original + 3 respawns
        # Post-stop crash reports must not spawn.
        assert supervisor.report_crash(99, "late") is False
        assert supervisor.restarts == 3

    def test_snapshot_shape(self):
        supervisor = WorkerSupervisor(lambda worker_id: None, workers=2,
                                      max_restarts=5)
        snap = supervisor.snapshot()
        assert snap == {"workers": 2, "alive": 0, "restarts": 0,
                        "max_restarts": 5}

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            WorkerSupervisor(lambda worker_id: None, workers=0)
