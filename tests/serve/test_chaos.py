"""The chaos gate: injected faults against a LIVE service, zero lost requests.

Every scenario starts a real service (worker threads + HTTP front on an
ephemeral port), fires concurrent client load while a fault is active,
and asserts the zero-lost-request invariant: every request submitted
terminates in exactly one of the typed outcomes — a prediction (possibly
degraded, with provenance), a typed taxonomy error, or a client-side
transport failure.  No fourth bucket, no silent drops.

Faults injected: a pathologically slow tier, corrupted parasitics on the
wire, a NaN-weights model tier, worker crashes mid-batch, and an
overload storm against a tiny queue.
"""

import threading

import numpy as np

from repro.design.sta import AWEWireModel
from repro.robustness.faultinject import FaultInjector
from repro.serve.client import RetryPolicy, ServeClientError, TimingClient
from repro.serve.engine import EstimationEngine
from repro.serve.protocol import ServeRequest, TimingQuery, net_to_dict
from repro.serve.server import ServeConfig, start_server
from repro.serve.admission import AdmissionConfig

from .conftest import make_queries

OUTCOME_KEYS = ("ok", "degraded", "rejected", "deadline", "error",
                "transport")


def fire(port, request_batches, max_attempts=1, timeout_s=30.0):
    """Concurrent closed-loop clients; returns the terminal-outcome census.

    One thread per batch; every ``submit`` is tallied into exactly one
    outcome bucket.  The census total equals the number of requests sent
    by construction *of the client contract* — the assertion that makes
    this a gate is ``assert census totals == sent`` in each test.
    """
    census = {key: 0 for key in OUTCOME_KEYS}
    responses = []
    lock = threading.Lock()

    def client_loop(batch):
        client = TimingClient(
            host="127.0.0.1", port=port, timeout_s=timeout_s,
            policy=RetryPolicy(max_attempts=max_attempts,
                               base_backoff_s=0.01))
        for request in batch:
            try:
                response = client.submit(request)
            except ServeClientError:
                with lock:
                    census["transport"] += 1
                continue
            with lock:
                responses.append(response)
                if response.ok:
                    if any(r.degraded for r in response.results):
                        census["degraded"] += 1
                    else:
                        census["ok"] += 1
                else:
                    kind = (response.error or {}).get("type")
                    if kind == "OverloadError":
                        census["rejected"] += 1
                    elif kind == "DeadlineError":
                        census["deadline"] += 1
                    else:
                        census["error"] += 1

    threads = [threading.Thread(target=client_loop, args=(batch,))
               for batch in request_batches]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return census, responses


def batches(clients, per_client, nets=2, deadline_ms=10_000.0, seed0=20):
    return [[ServeRequest(queries=make_queries(nets, seed=seed0 + c * 97
                                               + r),
                          deadline_ms=deadline_ms,
                          request_id=f"c{c}r{r}")
             for r in range(per_client)]
            for c in range(clients)]


def assert_zero_lost(census, sent):
    answered = sum(census.values())
    assert answered == sent, (
        f"lost {sent - answered} of {sent} requests: {census}")


def assert_total_termination(responses):
    """Every query of every answered request has exactly one outcome."""
    for response in responses:
        if response.ok:
            for result in response.results:
                assert result.ok or (
                    isinstance(result.error, dict)
                    and "type" in result.error)
        else:
            assert isinstance(response.error, dict)
            assert "type" in response.error


class TestSlowTierChaos:
    def test_stalling_tier_degrades_but_never_loses(self):
        injector = FaultInjector(seed=5)
        # Every third call through the slow tier stalls well past the
        # per-net budget; the chain must time it out and degrade.
        engine = EstimationEngine(
            net_timeout=0.05,
            extra_tiers=[injector.slow_tier(AWEWireModel(), delay_s=0.25,
                                            every=3)])
        handle = start_server(ServeConfig(port=0, workers=2), engine=engine)
        try:
            load = batches(clients=4, per_client=4)
            census, responses = fire(handle.port, load, max_attempts=2)
        finally:
            handle.stop(drain=False, timeout=10.0)
        assert_zero_lost(census, 16)
        assert_total_termination(responses)
        assert census["ok"] + census["degraded"] + census["deadline"] == 16


class TestCorruptedNetChaos:
    def test_poisoned_parasitics_answered_with_typed_outcomes(self):
        injector = FaultInjector(seed=9)
        clean = make_queries(2, seed=31)
        load = []
        for c in range(3):
            requests = []
            for r in range(4):
                queries = make_queries(2, seed=200 + c * 13 + r)
                if r % 2 == 0:
                    mode = ("nan_resistance", "nan_cap", "inf_cap",
                            "negative_resistance")[(c + r) % 4]
                    bad = injector.corrupt_rc_values(queries[0].net,
                                                     mode=mode)
                    queries[0] = TimingQuery(
                        net=bad, input_slew_s=queries[0].input_slew_s,
                        drive_resistance_ohm=queries[
                            0].drive_resistance_ohm)
                requests.append(ServeRequest(
                    queries=queries + clean, deadline_ms=10_000.0,
                    request_id=f"corrupt-{c}-{r}"))
            load.append(requests)
        handle = start_server(ServeConfig(port=0, workers=2))
        try:
            census, responses = fire(handle.port, load)
        finally:
            handle.stop(drain=False, timeout=10.0)
        assert_zero_lost(census, 12)
        assert_total_termination(responses)
        # Corruption must never look like success-without-provenance:
        # each poisoned request either failed parse (typed InputError,
        # counted under "error") or came back degraded/served through
        # the ladder.
        assert census["transport"] == 0

    def test_wire_level_garbage_net_is_typed_not_dropped(self, live_server):
        import http.client
        import json

        query = make_queries(1, seed=40)[0]
        doc = net_to_dict(query.net)
        doc["edges"][0] = [0, 99, 100.0]      # dangling node index
        payload = json.dumps({
            "schema": "repro-serve/1",
            "queries": [{"net": doc, "input_slew_s": 1e-11,
                         "drive_resistance_ohm": 100.0}]}).encode()
        connection = http.client.HTTPConnection("127.0.0.1",
                                                live_server.port,
                                                timeout=10.0)
        try:
            connection.request("POST", "/v1/timing", body=payload)
            response = connection.getresponse()
            body = json.loads(response.read())
        finally:
            connection.close()
        assert response.status == 400
        assert body["error"]["type"] == "InputError"


class TestNaNWeightsChaos:
    def test_nan_model_tier_degrades_every_request(self):
        class _NaNWeightsTier:
            name = "poisoned-learned"

            def wire_timing(self, net, input_slew, sink_loads,
                            drive_resistance, context=None):
                n = net.num_sinks
                return (np.full(n, float("nan")),
                        np.full(n, float("nan")))

        engine = EstimationEngine(extra_tiers=[_NaNWeightsTier()])
        handle = start_server(ServeConfig(port=0, workers=2), engine=engine)
        try:
            load = batches(clients=3, per_client=4)
            census, responses = fire(handle.port, load)
        finally:
            handle.stop(drain=False, timeout=10.0)
        assert_zero_lost(census, 12)
        assert_total_termination(responses)
        # The NaN tier can never serve: every answered prediction must
        # carry degradation provenance naming it.
        for response in responses:
            assert response.ok
            for result in response.results:
                assert result.ok
                assert np.isfinite(result.delays_s).all()
                if not result.cached:
                    assert any(f["tier"] == "poisoned-learned"
                               for f in result.failures)


class TestWorkerCrashChaos:
    def test_crashing_workers_respawn_and_answers_keep_flowing(self):
        crash_every = 7
        calls = [0]
        call_lock = threading.Lock()

        class _CrashingTier:
            """Takes down its whole worker thread every N-th net."""

            name = "crashy"

            def wire_timing(self, net, input_slew, sink_loads,
                            drive_resistance, context=None):
                with call_lock:
                    calls[0] += 1
                    count = calls[0]
                if count % crash_every == 0:
                    raise SystemExit("chaos: worker killed mid-batch")
                n = net.num_sinks
                return np.full(n, 2e-12), np.full(n, 3e-12)

        engine = EstimationEngine(extra_tiers=[_CrashingTier()],
                                  cache_size=0)
        handle = start_server(
            ServeConfig(port=0, workers=2, max_restarts=64), engine=engine)
        try:
            load = batches(clients=4, per_client=5)
            census, responses = fire(handle.port, load)
            restarts = handle.service.supervisor.restarts
        finally:
            handle.stop(drain=False, timeout=10.0)
        assert_zero_lost(census, 20)
        assert_total_termination(responses)
        assert restarts >= 1                 # the supervisor earned its keep
        # Crash recovery serves on the terminal tier: some answers are
        # degraded, none are lost.
        assert census["ok"] + census["degraded"] == 20


class TestOverloadChaos:
    def test_storm_against_tiny_queue_rejects_honestly(self):
        class _GlacialTier:
            name = "glacial"

            def wire_timing(self, net, input_slew, sink_loads,
                            drive_resistance, context=None):
                import time

                time.sleep(0.05)
                n = net.num_sinks
                return np.full(n, 2e-12), np.full(n, 3e-12)

        engine = EstimationEngine(extra_tiers=[_GlacialTier()],
                                  net_timeout=None, cache_size=0)
        config = ServeConfig(
            port=0, workers=1,
            admission=AdmissionConfig(max_queue=2, shed_depth=1,
                                      shed_hard_depth=2,
                                      default_deadline_s=5.0))
        handle = start_server(config, engine=engine)
        try:
            load = batches(clients=8, per_client=4, nets=1,
                           deadline_ms=5000.0)
            census, responses = fire(handle.port, load)
        finally:
            handle.stop(drain=False, timeout=10.0)
        assert_zero_lost(census, 32)
        assert_total_termination(responses)
        # The storm must produce real backpressure, and the queue bound
        # means most of the flood is answered *somehow* — shed tiers,
        # rejections, or deadline errors — never buffered into oblivion.
        assert census["rejected"] > 0
        assert census["ok"] + census["degraded"] > 0


class TestDrainUnderLoad:
    def test_mid_load_drain_loses_nothing(self):
        handle = start_server(ServeConfig(port=0, workers=2))
        load = batches(clients=3, per_client=6, nets=1)

        def delayed_drain():
            handle.service.drain()

        try:
            drainer = threading.Timer(0.05, delayed_drain)
            drainer.start()
            census, responses = fire(handle.port, load)
            drainer.join()
        finally:
            handle.stop(drain=True, timeout=10.0)
        assert_zero_lost(census, 18)
        assert_total_termination(responses)
        # Requests racing the drain split between served and rejected;
        # both are terminal, neither is silence.
        served = census["ok"] + census["degraded"]
        assert served + census["rejected"] + census["deadline"] == 18


class TestLockWatchdogChaos:
    """The runtime half of ``lint --concurrency``: a chaos-shaped load with
    every named lock instrumented.  Two assertions make this a gate —
    the run itself stays inversion-free (an inversion raises inside a
    worker and would surface as lost/error outcomes), and the observed
    acquisition orders compose acyclically with the *static* lock graph,
    so neither view hides a deadlock the other would catch."""

    def test_watchdog_chaos_run_is_inversion_free_and_acyclic(
            self, monkeypatch):
        from pathlib import Path

        from repro.lint import build_lock_graph
        from repro.obs import WATCHDOG_ENV, get_lock_watchdog
        from repro.obs.lockwatch import WatchedLock

        monkeypatch.setenv(WATCHDOG_ENV, "1")
        watchdog = get_lock_watchdog()
        watchdog.reset()
        # Construct the engine AFTER flipping the env: the gate is read at
        # lock-creation time, so only post-flip structures are watched.
        engine = EstimationEngine()
        assert isinstance(engine.cache._lock, WatchedLock)
        handle = start_server(ServeConfig(port=0, workers=2), engine=engine)
        try:
            load = batches(clients=4, per_client=4)
            census, responses = fire(handle.port, load)
        finally:
            handle.stop(drain=True, timeout=10.0)
            observed = set(watchdog.edges())
            watchdog.reset()
        assert_zero_lost(census, 16)
        assert_total_termination(responses)
        assert census["ok"] + census["degraded"] == 16
        # Watched locks are leaf-like by design (the only locks nested
        # inside them are the deliberately-plain instrument locks), so an
        # empty observed-edge set is the *expected* healthy outcome — but
        # it is also what a dead watchdog would report.  Disambiguate by
        # probing: a nested acquisition on fresh named locks, created
        # under the same env gate, must be recorded.
        from repro.obs import named_lock

        probe_outer = named_lock("chaos.probe_outer")
        probe_inner = named_lock("chaos.probe_inner")
        assert isinstance(probe_outer, WatchedLock)
        try:
            with probe_outer:
                with probe_inner:
                    pass
            assert ("chaos.probe_outer",
                    "chaos.probe_inner") in watchdog.edges()
        finally:
            watchdog.reset()

        repo = Path(__file__).resolve().parents[2]
        static = build_lock_graph([str(repo / "src" / "repro")])
        combined = set(static.edges) | observed
        adjacency = {}
        for outer, inner in combined:
            adjacency.setdefault(outer, set()).add(inner)

        def reaches(start, goal, seen):
            for nxt in adjacency.get(start, ()):
                if nxt == goal:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    if reaches(nxt, goal, seen):
                        return True
            return False

        for outer, inner in sorted(combined):
            assert not reaches(inner, outer, {inner}), (
                f"static+observed lock orders form a cycle through "
                f"{outer} -> {inner}")
