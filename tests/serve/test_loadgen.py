"""``repro bench --serve``: census integrity, schema, comparison rules."""

import copy
import importlib.util
import os

import pytest

from repro.obs.bench import validate_bench_report
from repro.serve.loadgen import (OUTCOMES, QUICK_SERVE_WORKLOAD,
                                 SINGLE_SHOT_BASELINE_NETS_PER_S,
                                 THROUGHPUT_SERVE_WORKLOAD, ServeWorkload,
                                 _build_pool, _build_requests,
                                 format_serve_summary, run_serve_bench)

_TOOLS = os.path.join(os.path.dirname(__file__), "..", "..", "tools",
                      "compare_bench_results.py")


def _compare_module():
    spec = importlib.util.spec_from_file_location("compare_bench", _TOOLS)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestWorkloadDeterminism:
    def test_pool_is_deterministic_from_seed(self):
        workload = ServeWorkload(name="d", clients=2, requests_per_client=2,
                                 nets_per_request=2, unique_queries=8)
        a, b = _build_pool(workload), _build_pool(workload)
        assert len(a) == len(b) == 8
        assert [q.cache_key() for q in a] == [q.cache_key() for q in b]

    def test_cold_workload_queries_are_disjoint_per_client(self):
        workload = ServeWorkload(name="cold", clients=2,
                                 requests_per_client=2, nets_per_request=3)
        pool = _build_pool(workload)
        seen = set()
        for c in range(workload.clients):
            for request in _build_requests(workload, c, pool):
                for query in request.queries:
                    key = query.cache_key()
                    assert key not in seen
                    seen.add(key)

    def test_finite_pool_redraws_with_replacement(self):
        workload = ServeWorkload(name="warm", clients=1,
                                 requests_per_client=8, nets_per_request=8,
                                 unique_queries=4)
        pool = _build_pool(workload)
        keys = {q.cache_key()
                for request in _build_requests(workload, 0, pool)
                for q in request.queries}
        assert len(keys) <= 4

    def test_workload_dict_declares_serve_mode(self):
        doc = QUICK_SERVE_WORKLOAD.to_dict()
        assert doc["mode"] == "serve"
        assert doc["name"] == "serve-quick"
        assert THROUGHPUT_SERVE_WORKLOAD.to_dict()["unique_queries"] == 128


class TestBenchRun:
    @pytest.fixture(scope="class")
    def document(self):
        tiny = ServeWorkload(name="serve-test", clients=2,
                             requests_per_client=3, nets_per_request=2,
                             net_nodes=(5, 9), workers=2)
        return run_serve_bench(tiny)

    def test_zero_lost_and_census_total(self, document):
        serve = document["results"]["serve"]
        assert serve["lost_requests"] == 0
        assert sum(serve["outcomes"].values()) == serve["requests_sent"] == 6
        assert set(serve["outcomes"]) == set(OUTCOMES)

    def test_document_passes_schema_validation(self, document):
        assert validate_bench_report(document) == []

    def test_environment_block_records_execution_config(self, document):
        env = document["environment"]
        assert "mp_start_method" in env and "jobs" in env
        assert env["jobs"] == 1

    def test_speedup_is_relative_to_pinned_baseline(self, document):
        serve = document["results"]["serve"]
        assert (serve["single_shot_baseline_nets_per_s"]
                == SINGLE_SHOT_BASELINE_NETS_PER_S)
        assert serve["speedup_vs_single_shot"] == pytest.approx(
            serve["throughput_nets_per_s"]
            / SINGLE_SHOT_BASELINE_NETS_PER_S)

    def test_summary_renders(self, document):
        text = format_serve_summary(document)
        assert "serve-test" in text and "latency p50/p90/p99" in text


class TestCompareTool:
    @pytest.fixture()
    def serve_doc(self):
        return {
            "workload": {"mode": "serve", "name": "t", "workers": 4,
                         "jobs": 1},
            "environment": {"mp_start_method": "fork", "jobs": 1},
            "results": {"serve": {
                "requests_sent": 10, "lost_requests": 0,
                "nets_requested": 80,
                "single_shot_baseline_nets_per_s": 913.0,
                "throughput_nets_per_s": 5000.0,
                "latency_ms": {"p50": 40.0}}}}

    def test_pipeline_reports_stay_jobs_invariant(self):
        compare = _compare_module()
        a = {"workload": {"name": "q", "jobs": 1},
             "results": {"dataset": {"n": 5},
                         "evaluate": {"throughput_nets_per_s": 10.0}}}
        b = copy.deepcopy(a)
        b["workload"]["jobs"] = 2
        b["results"]["evaluate"]["throughput_nets_per_s"] = 99.0
        assert compare.check_comparable(a, b) == []
        assert compare.compare_results(a["results"], b["results"]) == []

    def test_pipeline_label_mismatch_detected(self):
        compare = _compare_module()
        a = {"results": {"dataset": {"n": 5}}}
        b = {"results": {"dataset": {"n": 6}}}
        lines = compare.compare_results(a["results"], b["results"])
        assert lines and "dataset.n" in lines[0]

    def test_serve_cross_config_rejected(self, serve_doc):
        compare = _compare_module()
        other = copy.deepcopy(serve_doc)
        other["environment"]["mp_start_method"] = "spawn"
        problems = compare.check_comparable(serve_doc, other)
        assert any("mp_start_method" in p for p in problems)
        workers = copy.deepcopy(serve_doc)
        workers["workload"]["workers"] = 8
        assert compare.check_comparable(serve_doc, workers)

    def test_mode_mismatch_rejected(self, serve_doc):
        compare = _compare_module()
        pipeline = {"workload": {"name": "q"}, "results": {}}
        problems = compare.check_comparable(serve_doc, pipeline)
        assert any("mode mismatch" in p for p in problems)

    def test_serve_compares_census_not_throughput(self, serve_doc):
        compare = _compare_module()
        other = copy.deepcopy(serve_doc)
        other["results"]["serve"]["throughput_nets_per_s"] = 1.0
        other["results"]["serve"]["latency_ms"]["p50"] = 999.0
        assert compare.compare_results(serve_doc["results"],
                                       other["results"],
                                       mode="serve") == []
        lost = copy.deepcopy(serve_doc)
        lost["results"]["serve"]["lost_requests"] = 3
        lines = compare.compare_results(serve_doc["results"],
                                        lost["results"], mode="serve")
        assert any("lost_requests" in line for line in lines)
