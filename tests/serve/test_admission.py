"""Admission control: backpressure, deadlines, shedding, the breaker."""

import threading

import pytest

from repro.robustness.errors import DeadlineError, OverloadError
from repro.serve.admission import (SHED_ANALYTIC, SHED_FULL,
                                   SHED_LAST_RESORT, AdmissionConfig,
                                   AdmissionController, Ticket)
from repro.serve.protocol import ServeResponse

from .conftest import make_request


def controller(clock, **overrides):
    defaults = dict(max_queue=8, shed_depth=3, shed_hard_depth=6,
                    default_deadline_s=2.0, breaker_threshold=2,
                    breaker_cooldown=4)
    defaults.update(overrides)
    return AdmissionController(AdmissionConfig(**defaults), clock=clock)


class TestIntake:
    def test_submit_then_pop_fifo(self, fake_clock):
        admission = controller(fake_clock)
        first = admission.submit(make_request(1, request_id="a"))
        admission.submit(make_request(1, request_id="b"))
        assert admission.depth == 2
        popped = admission.pop(timeout=0.0)
        assert popped is first
        assert popped.dequeued_at == fake_clock.now

    def test_full_queue_rejects_with_retry_hint(self, fake_clock):
        admission = controller(fake_clock, max_queue=2, shed_depth=1,
                               shed_hard_depth=2)
        admission.submit(make_request(1))
        admission.submit(make_request(1))
        with pytest.raises(OverloadError) as excinfo:
            admission.submit(make_request(1))
        assert excinfo.value.retry_after_s > 0.0

    def test_drain_rejects_new_submits(self, fake_clock):
        admission = controller(fake_clock)
        admission.stop_accepting()
        with pytest.raises(OverloadError, match="draining"):
            admission.submit(make_request(1))
        admission.resume_accepting()
        admission.submit(make_request(1))  # accepted again

    def test_pop_returns_none_when_drained_dry(self, fake_clock):
        admission = controller(fake_clock)
        admission.stop_accepting()
        assert admission.pop(timeout=0.0) is None


class TestDeadlines:
    def test_request_budget_becomes_absolute_deadline(self, fake_clock):
        admission = controller(fake_clock)
        ticket = admission.submit(make_request(1, deadline_ms=500.0))
        assert ticket.deadline_at == pytest.approx(fake_clock.now + 0.5)

    def test_default_deadline_applies_when_request_names_none(
            self, fake_clock):
        admission = controller(fake_clock, default_deadline_s=1.5)
        ticket = admission.submit(make_request(1))
        assert ticket.deadline_at == pytest.approx(fake_clock.now + 1.5)

    def test_budget_clamped_to_max_deadline(self, fake_clock):
        admission = controller(fake_clock, max_deadline_s=3.0)
        ticket = admission.submit(make_request(1, deadline_ms=60_000.0))
        assert ticket.deadline_at == pytest.approx(fake_clock.now + 3.0)

    def test_expired_ticket_skipped_at_pop_with_typed_error(
            self, fake_clock):
        admission = controller(fake_clock)
        stale = admission.submit(make_request(1, deadline_ms=10.0))
        fake_clock.advance(0.05)
        live = admission.submit(make_request(1, deadline_ms=1000.0))
        assert admission.pop(timeout=0.0) is live
        assert stale.done.is_set()
        assert stale.response.error["type"] == "DeadlineError"
        assert stale.response.error["provenance"]["stage"] == "admission"

    def test_expire_queued_sweep_terminates_without_a_worker(
            self, fake_clock):
        admission = controller(fake_clock)
        tickets = [admission.submit(make_request(1, deadline_ms=10.0))
                   for _ in range(3)]
        keeper = admission.submit(make_request(1, deadline_ms=5000.0))
        fake_clock.advance(0.05)
        assert admission.expire_queued() == 3
        assert all(t.done.is_set() for t in tickets)
        assert not keeper.done.is_set()
        assert admission.depth == 1


class TestTicket:
    def test_finish_is_first_writer_wins(self, fake_clock):
        admission = controller(fake_clock)
        ticket = admission.submit(make_request(1, request_id="fww"))
        winner = ServeResponse(ok=True)
        assert ticket.finish(winner) is True
        assert ticket.finish(ServeResponse(ok=False)) is False
        assert ticket.response is winner
        assert ticket.response.request_id == "fww"

    def test_remaining_budget_tracks_clock(self, fake_clock):
        ticket = Ticket(make_request(1), enqueued_at=fake_clock.now,
                        deadline_at=fake_clock.now + 1.0)
        assert ticket.remaining(fake_clock.now) == pytest.approx(1.0)
        assert not ticket.expired(fake_clock.now)
        assert ticket.expired(fake_clock.now + 1.0)
        no_deadline = Ticket(make_request(1), enqueued_at=0.0,
                             deadline_at=None)
        assert no_deadline.remaining(1e9) is None


class TestShedding:
    def test_levels_follow_queue_depth(self, fake_clock):
        admission = controller(fake_clock, max_queue=8, shed_depth=2,
                               shed_hard_depth=4)
        assert admission.shed_level() == SHED_FULL
        for _ in range(2):
            admission.submit(make_request(1))
        assert admission.shed_level() == SHED_ANALYTIC
        for _ in range(2):
            admission.submit(make_request(1))
        assert admission.shed_level() == SHED_LAST_RESORT

    def test_open_breaker_forces_analytic_on_empty_queue(self, fake_clock):
        admission = controller(fake_clock, breaker_threshold=2,
                               breaker_cooldown=3)
        assert admission.shed_level() == SHED_FULL
        admission.record_serve(False, 0.01)
        admission.record_serve(False, 0.01)
        assert admission.shed_level() == SHED_ANALYTIC
        # The cooldown is measured in shed_level consultations (each one
        # burns an allow() call); after it elapses the ladder recovers.
        levels = [admission.shed_level() for _ in range(3)]
        assert levels[-1] == SHED_FULL

    def test_successes_keep_breaker_closed(self, fake_clock):
        admission = controller(fake_clock, breaker_threshold=2)
        for _ in range(10):
            admission.record_serve(True, 0.01)
            admission.record_serve(False, 0.01)
        assert admission.shed_level() == SHED_FULL

    def test_service_estimate_feeds_retry_after(self, fake_clock):
        admission = controller(fake_clock, max_queue=2, shed_depth=1,
                               shed_hard_depth=2)
        for _ in range(20):
            admission.record_serve(True, 0.5)
        admission.submit(make_request(1))
        admission.submit(make_request(1))
        with pytest.raises(OverloadError) as excinfo:
            admission.submit(make_request(1))
        assert excinfo.value.retry_after_s > 0.1


class TestSnapshotAndConfig:
    def test_snapshot_is_json_safe_health_view(self, fake_clock):
        admission = controller(fake_clock)
        admission.submit(make_request(1))
        snap = admission.snapshot()
        assert snap["depth"] == 1
        assert snap["accepting"] is True
        assert snap["breaker_open"] is False
        assert snap["max_queue"] == 8

    @pytest.mark.parametrize("bad", [
        dict(max_queue=0),
        dict(shed_depth=0),
        dict(shed_depth=9, shed_hard_depth=9),
        dict(shed_hard_depth=2, shed_depth=5),
    ])
    def test_invalid_config_rejected(self, bad):
        kwargs = dict(max_queue=8, shed_depth=3, shed_hard_depth=6)
        kwargs.update(bad)
        with pytest.raises(ValueError):
            AdmissionConfig(**kwargs)


class TestConcurrency:
    def test_parallel_submit_pop_conserves_tickets(self):
        admission = AdmissionController(AdmissionConfig(
            max_queue=512, shed_depth=256, shed_hard_depth=512,
            default_deadline_s=None))
        total = 200
        popped = []
        lock = threading.Lock()

        def producer(base):
            for i in range(total // 4):
                admission.submit(make_request(1, request_id=f"{base}-{i}"))

        def consumer():
            while True:
                ticket = admission.pop(timeout=0.2)
                if ticket is None:
                    return
                with lock:
                    popped.append(ticket)

        producers = [threading.Thread(target=producer, args=(j,))
                     for j in range(4)]
        consumers = [threading.Thread(target=consumer) for _ in range(3)]
        for thread in producers + consumers:
            thread.start()
        for thread in producers:
            thread.join()
        admission.stop_accepting()
        for thread in consumers:
            thread.join()
        assert len(popped) == total
        assert len({t.request.request_id for t in popped}) == total
