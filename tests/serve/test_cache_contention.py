"""Hammer tests: the shared LRU caches under real thread contention.

Single-threaded tests cannot catch a torn ``OrderedDict`` (CPython raises
``RuntimeError: dictionary changed size during iteration`` or corrupts the
linked list outright when two threads mutate one concurrently).  Each
hammer below drives many threads through a mixed get/put/invalidate
workload and then asserts the structural invariants: size never exceeds
``maxsize``, every surviving entry round-trips, and no thread saw an
exception.  Failures here are probabilistic — the workloads are sized so
a missing lock fails in practice well within the iteration budget.
"""

import threading

import numpy as np

from repro.analysis.cache import SolveCache
from repro.analysis.simulator import EigenSolve
from repro.serve.engine import PredictionCache
from repro.serve.protocol import QueryResult

THREADS = 8
ITERATIONS = 400


def _hammer(worker):
    """Run ``worker(thread_index)`` on THREADS threads; re-raise errors."""
    errors = []
    barrier = threading.Barrier(THREADS)

    def run(index):
        try:
            barrier.wait(timeout=10.0)
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,))
               for i in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert not any(t.is_alive() for t in threads), "hammer wedged"
    if errors:
        raise errors[0]


def _result(name):
    return QueryResult(ok=True, net=name, tier="analytic",
                       delays_s=[1e-12], slews_s=[2e-12])


def test_prediction_cache_contended_mixed_workload():
    cache = PredictionCache(maxsize=32)
    keys = [f"net{i}".encode() for i in range(128)]

    def worker(index):
        for step in range(ITERATIONS):
            key = keys[(index * 37 + step) % len(keys)]
            hit = cache.get(key)
            if hit is not None:
                # Entries are immutable by contract; a torn store would
                # surface as a result for the wrong key.
                assert hit.net == key.decode()
            cache.put(key, _result(key.decode()))
            if step % 50 == 0:
                cache.contains(key)
            assert len(cache) <= 32

    _hammer(worker)
    assert 0 < len(cache) <= 32
    # Survivors all round-trip correctly after the storm.
    for key in keys:
        hit = cache.get(key)
        if hit is not None:
            assert hit.net == key.decode()


def test_prediction_cache_eviction_keeps_bound_under_races():
    cache = PredictionCache(maxsize=8)

    def worker(index):
        for step in range(ITERATIONS):
            key = f"{index}:{step}".encode()
            cache.put(key, _result("n"))
            assert len(cache) <= 8

    _hammer(worker)
    assert len(cache) == 8


def _solve(n=3):
    return EigenSolve(caps=np.ones(n), inv_sqrt_c=np.ones(n),
                      eigenvalues=np.arange(1.0, n + 1.0),
                      q=np.eye(n))


def test_solve_cache_contended_mixed_workload():
    cache = SolveCache(maxsize=16)
    keys = [bytes([i]) * 16 for i in range(64)]

    def worker(index):
        for step in range(ITERATIONS):
            key = keys[(index * 13 + step) % len(keys)]
            entry = cache.get(key)
            if entry is not None:
                assert entry.caps.shape == (3,)
            cache.put(key, _solve())
            if step % 25 == 0:
                cache.invalidate(keys[step % len(keys)])
            assert len(cache) <= 16

    _hammer(worker)
    assert len(cache) <= 16
    stats = cache.stats()
    assert stats["entries"] == len(cache)


def test_solve_cache_persist_tier_survives_contention(tmp_path):
    cache = SolveCache(maxsize=4, persist_dir=str(tmp_path))
    keys = [bytes([i]) * 16 for i in range(12)]

    def worker(index):
        for step in range(100):
            key = keys[(index + step) % len(keys)]
            if cache.get(key) is None:
                cache.put(key, _solve())

    _hammer(worker)
    # Evicted-from-memory entries still warm-start from disk.
    fresh = SolveCache(maxsize=4, persist_dir=str(tmp_path))
    warmed = sum(fresh.get(key) is not None for key in keys)
    assert warmed == len(keys)
