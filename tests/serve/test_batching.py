"""Batch coalescing: size caps, the wait window, deadline clipping.

All tests run on a fake clock, so a pop against an *empty* queue would
wait forever (the deadline never arrives).  Each scenario therefore
either closes its batch through a size cap or flips the admission into
drain (``stop_accepting``) first, making empty pops return immediately —
the same shape a draining production service has.
"""

import pytest

from repro.serve.admission import AdmissionConfig, AdmissionController
from repro.serve.batching import Batch, BatchCollector, BatchingConfig

from .conftest import make_request


def build(fake_clock, **batching):
    admission = AdmissionController(
        AdmissionConfig(max_queue=64, shed_depth=32, shed_hard_depth=64,
                        default_deadline_s=None),
        clock=fake_clock)
    defaults = dict(max_batch_nets=64, max_batch_requests=32,
                    max_wait_s=1.0)
    defaults.update(batching)
    collector = BatchCollector(admission, BatchingConfig(**defaults),
                               clock=fake_clock)
    return admission, collector


class TestCoalescing:
    def test_queued_tickets_coalesce_into_one_batch(self, fake_clock):
        admission, collector = build(fake_clock, max_batch_requests=5)
        for i in range(5):
            admission.submit(make_request(2, request_id=f"r{i}"))
        batch = collector.collect(poll_s=0.0)
        assert len(batch) == 5
        assert batch.num_nets == 10
        assert admission.depth == 0

    def test_request_cap_bounds_fan_in(self, fake_clock):
        admission, collector = build(fake_clock, max_batch_requests=3)
        for _ in range(5):
            admission.submit(make_request(1))
        assert len(collector.collect(poll_s=0.0)) == 3
        admission.stop_accepting()   # empty pops now return, not wait
        assert len(collector.collect(poll_s=0.0)) == 2

    def test_net_cap_closes_the_batch(self, fake_clock):
        admission, collector = build(fake_clock, max_batch_nets=4)
        for _ in range(4):
            admission.submit(make_request(3))
        batch = collector.collect(poll_s=0.0)
        # The first ticket opens the batch; members join until the net
        # count reaches the cap (the cap is a closing condition, not a
        # hard ceiling on an individual already-admitted request).
        assert len(batch) == 2 and batch.num_nets == 6

    def test_empty_drained_queue_yields_none(self, fake_clock):
        admission, collector = build(fake_clock)
        admission.stop_accepting()
        assert collector.collect(poll_s=0.0) is None


class TestWindow:
    def test_zero_window_ships_singletons_immediately(self, fake_clock):
        admission, collector = build(fake_clock, max_wait_s=0.0)
        admission.submit(make_request(1))
        admission.submit(make_request(1))
        # A zero window means "never wait for company": even with a
        # second ticket already queued, the batch closes at size one.
        batch = collector.collect(poll_s=0.0)
        assert len(batch) == 1

    def test_deadline_clips_the_window(self, fake_clock):
        admission, collector = build(fake_clock, max_wait_s=10.0)
        # 100 ms of budget left: the collector may spend at most half of
        # it waiting for company, never the 10 s window.
        ticket = admission.submit(make_request(1, deadline_ms=100.0))
        admission.submit(make_request(1))
        admission.stop_accepting()
        batch = collector.collect(poll_s=0.0)
        assert batch.tickets[0] is ticket
        assert len(batch) == 2
        # collect returned with the fake clock unmoved — it never slept
        # out the clipped (let alone the full) window.
        assert batch.formed_at == fake_clock.now


class TestBatchValue:
    def test_len_and_num_nets(self, fake_clock):
        admission, _ = build(fake_clock)
        tickets = [admission.submit(make_request(n)) for n in (1, 2, 3)]
        batch = Batch(tickets, formed_at=fake_clock.now)
        assert len(batch) == 3
        assert batch.num_nets == 6

    @pytest.mark.parametrize("bad", [
        dict(max_batch_nets=0), dict(max_batch_requests=0),
        dict(max_wait_s=-0.1),
    ])
    def test_invalid_config_rejected(self, bad):
        with pytest.raises(ValueError):
            BatchingConfig(**bad)
