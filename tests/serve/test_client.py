"""TimingClient: retry taxonomy, backoff jitter, Retry-After, hedging."""

import random
import threading
import time

import pytest

from repro.robustness.errors import (DeadlineError, InputError,
                                     OverloadError)
from repro.serve.client import (RetryPolicy, ServeClientError, TimingClient)
from repro.serve.protocol import ServeResponse, error_response

from .conftest import make_request


class _Script:
    """Scripted transport: each entry is a response or an exception."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.calls = 0

    def __call__(self, path, body, timeout_s=None):
        self.calls += 1
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome


def scripted_client(outcomes, **kwargs):
    kwargs.setdefault("policy", RetryPolicy(max_attempts=4,
                                            base_backoff_s=0.01))
    kwargs.setdefault("rng", random.Random(7))
    sleeps = []
    kwargs.setdefault("sleep", sleeps.append)
    client = TimingClient(host="127.0.0.1", port=1, **kwargs)
    script = _Script(outcomes)
    client._post_once = script
    return client, script, sleeps


OK = ServeResponse(ok=True)


class TestRetryTaxonomy:
    def test_transport_errors_retry_until_success(self):
        client, script, sleeps = scripted_client(
            [ConnectionRefusedError("down"), OSError("reset"), OK])
        assert client.submit(make_request(1)).ok
        assert script.calls == 3
        assert len(sleeps) == 2

    def test_all_transport_failures_raise_client_error(self):
        client, script, _ = scripted_client(
            [OSError("down")] * 4)
        with pytest.raises(ServeClientError, match="4 attempts"):
            client.submit(make_request(1))
        assert script.calls == 4

    def test_input_error_returned_without_retry(self):
        client, script, sleeps = scripted_client(
            [error_response(InputError("bad", stage="protocol")), OK])
        response = client.submit(make_request(1))
        assert response.error["type"] == "InputError"
        assert script.calls == 1 and not sleeps

    def test_deadline_error_returned_without_retry(self):
        client, script, _ = scripted_client(
            [error_response(DeadlineError("late")), OK])
        response = client.submit(make_request(1))
        assert response.error["type"] == "DeadlineError"
        assert script.calls == 1

    def test_internal_error_retried_exactly_once(self):
        client, script, _ = scripted_client(
            [error_response(RuntimeError("bug")),
             error_response(RuntimeError("bug")),
             OK])
        response = client.submit(make_request(1))
        assert response.error["type"] == "InternalError"
        assert script.calls == 2     # one re-roll, then give up

    def test_overload_retries_until_capacity_returns(self):
        client, script, _ = scripted_client(
            [error_response(OverloadError("full", retry_after_s=0.05)),
             error_response(OverloadError("full", retry_after_s=0.05)),
             OK])
        assert client.submit(make_request(1)).ok
        assert script.calls == 3


class TestBackoff:
    def test_retry_after_hint_is_honored_with_jitter(self):
        client, _, sleeps = scripted_client(
            [error_response(OverloadError("full", retry_after_s=0.1)), OK])
        client.submit(make_request(1))
        assert len(sleeps) == 1
        # Full hint times jitter in [0.8, 1.4): near it, never exactly it.
        assert 0.08 <= sleeps[0] < 0.14

    def test_exponential_backoff_with_full_jitter(self):
        policy = RetryPolicy(max_attempts=6, base_backoff_s=0.05,
                             max_backoff_s=0.4, backoff_multiplier=2.0)
        rng = random.Random(3)
        for attempt, cap in enumerate([0.05, 0.1, 0.2, 0.4, 0.4]):
            for _ in range(50):
                delay = policy.backoff(attempt, rng)
                assert 0.0 <= delay <= cap

    def test_transport_backoff_uses_policy(self):
        client, _, sleeps = scripted_client(
            [OSError("x"), OSError("x"), OK],
            policy=RetryPolicy(max_attempts=4, base_backoff_s=0.02,
                               max_backoff_s=1.0))
        client.submit(make_request(1))
        assert len(sleeps) == 2
        assert all(0.0 <= s <= 0.04 + 1e-9 for s in sleeps)


class TestHedging:
    def test_slow_primary_triggers_backup(self):
        release = threading.Event()
        calls = []

        def transport(path, body, timeout_s=None):
            calls.append(time.monotonic())
            if len(calls) == 1:
                release.wait(5.0)    # primary stalls
            return OK

        client = TimingClient(host="127.0.0.1", port=1,
                              hedge_after_s=0.05, timeout_s=5.0)
        client._post_once = transport
        response = client.submit(make_request(1))
        release.set()
        assert response.ok
        assert len(calls) == 2       # the hedge fired

    def test_fast_primary_never_hedges(self):
        client, script, _ = scripted_client([OK], hedge_after_s=0.5)
        assert client.submit(make_request(1)).ok
        assert script.calls == 1
