"""Shared fixtures for the serving-layer suite.

The chaos tests run against a *live* service (real worker threads, real
HTTP front on an ephemeral port); the unit tests drive the admission /
batching / engine layers directly, mostly with fake clocks so nothing
here depends on wall-clock sleeps.
"""

import numpy as np
import pytest

from repro.rcnet.topology import random_net
from repro.serve.protocol import ServeRequest, TimingQuery


class FakeClock:
    """Deterministic monotonic clock for deadline/window tests."""

    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def fake_clock():
    return FakeClock()


def make_queries(n: int = 3, seed: int = 11, nodes=(5, 12)):
    """Deterministic small-net queries (the standard test payload)."""
    rng = np.random.default_rng(seed)
    queries = []
    for j in range(n):
        net = random_net(rng, name=f"q{j}", n_nodes_range=nodes,
                         n_sinks_range=(1, 3))
        queries.append(TimingQuery(
            net=net, input_slew_s=float(rng.uniform(1e-11, 5e-11)),
            drive_resistance_ohm=float(rng.uniform(50.0, 300.0))))
    return queries


def make_request(n: int = 3, seed: int = 11, deadline_ms=None,
                 request_id=None) -> ServeRequest:
    return ServeRequest(queries=make_queries(n, seed=seed),
                        deadline_ms=deadline_ms, request_id=request_id)


@pytest.fixture
def queries():
    return make_queries()


@pytest.fixture
def request_payload():
    return make_request()


@pytest.fixture
def live_server():
    """A started service + HTTP front on an ephemeral port."""
    from repro.serve.server import ServeConfig, start_server

    handle = start_server(ServeConfig(port=0, workers=2))
    yield handle
    handle.stop(drain=False, timeout=5.0)
