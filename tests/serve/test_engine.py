"""EstimationEngine: total termination, shed ladders, the prediction cache."""

import threading

import numpy as np
import pytest

from repro.robustness.fallback import LAST_RESORT_TIER
from repro.serve.admission import (SHED_ANALYTIC, SHED_FULL,
                                   SHED_LAST_RESORT, Ticket)
from repro.serve.batching import Batch
from repro.serve.engine import EstimationEngine, PredictionCache
from repro.serve.protocol import QueryResult

from .conftest import FakeClock, make_request


def ticket_for(request, clock, deadline_s=None):
    deadline = None if deadline_s is None else clock() + deadline_s
    return Ticket(request, enqueued_at=clock(), deadline_at=deadline)


class _NaNTier:
    """A 'model' whose weights went bad: every answer is non-finite."""

    name = "nan-tier"

    def wire_timing(self, net, input_slew, sink_loads, drive_resistance,
                    context=None):
        n = net.num_sinks
        return np.full(n, float("nan")), np.full(n, float("nan"))


class TestServeQuery:
    def test_full_ladder_answers_every_query(self, fake_clock):
        engine = EstimationEngine(clock=fake_clock)
        request = make_request(3)
        ticket = ticket_for(request, fake_clock)
        for query in request.queries:
            result = engine.serve_query(query, ticket, SHED_FULL)
            assert result.ok and not result.degraded
            assert len(result.delays_s) == query.net.num_sinks
            assert all(np.isfinite(result.delays_s))

    def test_analytic_shed_marks_degraded(self, fake_clock):
        engine = EstimationEngine(clock=fake_clock)
        request = make_request(1)
        ticket = ticket_for(request, fake_clock)
        result = engine.serve_query(request.queries[0], ticket,
                                    SHED_ANALYTIC)
        assert result.ok and result.degraded

    def test_last_resort_shed_serves_on_terminal_tier(self, fake_clock):
        engine = EstimationEngine(clock=fake_clock)
        request = make_request(1)
        ticket = ticket_for(request, fake_clock)
        result = engine.serve_query(request.queries[0], ticket,
                                    SHED_LAST_RESORT)
        assert result.ok and result.tier == LAST_RESORT_TIER

    def test_expired_ticket_gets_typed_deadline_error(self, fake_clock):
        engine = EstimationEngine(clock=fake_clock)
        request = make_request(1, deadline_ms=10.0)
        ticket = ticket_for(request, fake_clock, deadline_s=0.01)
        fake_clock.advance(0.05)
        result = engine.serve_query(request.queries[0], ticket, SHED_FULL)
        assert not result.ok
        assert result.error["type"] == "DeadlineError"
        assert result.error["provenance"]["stage"] == "serve"

    def test_nan_tier_degrades_with_provenance(self, fake_clock):
        engine = EstimationEngine(clock=fake_clock,
                                  extra_tiers=[_NaNTier()])
        request = make_request(1)
        ticket = ticket_for(request, fake_clock)
        result = engine.serve_query(request.queries[0], ticket, SHED_FULL)
        assert result.ok and result.degraded
        assert any(f["tier"] == "nan-tier" for f in result.failures)


class TestMidTicketDeadline:
    def test_budget_exhaustion_cancels_remaining_nets(self):
        clock = FakeClock()

        class _SlowClockTier:
            """Each net 'costs' 30 ms of fake time."""

            name = "slow"

            def wire_timing(self, net, input_slew, sink_loads,
                            drive_resistance, context=None):
                clock.advance(0.03)
                n = net.num_sinks
                return np.full(n, 1e-12), np.full(n, 1e-12)

        engine = EstimationEngine(clock=clock,
                                  extra_tiers=[_SlowClockTier()])
        request = make_request(4, deadline_ms=50.0)
        ticket = ticket_for(request, clock, deadline_s=0.05)
        engine.serve_ticket(ticket, SHED_FULL)
        results = ticket.response.results
        assert len(results) == 4            # every query terminated...
        served = [r for r in results if r.ok]
        cancelled = [r for r in results if not r.ok]
        assert served and cancelled         # ...but not all were computed
        assert all(r.error["type"] == "DeadlineError" for r in cancelled)


class TestPredictionCache:
    def test_identical_query_hits_with_original_tier(self, fake_clock):
        engine = EstimationEngine(clock=fake_clock)
        request = make_request(1)
        ticket = ticket_for(request, fake_clock)
        cold = engine.serve_query(request.queries[0], ticket, SHED_FULL)
        warm = engine.serve_query(request.queries[0], ticket, SHED_FULL)
        assert not cold.cached and warm.cached
        assert warm.tier == cold.tier
        assert warm.delays_s == cold.delays_s

    def test_hit_replays_even_under_shedding(self, fake_clock):
        engine = EstimationEngine(clock=fake_clock)
        request = make_request(1)
        ticket = ticket_for(request, fake_clock)
        cold = engine.serve_query(request.queries[0], ticket, SHED_FULL)
        shed = engine.serve_query(request.queries[0], ticket,
                                  SHED_LAST_RESORT)
        assert shed.cached and shed.tier == cold.tier
        assert not shed.degraded

    def test_degraded_results_never_stored(self, fake_clock):
        engine = EstimationEngine(clock=fake_clock)
        request = make_request(1)
        ticket = ticket_for(request, fake_clock)
        engine.serve_query(request.queries[0], ticket, SHED_ANALYTIC)
        assert len(engine.cache) == 0

    def test_lru_eviction_respects_maxsize(self):
        cache = PredictionCache(maxsize=2)
        results = [QueryResult(ok=True, net=f"n{i}") for i in range(3)]
        for i, result in enumerate(results):
            cache.put(bytes([i]), result)
        assert len(cache) == 2
        assert cache.get(bytes([0])) is None      # evicted
        assert cache.get(bytes([2])) is results[2]

    def test_get_refreshes_recency(self):
        cache = PredictionCache(maxsize=2)
        cache.put(b"a", QueryResult(ok=True, net="a"))
        cache.put(b"b", QueryResult(ok=True, net="b"))
        cache.get(b"a")
        cache.put(b"c", QueryResult(ok=True, net="c"))
        assert cache.get(b"a") is not None
        assert cache.get(b"b") is None

    def test_zero_size_disables_storage(self):
        cache = PredictionCache(maxsize=0)
        cache.put(b"k", QueryResult(ok=True, net="n"))
        assert len(cache) == 0 and cache.get(b"k") is None
        with pytest.raises(ValueError):
            PredictionCache(maxsize=-1)

    def test_concurrent_access_is_consistent(self):
        cache = PredictionCache(maxsize=64)
        errors = []

        def worker(base):
            try:
                for i in range(200):
                    key = bytes([base, i % 32])
                    cache.put(key, QueryResult(ok=True, net=f"{base}.{i}"))
                    cache.get(key)
                    cache.get(bytes([(base + 1) % 4, i % 32]))
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(j,))
                   for j in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64


class TestCrashRecovery:
    def test_last_resort_retry_finishes_unanswered_tickets(self, fake_clock):
        engine = EstimationEngine(clock=fake_clock)
        answered = ticket_for(make_request(1), fake_clock)
        engine.serve_ticket(answered, SHED_FULL)
        # Distinct seed: otherwise the prediction cache (correctly)
        # replays the full-ladder answer instead of the recovery tier.
        abandoned = ticket_for(make_request(2, seed=99), fake_clock)
        batch = Batch([answered, abandoned], formed_at=fake_clock.now)
        engine.serve_batch_last_resort(batch, reason="worker died")
        assert abandoned.done.is_set()
        assert all(r.tier == LAST_RESORT_TIER
                   for r in abandoned.response.results)
        # The already-answered ticket kept its original (full-ladder)
        # response: finish() is first-writer-wins.
        assert all(r.tier != LAST_RESORT_TIER
                   for r in answered.response.results)

    def test_serve_batch_reports_healthy_count(self, fake_clock):
        engine = EstimationEngine(clock=fake_clock)
        tickets = [ticket_for(make_request(1), fake_clock)
                   for _ in range(3)]
        batch = Batch(tickets, formed_at=fake_clock.now)
        assert engine.serve_batch(batch, SHED_FULL) == 3
        assert all(t.done.is_set() for t in tickets)
