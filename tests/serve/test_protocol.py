"""Wire format: strict parsing, typed errors, cache keys, HTTP mapping."""

import json

import pytest

from repro.robustness.errors import InputError
from repro.serve.protocol import (HTTP_STATUS, MAX_QUERIES_PER_REQUEST,
                                  PROTOCOL_SCHEMA, QueryResult, ServeRequest,
                                  ServeResponse, decode_response,
                                  error_document, error_response,
                                  http_status_for, net_from_dict, net_to_dict,
                                  parse_request)

from .conftest import make_queries, make_request


class TestRoundTrip:
    def test_request_encode_parse_identity(self):
        request = make_request(n=4, deadline_ms=150.0, request_id="rt-1")
        parsed = parse_request(request.encode())
        assert parsed.request_id == "rt-1"
        assert parsed.deadline_ms == 150.0
        assert parsed.num_nets == 4
        for original, decoded in zip(request.queries, parsed.queries):
            assert decoded.net.name == original.net.name
            assert decoded.net.num_nodes == original.net.num_nodes
            assert decoded.input_slew_s == original.input_slew_s
            assert (decoded.drive_resistance_ohm
                    == original.drive_resistance_ohm)

    def test_net_dict_round_trip_preserves_structure(self, queries):
        net = queries[0].net
        again = net_from_dict(net_to_dict(net))
        assert again.name == net.name
        assert again.num_nodes == net.num_nodes
        assert again.num_edges == net.num_edges
        assert list(again.sinks) == list(net.sinks)
        assert [n.cap for n in again.nodes] == [n.cap for n in net.nodes]

    def test_response_round_trip_keeps_cached_flag(self):
        response = ServeResponse(ok=True, results=[QueryResult(
            ok=True, net="n", tier="awe", delays_s=[1e-12],
            slews_s=[2e-12], cached=True)], shed_level=1)
        decoded = decode_response(response.encode())
        assert decoded.ok and decoded.shed_level == 1
        assert decoded.results[0].cached is True
        assert decoded.results[0].delays_s == [1e-12]


class TestStrictParsing:
    @pytest.mark.parametrize("body", [
        b"not json",
        b"[]",
        b'{"schema": "repro-serve/0", "queries": []}',
        b'{"schema": "repro-serve/1"}',
        b'{"schema": "repro-serve/1", "queries": []}',
        b'{"schema": "repro-serve/1", "queries": [5]}',
        b'{"schema": "repro-serve/1", "queries": [{"net": null}]}',
    ])
    def test_malformed_bodies_raise_typed_input_error(self, body):
        with pytest.raises(InputError) as excinfo:
            parse_request(body)
        assert excinfo.value.stage == "protocol"

    def test_query_cap_enforced(self):
        query = make_queries(1)[0].to_dict()
        raw = {"schema": PROTOCOL_SCHEMA, "queries": [query] * 3}
        with pytest.raises(InputError, match="cap is 2"):
            parse_request(raw, max_queries=2)
        assert MAX_QUERIES_PER_REQUEST >= 64

    @pytest.mark.parametrize("field,value", [
        ("input_slew_s", 0.0), ("input_slew_s", "fast"),
        ("drive_resistance_ohm", -5.0),
    ])
    def test_invalid_operating_point_rejected(self, field, value):
        query = make_queries(1)[0].to_dict()
        query[field] = value
        with pytest.raises(InputError):
            parse_request({"schema": PROTOCOL_SCHEMA, "queries": [query]})

    def test_sink_load_count_must_match_sinks(self):
        query = make_queries(1)[0]
        doc = query.to_dict()
        doc["sink_loads_f"] = [1e-15] * (query.net.num_sinks + 1)
        with pytest.raises(InputError, match="sink loads"):
            parse_request({"schema": PROTOCOL_SCHEMA, "queries": [doc]})

    def test_negative_deadline_rejected(self):
        request = make_request(1)
        raw = request.to_dict()
        raw["deadline_ms"] = -1.0
        with pytest.raises(InputError, match="deadline_ms"):
            parse_request(raw)


class TestCacheKey:
    def test_identical_content_shares_key_despite_names(self):
        a, b = make_queries(1, seed=3)[0], make_queries(1, seed=3)[0]
        renamed = net_to_dict(b.net)
        renamed["name"] = "renamed"
        for i, node in enumerate(renamed["nodes"]):
            node["name"] = f"other{i}"
        b.net = net_from_dict(renamed)
        assert a.cache_key() == b.cache_key()

    def test_key_changes_with_parasitics_and_operating_point(self):
        base = make_queries(1, seed=3)[0]
        key = base.cache_key()
        bumped_cap = make_queries(1, seed=3)[0]
        doc = net_to_dict(bumped_cap.net)
        doc["nodes"][1]["cap"] *= 1.5
        bumped_cap.net = net_from_dict(doc)
        assert bumped_cap.cache_key() != key
        bumped_slew = make_queries(1, seed=3)[0]
        bumped_slew.input_slew_s *= 2.0
        assert bumped_slew.cache_key() != key
        bumped_drive = make_queries(1, seed=3)[0]
        bumped_drive.drive_resistance_ohm += 1.0
        assert bumped_drive.cache_key() != key

    def test_sink_loads_participate_in_key(self):
        bare = make_queries(1, seed=3)[0]
        loaded = make_queries(1, seed=3)[0]
        loaded.sink_loads_f = [1e-15] * loaded.net.num_sinks
        assert bare.cache_key() != loaded.cache_key()


class TestErrorsAndStatus:
    def test_error_document_carries_taxonomy_provenance(self):
        doc = error_document(InputError("bad", net="n1", stage="protocol"))
        assert doc["type"] == "InputError"
        assert doc["provenance"]["net"] == "n1"

    def test_foreign_exception_becomes_internal_error(self):
        doc = error_document(RuntimeError("boom"))
        assert doc["type"] == "InternalError"
        assert "boom" in doc["message"]

    def test_http_status_mapping(self):
        from repro.robustness.errors import (DeadlineError, OverloadError)

        assert http_status_for(ServeResponse(ok=True)) == 200
        assert http_status_for(error_response(
            InputError("x", stage="protocol"))) == 400
        assert http_status_for(error_response(
            OverloadError("full", retry_after_s=0.1))) == 429
        assert http_status_for(error_response(
            DeadlineError("late"))) == 504
        assert http_status_for(error_response(RuntimeError("?"))) == 500
        assert set(HTTP_STATUS) == {"InputError", "OverloadError",
                                    "DeadlineError", "InternalError"}

    def test_overload_error_carries_retry_after_ms(self):
        from repro.robustness.errors import OverloadError

        response = error_response(OverloadError("full", retry_after_s=0.25))
        assert response.error["retry_after_ms"] == pytest.approx(250.0)
        body = json.loads(response.encode())
        assert body["ok"] is False and body["schema"] == PROTOCOL_SCHEMA
