"""Failure injection: corrupted files and misuse fail loudly, not silently."""

import numpy as np
import pytest

from repro.core import GNNTransConfig, WireTimingEstimator
from repro.data import generate_dataset, load_dataset, save_dataset

TINY = GNNTransConfig(l1=1, l2=0, hidden=16, num_heads=2, head_hidden=(16,),
                      epochs=2)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(train_names=["PCI_BRIDGE"], test_names=["WB_DMA"],
                            scale=2000, nets_per_design=8)


class TestCorruptedDatasetFiles:
    def test_truncated_file(self, tmp_path, dataset):
        path = str(tmp_path / "ds.npz")
        save_dataset(path, dataset)
        with open(path, "r+b") as handle:
            handle.truncate(100)
        with pytest.raises(Exception):
            load_dataset(path)

    def test_missing_keys(self, tmp_path):
        path = str(tmp_path / "bogus.npz")
        np.savez(path, unrelated=np.zeros(3))
        with pytest.raises(KeyError):
            load_dataset(path)

    def test_not_a_zip(self, tmp_path):
        path = str(tmp_path / "junk.npz")
        with open(path, "w") as handle:
            handle.write("this is not an npz file")
        with pytest.raises(Exception):
            load_dataset(path)


class TestCorruptedModelFiles:
    def test_wrong_feature_widths(self, tmp_path, dataset):
        estimator = WireTimingEstimator(TINY)
        estimator.fit(dataset.train, epochs=2, patience=None)
        path = str(tmp_path / "model.npz")
        estimator.save(path)
        clone = WireTimingEstimator(TINY)
        with pytest.raises((ValueError, KeyError)):
            clone.load(path, num_node_features=3, num_path_features=2)

    def test_missing_parameters(self, tmp_path):
        path = str(tmp_path / "empty_model.npz")
        np.savez(path, **{"label.slew_mean": np.array(0.0),
                          "label.slew_std": np.array(1.0),
                          "label.delay_mean": np.array(0.0),
                          "label.delay_std": np.array(1.0)})
        clone = WireTimingEstimator(TINY)
        with pytest.raises(KeyError):
            clone.load(path, num_node_features=8, num_path_features=10)

    def test_mismatched_config_shape(self, tmp_path, dataset):
        """Loading weights into a different architecture must fail, not
        silently mis-predict."""
        estimator = WireTimingEstimator(TINY)
        estimator.fit(dataset.train, epochs=2, patience=None)
        path = str(tmp_path / "model.npz")
        estimator.save(path)
        other = WireTimingEstimator(
            GNNTransConfig(l1=2, l2=1, hidden=32, num_heads=4))
        with pytest.raises((ValueError, KeyError)):
            other.load(path, num_node_features=8, num_path_features=10)


class TestMalformedInputsAcrossParsers:
    def test_spef_garbage(self):
        from repro.rcnet import SPEFError, parse_spef

        with pytest.raises(SPEFError):
            parse_spef("complete nonsense without header")

    def test_liberty_garbage(self):
        from repro.liberty import LibertyError, parse_liberty

        with pytest.raises(LibertyError):
            parse_liberty("{{{{")

    def test_verilog_garbage(self):
        from repro.design import VerilogError, parse_verilog

        with pytest.raises(VerilogError):
            parse_verilog("int main() { return 0; }")

    def test_sdc_garbage_tokenization(self):
        from repro.design import SDCError, parse_sdc

        with pytest.raises(SDCError):
            parse_sdc('create_clock -period "unterminated')


class TestNanPropagationGuards:
    def test_unlabeled_samples_rejected_by_fit(self, library):
        """Fitting on NaN-labeled (inference-only) samples must fail fast
        in the label scaler, not poison training silently."""
        from repro.features import NetContext, build_net_sample
        from repro.rcnet import chain_net

        net = chain_net(6)
        ctx = NetContext(20e-12, library.cell("INV_X1"),
                         [library.cell("BUF_X1")])
        sample = build_net_sample(net, ctx, labeled=False)
        estimator = WireTimingEstimator(TINY)
        history = None
        with pytest.raises(Exception):
            history = estimator.fit([sample], epochs=1)
            # If fit didn't raise, predictions must not be silently finite.
            slews, delays = estimator.predict_sample(sample)
            if np.all(np.isfinite(slews)) and np.all(np.isfinite(delays)):
                raise AssertionError("NaN labels silently accepted")
