"""Cross-module integration: the full paper pipeline at miniature scale."""

import numpy as np
import pytest

from repro.bench import (MODEL_ORDER, accuracy_table, format_table,
                         train_model)
from repro.core import GNNTransConfig, WireTimingEstimator
from repro.data import generate_dataset, nontree_only

FAST = GNNTransConfig(l1=3, l2=1, hidden=32, num_heads=4,
                      head_hidden=(64, 32), epochs=50)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(train_names=["PCI_BRIDGE", "DMA", "B19"],
                            test_names=["WB_DMA"], scale=800,
                            nets_per_design=50)


class TestSpefToTiming:
    def test_spef_roundtrip_preserves_golden_timing(self, library, rng):
        """Write a net to SPEF, parse it back, and verify the golden timer
        produces identical results — the full parasitic ingestion path.

        SI mode is off because aggressor *activity* is not part of SPEF
        (switching information lives outside the parasitic file), so only
        quiet-aggressor timing is expected to survive a round trip exactly.
        """
        from repro.analysis import GoldenTimer
        from repro.rcnet import parse_spef, random_net, write_spef

        net = random_net(rng, name="flow")
        parsed = parse_spef(write_spef([net])).nets[0]
        timer = GoldenTimer(si_mode=False)
        original = timer.analyze(net, 25e-12)
        recovered = timer.analyze(parsed, 25e-12)
        np.testing.assert_allclose(sorted(original.delays()),
                                   sorted(recovered.delays()), rtol=1e-6)


class TestTrainedModelOrdering:
    def test_gnntrans_beats_analytical_features_alone(self, dataset):
        """GNNTrans must beat the DAC20 feature baseline on wire delay —
        the paper's central claim, at miniature scale.  (The per-subset
        non-tree comparison needs the full benchmark sizes and lives in
        benchmarks/bench_table3_nontree_accuracy.py; with the handful of
        non-tree paths this fixture produces, subset R^2 is noise.)"""
        gnn = train_model("GNNTrans", dataset, FAST, epochs=50)
        dac = train_model("DAC20", dataset, FAST)
        m_gnn = gnn.evaluate(dataset.test)
        m_dac = dac.evaluate(dataset.test)
        assert m_gnn.r2_delay > m_dac.r2_delay

    def test_accuracy_table_shape(self, dataset):
        models = {"GNNTrans": train_model("GNNTrans", dataset, FAST, epochs=20),
                  "DAC20": train_model("DAC20", dataset, FAST)}
        table = accuracy_table(dataset, models, subset="all")
        assert table.designs == ["WB_DMA"]
        rows = table.rows()
        assert rows[-1][0] == "Average"
        rendered = format_table(table.headers(), rows, title="Table IV")
        assert "WB_DMA" in rendered
        assert "GNNTrans" in rendered

    def test_nontree_subset_table(self, dataset):
        models = {"DAC20": train_model("DAC20", dataset, FAST)}
        table = accuracy_table(dataset, models, subset="nontree")
        slew, delay = table.average("DAC20")
        assert np.isfinite(slew) and np.isfinite(delay)

    def test_unknown_model_name(self, dataset):
        with pytest.raises(ValueError):
            train_model("ResNet50", dataset, FAST)

    def test_unknown_subset(self, dataset):
        with pytest.raises(ValueError):
            accuracy_table(dataset, {}, subset="everything")


class TestInductiveGeneralization:
    def test_unseen_design_accuracy(self, dataset):
        """Section IV: 'the inductive model can be shared across different
        designs ... even if they are unseen.'  Training never saw WB_DMA."""
        estimator = WireTimingEstimator(FAST)
        estimator.fit(dataset.train, epochs=30)
        metrics = estimator.evaluate(dataset.test)
        assert metrics.r2_slew > 0.8
        assert metrics.r2_delay > 0.6


class TestRuntimeClaim:
    def test_inference_much_faster_than_golden(self, dataset, library):
        """Section IV-C: learned wire timing beats the sign-off engine by a
        wide margin."""
        import time

        from repro.analysis import GoldenTimer

        estimator = WireTimingEstimator(FAST)
        estimator.fit(dataset.train[:20], epochs=5)
        samples = dataset.test[:20]

        start = time.perf_counter()
        for s in samples:
            estimator.predict_sample(s)
        model_time = time.perf_counter() - start

        # Reconstruct nets for golden timing comparison.
        from repro.design import generate_benchmark

        netlist = generate_benchmark("WB_DMA", library, scale=1200)
        nets = [n.rcnet for n in list(netlist.nets.values())[:20]]
        timer = GoldenTimer()
        start = time.perf_counter()
        for net in nets:
            timer.analyze(net, 20e-12)
        golden_time = time.perf_counter() - start

        assert model_time < golden_time
