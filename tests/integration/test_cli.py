"""Command-line interface: the full dataset -> train -> evaluate loop."""

import os

import pytest

from repro.cli import main
from repro.rcnet import chain_net, save_spef


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    return tmp_path_factory.mktemp("cli")


@pytest.fixture(scope="module")
def dataset_file(workdir):
    path = str(workdir / "ds.npz")
    code = main(["dataset", "-o", path, "--train", "PCI_BRIDGE",
                 "--test", "WB_DMA", "--scale", "2000", "--nets", "12",
                 "--seed", "1"])
    assert code == 0
    return path


@pytest.fixture(scope="module")
def model_file(workdir, dataset_file):
    path = str(workdir / "model.npz")
    code = main(["train", "-d", dataset_file, "-o", path,
                 "--plan", "PlanB", "--epochs", "4"])
    assert code == 0
    return path


class TestCLI:
    def test_dataset_written(self, dataset_file):
        assert os.path.exists(dataset_file)
        assert os.path.getsize(dataset_file) > 0

    def test_train_writes_model(self, model_file):
        assert os.path.exists(model_file)

    def test_evaluate(self, dataset_file, model_file, capsys):
        code = main(["evaluate", "-d", dataset_file, "-m", model_file,
                     "--per-design"])
        assert code == 0
        out = capsys.readouterr().out
        assert "overall" in out
        assert "R2" in out
        assert "WB_DMA" in out

    def test_evaluate_nontree_subset(self, dataset_file, model_file, capsys):
        code = main(["evaluate", "-d", dataset_file, "-m", model_file,
                     "--nontree"])
        out = capsys.readouterr().out + capsys.readouterr().err
        assert code in (0, 1)  # tiny datasets may lack non-tree nets

    def test_train_baseline_model(self, workdir, dataset_file):
        path = str(workdir / "sage.npz")
        code = main(["train", "-d", dataset_file, "-o", path,
                     "--model", "graphsage", "--epochs", "2"])
        assert code == 0
        assert os.path.exists(path)

    def test_spef_timing(self, workdir, capsys):
        spef = str(workdir / "net.spef")
        save_spef(spef, [chain_net(6)], design="clitest")
        code = main(["spef-timing", spef, "--input-slew", "25"])
        assert code == 0
        out = capsys.readouterr().out
        assert "clitest" in out
        assert "delay" in out

    def test_spef_timing_missing_file(self, capsys):
        code = main(["spef-timing", "/nonexistent/file.spef"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_benchmarks_listing(self, capsys):
        code = main(["benchmarks"])
        assert code == 0
        out = capsys.readouterr().out
        assert "WB_DMA" in out and "LEON3MP" in out

    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2


class TestInterchangeCLI:
    def test_export_and_report(self, workdir, capsys):
        outdir = str(workdir / "design")
        code = main(["export-design", "WB_DMA", "-o", outdir,
                     "--scale", "1500"])
        assert code == 0
        out = capsys.readouterr().out
        assert "netlist.v" in out
        for name in ("netlist.v", "parasitics.spef", "cells.lib"):
            assert os.path.exists(os.path.join(outdir, name))

        code = main(["report",
                     "--verilog", os.path.join(outdir, "netlist.v"),
                     "--spef", os.path.join(outdir, "parasitics.spef"),
                     "--lib", os.path.join(outdir, "cells.lib"),
                     "--engine", "elmore", "--paths", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "STA summary" in out
        assert "worst slack" in out

    def test_export_unknown_benchmark(self, workdir, capsys):
        code = main(["export-design", "NOPE", "-o", str(workdir / "x")])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_report_missing_file(self, capsys):
        code = main(["report", "--verilog", "/none.v", "--spef", "/none.spef",
                     "--lib", "/none.lib"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_report_with_sdc(self, workdir, capsys):
        outdir = str(workdir / "design_sdc")
        assert main(["export-design", "LDPC", "-o", outdir,
                     "--scale", "1500"]) == 0
        capsys.readouterr()
        sdc_path = os.path.join(outdir, "constraints.sdc")
        with open(sdc_path, "w") as handle:
            handle.write("create_clock -name clk -period 2.0 "
                         "[get_ports clk]\n"
                         "set_input_transition 0.03 [all_inputs]\n")
        code = main(["report",
                     "--verilog", os.path.join(outdir, "netlist.v"),
                     "--spef", os.path.join(outdir, "parasitics.spef"),
                     "--lib", os.path.join(outdir, "cells.lib"),
                     "--engine", "awe", "--paths", "5",
                     "--sdc", sdc_path])
        assert code == 0
        out = capsys.readouterr().out
        assert "clock 2000 ps" in out


class TestSTACli:
    SCALE, PATHS, SEED = "6000", "4", "3"

    @pytest.fixture(scope="class")
    def edit_script(self, tmp_path_factory):
        """An edit script targeting a net that really exists in the
        deterministic design ``repro sta`` will regenerate."""
        import json

        import numpy as np

        from repro.design import generate_benchmark, sample_timing_paths
        from repro.liberty import make_default_library

        netlist = generate_benchmark("WB_DMA", make_default_library(),
                                     int(self.SCALE))
        rng = np.random.default_rng(int(self.SEED))
        for path in sample_timing_paths(netlist, int(self.PATHS), rng):
            netlist.add_path(path)
        net = netlist.paths[0].stages[0].net
        path = tmp_path_factory.mktemp("eco") / "edits.json"
        path.write_text(json.dumps({
            "schema": "repro-eco-edits/1",
            "edits": [
                {"op": "scale_net_rc", "net": net, "r_factor": 1.2,
                 "c_factor": 0.9},
                {"op": "insert_buffer", "net": net, "sink_index": 0,
                 "cell": "BUF_X2"},
            ]}))
        return str(path)

    def _sta(self, *extra):
        return main(["sta", "WB_DMA", "--scale", self.SCALE,
                     "--paths", self.PATHS, "--seed", self.SEED,
                     "--engine", "elmore", *extra])

    def test_full_pass(self, capsys):
        assert self._sta() == 0
        out = capsys.readouterr().out
        assert "worst arrival" in out

    def test_incremental_replay_with_parity(self, edit_script, capsys):
        code = self._sta("--incremental", "--edits", edit_script,
                         "--verify")
        assert code == 0
        out = capsys.readouterr().out
        assert "scale_net_rc" in out and "insert_buffer" in out
        assert "retimed" in out
        assert "parity ok" in out

    def test_edits_require_incremental(self, edit_script, capsys):
        assert self._sta("--edits", edit_script) == 2
        assert "--incremental" in capsys.readouterr().err

    def test_bad_edit_script_reports_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "repro-eco-edits/9", "edits": []}')
        code = self._sta("--incremental", "--edits", str(bad))
        assert code == 1
        assert "schema" in capsys.readouterr().err

    def test_unknown_benchmark(self, capsys):
        assert main(["sta", "NOPE"]) == 1
        assert "error" in capsys.readouterr().err
