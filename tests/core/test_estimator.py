"""WireTimingEstimator: fit/predict/evaluate/save/load and the STA adapter."""

import numpy as np
import pytest

from repro.core import (GNNTransConfig, LabelScaler, LearnedWireModel,
                        WireTimingEstimator)
from repro.data import generate_dataset

FAST = GNNTransConfig(l1=2, l2=1, hidden=16, num_heads=2, head_hidden=(32,),
                      epochs=30, learning_rate=5e-3)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(train_names=["PCI_BRIDGE", "DMA"],
                            test_names=["WB_DMA"], scale=1200,
                            nets_per_design=30)


@pytest.fixture(scope="module")
def fitted(dataset):
    estimator = WireTimingEstimator(FAST)
    estimator.fit(dataset.train, epochs=30)
    return estimator


class TestLabelScaler:
    def test_roundtrip(self, dataset):
        scaler = LabelScaler().fit(dataset.train)
        slews = np.array([40.0, 80.0])
        delays = np.array([1.0, 3.0])
        ns, nd = scaler.normalize(slews, delays)
        rs, rd = scaler.denormalize(ns, nd)
        np.testing.assert_allclose(rs, slews)
        np.testing.assert_allclose(rd, delays)

    def test_state_roundtrip(self, dataset):
        scaler = LabelScaler().fit(dataset.train)
        clone = LabelScaler.from_state(scaler.state())
        assert clone.slew_mean == scaler.slew_mean
        assert clone.delay_std == scaler.delay_std

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            LabelScaler().fit([])


class TestFitPredict:
    def test_learns_better_than_mean(self, fitted, dataset):
        metrics = fitted.evaluate(dataset.test)
        assert metrics.r2_slew > 0.5
        assert metrics.r2_delay > 0.5
        assert metrics.num_paths == sum(s.num_paths for s in dataset.test)

    def test_history_recorded(self, fitted):
        assert fitted.history is not None
        assert len(fitted.history) > 0

    def test_predict_shapes(self, fitted, dataset):
        sample = dataset.test[0]
        slews, delays = fitted.predict_sample(sample)
        assert slews.shape == (sample.num_paths,)
        slews_all, delays_all = fitted.predict(dataset.test[:5])
        expected = sum(s.num_paths for s in dataset.test[:5])
        assert len(slews_all) == expected == len(delays_all)

    def test_predictions_in_physical_range(self, fitted, dataset):
        slews, delays = fitted.predict(dataset.test)
        assert np.all(np.isfinite(slews))
        assert np.all(np.isfinite(delays))
        # Denormalized to ps: same order of magnitude as labels.
        assert slews.mean() > 1.0
        assert delays.mean() > 0.0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            WireTimingEstimator(FAST).predict([])
        with pytest.raises(ValueError):
            WireTimingEstimator(FAST).fit([])

    def test_throughput_positive(self, fitted, dataset):
        assert fitted.throughput(dataset.test[:5]) > 0.0


class TestPersistence:
    def test_save_load_identical_predictions(self, fitted, dataset, tmp_path):
        path = str(tmp_path / "model.npz")
        fitted.save(path)
        clone = WireTimingEstimator(FAST)
        clone.load(path, num_node_features=8, num_path_features=10)
        for sample in dataset.test[:5]:
            a_s, a_d = fitted.predict_sample(sample)
            b_s, b_d = clone.predict_sample(sample)
            np.testing.assert_allclose(a_s, b_s)
            np.testing.assert_allclose(a_d, b_d)

    def test_save_unfitted_raises(self, tmp_path):
        with pytest.raises(RuntimeError):
            WireTimingEstimator(FAST).save(str(tmp_path / "x.npz"))


class TestLearnedWireModel:
    def test_requires_context(self, fitted, dataset):
        from repro.rcnet import chain_net

        model = LearnedWireModel(fitted, dataset.scaler)
        with pytest.raises(ValueError, match="context"):
            model.wire_timing(chain_net(5), 20e-12, np.zeros(1), 100.0)

    def test_wire_timing_in_sta(self, fitted, dataset, library):
        """End-to-end: the learned model drives STA arrival times close to
        golden."""
        from repro.design import (GoldenWireModel, STAEngine,
                                  generate_benchmark)

        netlist = generate_benchmark("WB_DMA", library, scale=1500)
        learned = STAEngine(netlist,
                            LearnedWireModel(fitted, dataset.scaler))
        golden = STAEngine(netlist, GoldenWireModel())
        a = learned.analyze_design().arrivals()
        b = golden.analyze_design().arrivals()
        assert np.corrcoef(a, b)[0, 1] > 0.95
