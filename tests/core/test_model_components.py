"""GNNTrans components: GNN layer (Eq. 1), transformer (Eq. 2-3),
pooling (Eq. 4), heads (Eq. 5-6)."""

import numpy as np
import pytest

from repro.core import (GNNModule, GNNTrans, MultiHeadSelfAttention,
                        TimingHeads, TransformerModule, WeightedSageLayer,
                        normalize_adjacency, path_pooling_matrix, pool_paths)
from repro.core.pooling import sink_selection_matrix
from repro.features import NetContext, build_net_sample
from repro.nn import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(7)


@pytest.fixture
def sample(library, rng):
    from repro.rcnet import random_nontree_net

    net = random_nontree_net(rng, 15, n_sinks=3, n_loops=2, name="s")
    ctx = NetContext(20e-12, library.cell("INV_X2"),
                     [library.cell("BUF_X1")] * net.num_sinks)
    return build_net_sample(net, ctx)


class TestAdjacencyNormalization:
    def test_row_normalized_rows_sum_to_one(self, sample):
        normed = normalize_adjacency(sample.adjacency, "row")
        rows = normed.sum(axis=1)
        np.testing.assert_allclose(rows[rows > 0], 1.0)

    def test_none_is_identity(self, sample):
        np.testing.assert_allclose(
            normalize_adjacency(sample.adjacency, "none"), sample.adjacency)

    def test_unknown_mode(self, sample):
        with pytest.raises(ValueError):
            normalize_adjacency(sample.adjacency, "sym")


class TestWeightedSageLayer:
    def test_output_shape(self, rng, sample):
        layer = WeightedSageLayer(8, 16, rng)
        out = layer(Tensor(sample.node_features),
                    normalize_adjacency(sample.adjacency))
        assert out.shape == (sample.num_nodes, 16)

    def test_edge_weights_matter(self, rng, sample):
        """Same topology, different resistances => different outputs
        (the 1-WL improvement of Eq. 1 over binary GraphSage)."""
        layer = WeightedSageLayer(8, 16, rng, residual=False)
        x = Tensor(sample.node_features)
        a1 = normalize_adjacency(sample.adjacency, "none")
        a2 = a1 * 2.0
        out1 = layer(x, a1).data
        out2 = layer(x, a2).data
        assert not np.allclose(out1, out2)

    def test_residual_only_when_shapes_match(self, rng):
        assert WeightedSageLayer(16, 16, rng).residual
        assert not WeightedSageLayer(8, 16, rng).residual

    def test_gradients_flow(self, rng, sample):
        module = GNNModule(8, 16, 3, rng)
        out = module(Tensor(sample.node_features), sample.adjacency)
        (out * out).sum().backward()
        for p in module.parameters():
            assert p.grad is not None

    def test_layer_count_validated(self, rng):
        with pytest.raises(ValueError):
            GNNModule(8, 16, 0, rng)


class TestTransformer:
    def test_output_shape_preserved(self, rng):
        attn = MultiHeadSelfAttention(16, 4, rng)
        x = Tensor(np.random.default_rng(0).normal(size=(10, 16)))
        assert attn(x).shape == (10, 16)

    def test_heads_must_divide(self, rng):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(16, 3, rng)

    def test_attention_maps_are_distributions(self, rng):
        attn = MultiHeadSelfAttention(16, 4, rng)
        x = Tensor(np.random.default_rng(0).normal(size=(7, 16)))
        for amap in attn.attention_maps(x):
            assert amap.shape == (7, 7)
            np.testing.assert_allclose(amap.sum(axis=1), 1.0)
            assert np.all(amap >= 0.0)

    def test_global_receptive_field(self, rng):
        """Changing one node's features changes every node's output —
        attention sees the whole net regardless of edges (Section III-D)."""
        attn = MultiHeadSelfAttention(16, 4, rng, layer_norm=False)
        base = np.random.default_rng(1).normal(size=(6, 16))
        x1 = attn(Tensor(base)).data
        perturbed = base.copy()
        perturbed[0] += 5.0
        x2 = attn(Tensor(perturbed)).data
        assert np.all(np.abs(x2 - x1).max(axis=1) > 1e-9)

    def test_stack_depth(self, rng):
        module = TransformerModule(16, 3, 4, rng)
        assert module.num_layers == 3
        x = Tensor(np.random.default_rng(0).normal(size=(5, 16)))
        assert module(x).shape == (5, 16)

    def test_zero_layers_is_identity(self, rng):
        module = TransformerModule(16, 0, 4, rng)
        x = Tensor(np.ones((4, 16)))
        np.testing.assert_allclose(module(x).data, x.data)


class TestPooling:
    def test_mean_matrix_rows(self, sample):
        matrix = path_pooling_matrix(sample, "mean")
        assert matrix.shape == (sample.num_paths, sample.num_nodes)
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0)

    def test_sum_matrix_rows(self, sample):
        matrix = path_pooling_matrix(sample, "sum")
        for q, path in enumerate(sample.paths):
            assert matrix[q].sum() == pytest.approx(len(path.node_indices))

    def test_sink_selector(self, sample):
        matrix = sink_selection_matrix(sample)
        for q, path in enumerate(sample.paths):
            assert matrix[q, path.sink] == 1.0
            assert matrix[q].sum() == 1.0

    def test_unknown_mode(self, sample):
        with pytest.raises(ValueError):
            path_pooling_matrix(sample, "max")

    def test_eq4_width(self, rng, sample):
        """Eq. 4: width = hidden + path-feature count when concatenating."""
        nodes = Tensor(np.random.default_rng(0).normal(
            size=(sample.num_nodes, 16)))
        pooled = pool_paths(nodes, sample, include_path_features=True)
        assert pooled.shape == (sample.num_paths, 16 + 10)
        plain = pool_paths(nodes, sample, include_path_features=False)
        assert plain.shape == (sample.num_paths, 16)
        extended = pool_paths(nodes, sample, include_path_features=False,
                              extensive=True)
        assert extended.shape == (sample.num_paths, 48)

    def test_mean_pooling_value(self, sample):
        nodes = Tensor(np.arange(sample.num_nodes, dtype=float
                                 ).reshape(-1, 1))
        pooled = pool_paths(nodes, sample, include_path_features=False)
        for q, path in enumerate(sample.paths):
            assert pooled.data[q, 0] == pytest.approx(
                np.mean(path.node_indices))


class TestHeads:
    def test_output_shapes(self, rng):
        heads = TimingHeads(20, (32,), rng)
        reps = Tensor(np.random.default_rng(0).normal(size=(5, 20)))
        slew, delay = heads(reps)
        assert slew.shape == (5,)
        assert delay.shape == (5,)

    def test_delay_conditioned_on_slew(self, rng):
        """Eq. 6: with conditioning, perturbing only the slew-head weights
        changes the delay output."""
        heads = TimingHeads(8, (16,), rng, condition_delay_on_slew=True)
        reps = Tensor(np.random.default_rng(0).normal(size=(4, 8)))
        _, delay_before = heads(reps)
        heads.slew_mlp.layers[0].weight.data += 0.5
        _, delay_after = heads(reps)
        assert not np.allclose(delay_before.data, delay_after.data)

    def test_independent_heads_decoupled(self, rng):
        heads = TimingHeads(8, (16,), rng, condition_delay_on_slew=False)
        reps = Tensor(np.random.default_rng(0).normal(size=(4, 8)))
        _, delay_before = heads(reps)
        heads.slew_mlp.layers[0].weight.data += 0.5
        _, delay_after = heads(reps)
        np.testing.assert_allclose(delay_before.data, delay_after.data)


class TestFullModel:
    def test_forward_shapes(self, rng, sample):
        model = GNNTrans(8, 10)
        slew, delay = model(sample)
        assert slew.shape == (sample.num_paths,)
        assert delay.shape == (sample.num_paths,)

    def test_predict_is_eval_and_deterministic(self, sample):
        model = GNNTrans(8, 10)
        a_slew, a_delay = model.predict(sample)
        b_slew, b_delay = model.predict(sample)
        np.testing.assert_allclose(a_slew, b_slew)
        np.testing.assert_allclose(a_delay, b_delay)

    def test_all_parameters_receive_gradients(self, sample):
        from repro.core import GNNTransConfig

        model = GNNTrans(8, 10, GNNTransConfig(l1=2, l2=1, hidden=16,
                                               num_heads=2))
        slew, delay = model(sample)
        ((slew * slew).sum() + (delay * delay).sum()).backward()
        missing = [i for i, p in enumerate(model.parameters())
                   if p.grad is None]
        assert not missing

    def test_path_representation_width(self, sample):
        from repro.core import GNNTransConfig

        cfg = GNNTransConfig(l1=2, l2=1, hidden=16, num_heads=2)
        model = GNNTrans(8, 10, cfg)
        reps = model.path_representations(sample)
        assert reps.shape == (sample.num_paths, 16 + 10)


class TestPaperDepthConfigs:
    """The full-depth paper plans (L1+L2 = 30 layers) must run end to end
    (training them is GPU-scale, but forward/backward must be sound)."""

    def test_paper_planb_forward_backward(self, sample):
        from repro.core import GNNTrans, paper_plan

        config = paper_plan("PlanB")
        assert (config.l1, config.l2) == (20, 10)
        model = GNNTrans(8, 10, config)
        slew, delay = model(sample)
        ((slew * slew).sum() + (delay * delay).sum()).backward()
        grads = [p.grad is not None for p in model.parameters()]
        assert all(grads)
        # Deep stack must not explode or vanish to NaN.
        import numpy as np
        assert np.all(np.isfinite(slew.data))
        assert np.all(np.isfinite(delay.data))

    def test_all_paper_plans_construct(self):
        from repro.core import GNNTrans, paper_plan

        for plan in ("PlanA", "PlanB", "PlanC"):
            config = paper_plan(plan)
            assert config.total_layers == 30
            model = GNNTrans(8, 10, config)
            assert model.gnn.num_layers == config.l1
            assert model.transformer.num_layers == config.l2
