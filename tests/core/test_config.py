"""GNNTrans configurations (PlanA/B/C of Table V)."""

import pytest

from repro.core import (DEFAULT_CONFIG, GNNTransConfig, PLAN_A, PLAN_B,
                        PLAN_C, PLANS, paper_plan)


class TestPlans:
    def test_scaled_depth_ratios(self):
        """CPU-scaled plans keep the paper's 30-layer budget ratio 5:1."""
        assert (PLAN_A.l1, PLAN_A.l2) == (5, 1)
        assert (PLAN_B.l1, PLAN_B.l2) == (4, 2)
        assert (PLAN_C.l1, PLAN_C.l2) == (3, 3)
        assert PLAN_A.total_layers == PLAN_B.total_layers == PLAN_C.total_layers

    def test_default_is_plan_b(self):
        assert DEFAULT_CONFIG is PLAN_B

    def test_paper_plans_full_depth(self):
        assert (paper_plan("PlanA").l1, paper_plan("PlanA").l2) == (25, 5)
        assert (paper_plan("PlanB").l1, paper_plan("PlanB").l2) == (20, 10)
        assert (paper_plan("PlanC").l1, paper_plan("PlanC").l2) == (15, 15)

    def test_paper_plan_unknown(self):
        with pytest.raises(KeyError):
            paper_plan("PlanD")

    def test_plans_registry(self):
        assert set(PLANS) == {"PlanA", "PlanB", "PlanC"}


class TestValidation:
    def test_l1_positive(self):
        with pytest.raises(ValueError):
            GNNTransConfig(l1=0)

    def test_l2_nonnegative(self):
        with pytest.raises(ValueError):
            GNNTransConfig(l2=-1)

    def test_hidden_divisible_by_heads(self):
        with pytest.raises(ValueError):
            GNNTransConfig(hidden=30, num_heads=4)

    def test_frozen(self):
        with pytest.raises(Exception):
            PLAN_B.l1 = 99
