"""Motivation bench (Section I) — the accuracy/efficiency tradeoff of
classical wire engines.

The paper's premise: "the accuracy and efficiency of wire timing
calculation for complex RC nets are extremely hard to tradeoff".  This
bench quantifies it on our substrate: Elmore is fast but pessimistic, D2M
is fast but approximate, the golden transient engine is exact but slow —
and the learned estimator gets near-golden accuracy at analytic-engine
speed (which is the whole point of the paper).
"""

import time

import numpy as np

from conftest import BENCH_SCALE, emit
from repro.analysis import GoldenTimer, d2m_delays, elmore_delays
from repro.bench import format_table
from repro.design import generate_benchmark
from repro.nn import r2_score


def test_engine_accuracy_speed_tradeoff(benchmark, library, capsys):
    netlist = generate_benchmark("LDPC", library, scale=BENCH_SCALE)
    jobs = []
    for net in netlist.nets.values():
        drive = netlist.gates[net.driver].cell
        jobs.append((net.rcnet, netlist.sink_loads(net),
                     drive.drive_resistance))

    golden = []
    start = time.perf_counter()
    timers = {}
    for rcnet, loads, rdrv in jobs:
        timer = timers.setdefault(rdrv, GoldenTimer(drive_resistance=rdrv))
        golden.extend(timer.analyze(rcnet, 20e-12, loads).delays())
    golden_seconds = time.perf_counter() - start
    golden = np.array(golden)

    elmore = []
    start = time.perf_counter()
    for rcnet, loads, _ in jobs:
        elmore.extend(elmore_delays(rcnet, sink_loads=loads)[list(rcnet.sinks)])
    elmore_seconds = time.perf_counter() - start
    elmore = np.array(elmore)

    d2m = []
    start = time.perf_counter()
    for rcnet, loads, _ in jobs:
        d2m.extend(d2m_delays(rcnet, sink_loads=loads)[list(rcnet.sinks)])
    d2m_seconds = time.perf_counter() - start
    d2m = np.array(d2m)

    rows = [
        ["Golden transient", "1.000", "0.00", f"{golden_seconds:.3f}"],
        ["Elmore", f"{r2_score(golden, elmore):.3f}",
         f"{np.max(np.abs(elmore - golden)) / 1e-12:.2f}",
         f"{elmore_seconds:.3f}"],
        ["D2M", f"{r2_score(golden, d2m):.3f}",
         f"{np.max(np.abs(d2m - golden)) / 1e-12:.2f}",
         f"{d2m_seconds:.3f}"],
    ]
    emit(capsys, format_table(
        ["Engine", "delay R2 vs golden", "maxerr (ps)", "runtime (s)"],
        rows,
        title=f"Wire engine accuracy/efficiency tradeoff "
              f"({len(golden)} wire paths, design LDPC)"))

    # Analytic engines are at least several times faster...
    assert elmore_seconds * 5 < golden_seconds
    # ...but neither is exact against sign-off SI timing: worst-case
    # per-path error stays well above the sub-ps regime GNNTrans reaches
    # (Table V: PlanB max error 1.93 ps).
    assert r2_score(golden, elmore) < 0.9995
    assert np.max(np.abs(elmore - golden)) > 0.5e-12
    assert np.max(np.abs(d2m - golden)) > 0.5e-12

    rcnet, loads, _ = jobs[0]
    benchmark(elmore_delays, rcnet, sink_loads=loads)
