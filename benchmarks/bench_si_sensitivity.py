"""Extension experiment — crosstalk sensitivity of the estimators.

The paper's golden data comes from PrimeTime *SI* mode, and GNNTrans's
pitch is that graph learning captures global relationships — including
where aggressors couple — that per-path features cannot.  This bench
quantifies that: datasets are generated with and without aggressor
injection and both GNNTrans and DAC20 are retrained on each.  Expected
shape: GNNTrans keeps a clear delay-accuracy margin over the feature-only
baseline in *both* regimes — the SI push-out depends on coupling location
relative to each sink, which the GNN sees through node features and
attention while the loop-broken manual features only see totals.
(Empirically the margin is similar in the two regimes: the quiet labels
already contain loop structure only the graph can resolve.)
"""

import numpy as np

from conftest import BENCH_EPOCHS, BENCH_SCALE, emit
from repro.baselines import DAC20Estimator
from repro.bench import format_table
from repro.core import PLAN_B, WireTimingEstimator
from repro.data import generate_dataset, train_val_split

TRAIN = ["PCI_BRIDGE", "DMA", "B19"]
TEST = ["WB_DMA"]


def _run_at(si_mode):
    dataset = generate_dataset(train_names=TRAIN, test_names=TEST,
                               scale=BENCH_SCALE, nets_per_design=50,
                               si_mode=si_mode)
    train, val = train_val_split(dataset.train, 0.1, seed=0)
    gnn = WireTimingEstimator(PLAN_B)
    gnn.fit(train, val_samples=val, epochs=BENCH_EPOCHS)
    dac = DAC20Estimator(feature_scaler=dataset.scaler).fit(dataset.train)
    return (gnn.evaluate(dataset.test).r2_delay,
            dac.evaluate(dataset.test).r2_delay)


def test_si_widens_the_learning_gap(benchmark, capsys):
    quiet_gnn, quiet_dac = _run_at(si_mode=False)
    noisy_gnn, noisy_dac = _run_at(si_mode=True)

    rows = [
        ["quiet (no aggressors)", f"{quiet_gnn:.3f}", f"{quiet_dac:.3f}",
         f"{quiet_gnn - quiet_dac:+.3f}"],
        ["SI (aggressor injection)", f"{noisy_gnn:.3f}", f"{noisy_dac:.3f}",
         f"{noisy_gnn - noisy_dac:+.3f}"],
    ]
    emit(capsys, format_table(
        ["Golden labels", "GNNTrans delay R2", "DAC20 delay R2", "gap"],
        rows, title="Extension: crosstalk sensitivity (test design WB_DMA)"))

    # Both models stay usable in both regimes...
    assert min(quiet_gnn, noisy_gnn) > 0.8
    # ...and GNNTrans keeps the advantage once crosstalk is in the labels.
    assert noisy_gnn > noisy_dac

    # Benchmark the underlying golden labeling cost (one design's worth).
    from repro.data import design_net_samples
    from repro.design import generate_benchmark

    netlist = generate_benchmark("PCI_BRIDGE", None, BENCH_SCALE)
    benchmark.pedantic(design_net_samples, args=(netlist,),
                       kwargs={"max_nets": 10}, rounds=3, iterations=1)
