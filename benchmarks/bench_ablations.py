"""Ablations of the GNNTrans design choices called out in DESIGN.md.

Each variant removes exactly one mechanism:

* ``no path features``  — Eq. 4 without the engineered path-feature concat
  (the pathway the paper credits for "considering path features directly");
* ``no slew conditioning`` — independent delay head instead of Eq. 6;
* ``GNN only``          — L2 = 0, no global attention (over-smoothing-free
  but near-sighted);
* ``plain aggregation`` — binary mean aggregation instead of the
  resistance-weighted Eq. 1 (GraphSage-style);
* ``mean-only baseline pooling`` — quantifies how much of the baselines'
  accuracy comes from the mean ‖ sum ‖ sink pooling deviation documented
  in DESIGN.md.
"""

from dataclasses import replace

import numpy as np
import pytest

from conftest import BENCH_CONFIG, BENCH_EPOCHS, emit
from repro.baselines import GraphSageBackbone
from repro.baselines.common import GraphBaseline, baseline_node_inputs
from repro.bench import format_table
from repro.core import GNNTransConfig, WireTimingEstimator
from repro.core.heads import TimingHeads
from repro.core.pooling import pool_paths
from repro.data import train_val_split
from repro.nn import Tensor
from repro.nn.layers import Module


class MeanOnlyBaseline(Module):
    """GraphSage baseline with the paper-literal mean-only path pooling."""

    def __init__(self, num_node_features, num_path_features, config, rng):
        super().__init__()
        from repro.baselines.common import NUM_GLOBAL_FEATURES

        self.backbone = GraphSageBackbone(
            num_node_features + NUM_GLOBAL_FEATURES, config.hidden, 4, rng)
        self.heads = TimingHeads(config.hidden, config.head_hidden, rng,
                                 condition_delay_on_slew=False)

    def forward(self, sample):
        x = Tensor(baseline_node_inputs(sample))
        nodes = self.backbone(x, sample.adjacency)
        reps = pool_paths(nodes, sample, include_path_features=False,
                          extensive=False)
        return self.heads(reps)


def _fit(dataset, config=None, factory=None, epochs=None):
    estimator = WireTimingEstimator(config or BENCH_CONFIG,
                                    model_factory=factory)
    train, val = train_val_split(dataset.train, 0.1, seed=0)
    estimator.fit(train, val_samples=val,
                  epochs=epochs or BENCH_EPOCHS)
    return estimator


def test_ablations(benchmark, dataset, trained_models, capsys):
    full_metrics = trained_models["GNNTrans"].evaluate(dataset.test)

    variants = {
        "full GNNTrans": full_metrics,
        "no path features": _fit(
            dataset, replace(BENCH_CONFIG, include_path_features=False)
        ).evaluate(dataset.test),
        "no slew conditioning": _fit(
            dataset, replace(BENCH_CONFIG, condition_delay_on_slew=False)
        ).evaluate(dataset.test),
        "absolute slew head (Eq.5 literal)": _fit(
            dataset, replace(BENCH_CONFIG, slew_parameterization="absolute")
        ).evaluate(dataset.test),
        "GNN only (L2=0)": _fit(
            dataset, replace(BENCH_CONFIG, l1=BENCH_CONFIG.total_layers, l2=0)
        ).evaluate(dataset.test),
        "no residual/LN": _fit(
            dataset, replace(BENCH_CONFIG, residual=False, layer_norm=False)
        ).evaluate(dataset.test),
        "mean-only baseline pooling": _fit(
            dataset, factory=lambda nn_, np_, cfg, rng: MeanOnlyBaseline(
                nn_, np_, cfg, rng)
        ).evaluate(dataset.test),
    }

    rows = [[name, m.r2_slew, m.r2_delay, f"{m.max_err_delay_ps:.2f}"]
            for name, m in variants.items()]
    emit(capsys, format_table(
        ["Variant", "slew R2", "delay R2", "delay maxerr (ps)"], rows,
        title="Ablations (test split, all nets)"))

    # The engineered path-feature pathway is the paper's key ingredient:
    # removing it must cost delay accuracy.
    assert variants["full GNNTrans"].r2_delay > \
        variants["no path features"].r2_delay
    # Mean-only pooling caps what a pooled baseline can express.
    assert variants["full GNNTrans"].r2_delay > \
        variants["mean-only baseline pooling"].r2_delay

    benchmark(trained_models["GNNTrans"].evaluate, dataset.test[:10])
