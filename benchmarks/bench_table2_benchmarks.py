"""Table II — benchmark statistics of the (scaled) design suite.

Regenerates every named design and reports the same columns as the paper:
cells, nets (non-tree), FFs, and timing paths, plus the published
non-tree fraction next to the generated one.
"""

from conftest import BENCH_SCALE, emit
from repro.bench import format_table
from repro.design import (PAPER_BENCHMARKS, TEST_BENCHMARKS,
                          TRAIN_BENCHMARKS, generate_benchmark)


def test_table2_benchmark_statistics(benchmark, library, capsys):
    rows = []
    totals = {"train": [0] * 4, "test": [0] * 4}
    for name in TRAIN_BENCHMARKS + TEST_BENCHMARKS:
        design = generate_benchmark(name, library, scale=BENCH_SCALE)
        stats = design.statistics()
        paper = PAPER_BENCHMARKS[name]
        rows.append([
            paper.split, name, stats["cells"],
            f"{stats['nets']} ({stats['nontree_nets']})",
            stats["ffs"], stats["paths"],
            f"{stats['nontree_nets'] / stats['nets']:.2f}"
            f" vs {paper.nontree_frac:.2f}",
        ])
        bucket = totals[paper.split]
        bucket[0] += stats["cells"]
        bucket[1] += stats["nets"]
        bucket[2] += stats["ffs"]
        bucket[3] += stats["paths"]
        # The generated non-tree fraction must track the published one.
        assert abs(stats["nontree_nets"] / stats["nets"]
                   - paper.nontree_frac) < 0.2

    for split in ("train", "test"):
        c, n, f, p = totals[split]
        rows.append([split, "Total", c, str(n), f, p, ""])

    emit(capsys, format_table(
        ["Split", "Benchmark", "#Cells", "#Nets (Non-tree)", "#FFs", "#CPs",
         "non-tree frac (ours vs paper)"],
        rows,
        title=f"Table II (scaled 1/{BENCH_SCALE}): benchmark statistics"))

    benchmark(generate_benchmark, "WB_DMA", library, BENCH_SCALE)
