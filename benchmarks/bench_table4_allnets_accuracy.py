"""Table IV — wire slew/delay estimation accuracy on ALL nets.

Same trained models as Table III, evaluated on the full test split
(tree-like + non-tree nets).  Expected shape: every model improves versus
its Table III number, GNNTrans stays first (paper avg 0.990/0.986).
"""

from conftest import emit
from repro.bench import accuracy_table, format_table


def test_table4_allnets_accuracy(benchmark, dataset, trained_models, capsys):
    table = accuracy_table(dataset, trained_models, subset="all")
    emit(capsys, format_table(
        table.headers(), table.rows(),
        title="Table IV: wire slew/delay R^2 on ALL nets "
              "(paper avg: DAC20 0.803/0.770 ... GNNTrans 0.990/0.986)"))

    averages = {m: table.average(m) for m in trained_models}
    for model, (slew, delay) in averages.items():
        if model != "GNNTrans":
            assert averages["GNNTrans"][1] >= delay
    # Headline accuracy: GNNTrans delay R^2 stays high on unseen designs.
    assert averages["GNNTrans"][1] > 0.9
    assert averages["GNNTrans"][0] > 0.9

    benchmark(trained_models["GNNTrans"].evaluate, dataset.test)


def test_table4_all_nets_easier_than_nontree(benchmark, dataset,
                                             trained_models, capsys):
    """Tree-like nets are easier: every model's delay accuracy on all nets
    is at least its non-tree accuracy (paper: compare Tables III and IV)."""
    nontree_table = accuracy_table(dataset, trained_models, subset="nontree")
    all_table = accuracy_table(dataset, trained_models, subset="all")
    rows = []
    for model in trained_models:
        nt = nontree_table.average(model)[1]
        al = all_table.average(model)[1]
        rows.append([model, f"{nt:.3f}", f"{al:.3f}", f"{al - nt:+.3f}"])
    emit(capsys, format_table(
        ["Model", "non-tree delay R2", "all-nets delay R2", "gain"],
        rows, title="Tables III vs IV: tree-like nets are easier"))
    gains = [float(r[3]) for r in rows]
    assert sum(g > -0.02 for g in gains) >= len(gains) - 1
    benchmark(trained_models["DAC20"].evaluate, dataset.test[:10])
