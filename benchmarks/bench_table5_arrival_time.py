"""Table V — path arrival-time accuracy and runtime, PlanA/B/C vs DAC20.

Protocol (Section III-A / IV-B of the paper): the circuit path arrival
time is "the cumulative addition of our estimated wire delay and cell
delay from the timing library", with cell delays evaluated at the
sign-off operating points — so wire-delay error is what accumulates.
That is ``STAEngine(..., slew_model=GoldenWireModel())`` here.  A second
table reports the harder fully self-consistent mode where the learned
slews also propagate through every gate lookup.

Expected shape: every GNNTrans plan has far lower max error than DAC20
(paper: 1.7-3.5 ps vs 74.6 ps) and the learned wire engine is much faster
than the golden one.
"""

from dataclasses import replace

import numpy as np
import pytest

from conftest import (BENCH_CONFIG, BENCH_EPOCHS, BENCH_SCALE, BENCH_TEST,
                      emit)
from repro.baselines import DAC20WireModel
from repro.bench import format_table, train_model
from repro.core import (PLAN_A, PLAN_B, PLAN_C, LearnedWireModel,
                        WireTimingEstimator)
from repro.data import train_val_split
from repro.design import GoldenWireModel, STAEngine, generate_benchmark
from repro.nn import max_abs_error, r2_score

_PS = 1e-12
PLAN_CONFIGS = {"PlanA": PLAN_A, "PlanB": PLAN_B, "PlanC": PLAN_C}


@pytest.fixture(scope="module")
def plan_models(dataset):
    """GNNTrans trained under each of the paper's three plans."""
    models = {}
    train, val = train_val_split(dataset.train, 0.1, seed=0)
    for plan, config in PLAN_CONFIGS.items():
        estimator = WireTimingEstimator(
            replace(config, epochs=BENCH_EPOCHS))
        estimator.fit(train, val_samples=val, epochs=BENCH_EPOCHS)
        models[plan] = estimator
    return models


@pytest.fixture(scope="module")
def dac20_model(dataset):
    # Trained directly (not via the six-model session fixture) so this
    # bench can run standalone without training the graph baselines.
    return DAC20WireModel(train_model("DAC20", dataset), dataset.scaler)


def test_table5_arrival_time_accuracy(benchmark, dataset, plan_models,
                                      dac20_model, library, capsys):
    rows = []
    summaries = {name: {"r2": [], "mae": []}
                 for name in ["DAC20"] + list(PLAN_CONFIGS)}
    selfcon_rows = []
    runtime_rows = []
    for design_name in BENCH_TEST:
        netlist = generate_benchmark(design_name, library, scale=BENCH_SCALE)
        golden_model = GoldenWireModel()
        golden_report = STAEngine(netlist, golden_model).analyze_design()
        golden = golden_report.arrivals()

        cells = {}
        wire_seconds = {}
        report = STAEngine(netlist, dac20_model,
                           slew_model=golden_model).analyze_design()
        arrivals = report.arrivals()
        cells["DAC20"] = (r2_score(golden, arrivals),
                          max_abs_error(golden, arrivals) / _PS)
        wire_seconds["DAC20"] = report.wire_seconds

        gate_seconds = None
        for plan, estimator in plan_models.items():
            model = LearnedWireModel(estimator, dataset.scaler)
            report = STAEngine(netlist, model,
                               slew_model=golden_model).analyze_design()
            arrivals = report.arrivals()
            cells[plan] = (r2_score(golden, arrivals),
                           max_abs_error(golden, arrivals) / _PS)

        # Self-consistent mode (learned slews propagate) for PlanB, and
        # the runtime split measured without any golden assistance.
        model_b = LearnedWireModel(plan_models["PlanB"], dataset.scaler)
        report = STAEngine(netlist, model_b).analyze_design()
        arrivals = report.arrivals()
        selfcon_rows.append([design_name,
                             f"{r2_score(golden, arrivals):.3f}",
                             f"{max_abs_error(golden, arrivals) / _PS:.2f}"])
        wire_seconds["PlanB"] = report.wire_seconds
        gate_seconds = report.gate_seconds

        row = [design_name]
        for name in ["DAC20", "PlanA", "PlanB", "PlanC"]:
            r2, mae = cells[name]
            row.append(f"{r2:.3f}/{mae:.2f}")
            summaries[name]["r2"].append(r2)
            summaries[name]["mae"].append(mae)
        rows.append(row)

        runtime_rows.append([
            design_name, len(netlist.paths),
            f"{golden_report.total_seconds:.2f}",
            f"{gate_seconds:.2f}",
            f"{wire_seconds['PlanB']:.2f}",
            f"{gate_seconds + wire_seconds['PlanB']:.2f}",
        ])

    avg_row = ["Average"]
    for name in ["DAC20", "PlanA", "PlanB", "PlanC"]:
        avg_row.append(f"{np.mean(summaries[name]['r2']):.3f}/"
                       f"{np.mean(summaries[name]['mae']):.2f}")
    rows.append(avg_row)

    emit(capsys, format_table(
        ["Benchmark", "DAC20 R2/MAE(ps)", "PlanA", "PlanB", "PlanC"],
        rows,
        title="Table V (accuracy): path arrival time vs golden STA "
              "(paper avg: DAC20 0.648/74.6ps, PlanB 0.985/1.9ps)"))
    emit(capsys, format_table(
        ["Benchmark", "#Paths", "Full STA-SI(s)", "Gate(s)",
         "Wire(s, PlanB)", "Total(s)"],
        runtime_rows,
        title="Table V (runtime): STA runtime split"))
    emit(capsys, format_table(
        ["Benchmark", "R2", "MAE(ps)"], selfcon_rows,
        title="Extension: fully self-consistent propagation "
              "(learned slews drive every gate lookup)"))

    # Shape assertions: every plan beats DAC20 on max error and R^2.
    dac_mae = np.mean(summaries["DAC20"]["mae"])
    for plan in PLAN_CONFIGS:
        assert np.mean(summaries[plan]["mae"]) < dac_mae
        assert np.mean(summaries[plan]["r2"]) > np.mean(
            summaries["DAC20"]["r2"])
    # Headline: GNNTrans max arrival error stays in the few-ps regime.
    assert np.mean(summaries["PlanB"]["mae"]) < 10.0

    netlist = generate_benchmark(BENCH_TEST[0], library, scale=BENCH_SCALE)
    engine = STAEngine(netlist,
                       LearnedWireModel(plan_models["PlanB"], dataset.scaler))
    benchmark(engine.analyze_design)
