"""Fig. 2 — path-count asymmetry between netlists and wires.

(a) The number of gate-level paths explodes (exponentially) with gate
count; (b) the number of wire paths per net stays tiny (tens at most).
This asymmetry is the paper's motivation for doing graph learning at the
wire level.
"""

import numpy as np

from conftest import BENCH_SCALE, emit
from repro.bench import format_table
from repro.design import (DesignSpec, count_netlist_paths, generate_design,
                          generate_benchmark, max_wire_paths,
                          wire_path_histogram)


def test_fig2a_netlist_paths_grow_superlinearly(benchmark, library, capsys):
    """Regenerates Fig. 2(a): #netlist paths vs #gates."""
    sizes = [30, 60, 120, 240, 480]
    rows = []
    designs = []
    for n in sizes:
        spec = DesignSpec(f"fig2a_{n}", n_combinational=n,
                          n_ffs=max(6, n // 12), n_paths=5,
                          levels=max(4, n // 12), input_locality=0.9,
                          seed=n)
        design = generate_design(spec, library)
        designs.append(design)
        rows.append([design.num_cells, count_netlist_paths(design)])

    benchmark(count_netlist_paths, designs[-1])

    emit(capsys, format_table(
        ["#Gates", "#Netlist paths (exact)"], rows,
        title="Fig. 2(a): netlist path count vs gate count "
              "(paper: >1M paths at 10K gates)"))

    counts = [r[1] for r in rows]
    # Exponential blow-up: the paper reports >1M paths at 10K gates; deep
    # reconvergent designs cross 1M long before that.
    assert counts[-1] > 1_000_000
    assert counts[-1] / rows[-1][0] > 100 * counts[0] / rows[0][0]
    assert all(a < b for a, b in zip(counts, counts[1:]))


def test_fig2b_wire_paths_stay_small(benchmark, library, capsys):
    """Regenerates Fig. 2(b): histogram of wire paths per net."""
    design = generate_benchmark("TV_CORE", library, scale=BENCH_SCALE)
    histogram = benchmark(wire_path_histogram, design)

    rows = [[k, v] for k, v in sorted(histogram.items())]
    emit(capsys, format_table(
        ["#Wire paths in net", "#Nets"], rows,
        title=f"Fig. 2(b): wire paths per net ({design.name}, "
              f"{design.num_nets} nets; paper max = 49)"))

    # The paper's observation: the per-net path count maxes out in the
    # tens, nowhere near the millions of netlist paths.
    assert max_wire_paths(design) < 64
    total_nets = sum(histogram.values())
    small = sum(v for k, v in histogram.items() if k <= 30)
    assert small / total_nets > 0.9
