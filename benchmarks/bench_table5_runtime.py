"""Section IV-C / Table V runtime claim — wire-timing throughput.

The paper reports 55.7 s average wire-timing runtime per design and 97.6 s
for the 200K-net OPENGFX — roughly 2K nets/s on their server.  This bench
measures our estimator's inference throughput (with and without feature
extraction) against the golden transient engine and the analytic Elmore
engine, and extrapolates to the paper's 200K-net design size.
"""

import time

import numpy as np

from conftest import emit
from repro.analysis import GoldenTimer, elmore_delays
from repro.bench import format_table
from repro.design import generate_benchmark
from repro.features import build_net_sample


def test_wire_timing_throughput(benchmark, dataset, trained_models, capsys):
    estimator = trained_models["GNNTrans"]
    samples = dataset.test
    n = len(samples)

    start = time.perf_counter()
    for sample in samples:
        estimator.predict_sample(sample)
    model_rate = n / (time.perf_counter() - start)

    benchmark(estimator.predict_sample, samples[0])

    emit(capsys, format_table(
        ["Engine", "nets/s", "time for 200K nets (s)"],
        [["GNNTrans inference (features prebuilt)", f"{model_rate:.0f}",
          f"{200_000 / model_rate:.0f}"]],
        title="Section IV-C: wire-timing inference throughput "
              "(paper: 200K nets in 97.6 s)"))
    assert model_rate > 50.0


def test_model_faster_than_golden_engine(benchmark, dataset, trained_models,
                                         library, capsys):
    """The reason the estimator exists: it must outrun the sign-off engine
    by a wide margin at matched workload (same nets, same contexts)."""
    netlist = generate_benchmark("WB_DMA", library, scale=1500)
    nets = [(net.rcnet, netlist.sink_loads(net),
             netlist.gates[net.driver].cell)
            for net in list(netlist.nets.values())]

    timer_cache = {}
    start = time.perf_counter()
    for rcnet, loads, drive in nets:
        timer = timer_cache.setdefault(
            drive.drive_resistance,
            GoldenTimer(drive_resistance=drive.drive_resistance))
        timer.analyze(rcnet, 20e-12, loads)
    golden_rate = len(nets) / (time.perf_counter() - start)

    estimator = trained_models["GNNTrans"]
    samples = dataset.test[:len(nets)]
    start = time.perf_counter()
    for sample in samples:
        estimator.predict_sample(sample)
    model_rate = len(samples) / (time.perf_counter() - start)

    start = time.perf_counter()
    for rcnet, loads, _ in nets:
        elmore_delays(rcnet, sink_loads=loads)
    elmore_rate = len(nets) / (time.perf_counter() - start)

    emit(capsys, format_table(
        ["Engine", "nets/s"],
        [["Golden transient (PrimeTime-SI substitute)", f"{golden_rate:.0f}"],
         ["Elmore analytic", f"{elmore_rate:.0f}"],
         ["GNNTrans inference", f"{model_rate:.0f}"]],
        title="Wire engines at matched workload"))

    assert model_rate > golden_rate

    rcnet, loads, drive = nets[0]
    timer = GoldenTimer(drive_resistance=drive.drive_resistance)
    benchmark(timer.analyze, rcnet, 20e-12, loads)
