"""Table III — wire slew/delay estimation accuracy on NON-TREE nets.

Trains all six models (DAC20, GCNII, GraphSage, GAT, graph Transformer,
GNNTrans) on the training designs and reports per-test-design R^2 for the
non-tree subset, in the paper's slew/delay cell format.

Expected shape (paper Table III): GNNTrans clearly first on delay, the
graph baselines in the middle, DAC20 last (loop-breaking induced error).
"""

import numpy as np

from conftest import emit
from repro.bench import MODEL_ORDER, accuracy_table, format_table
from repro.data import nontree_only


def test_table3_nontree_accuracy(benchmark, dataset, trained_models, capsys):
    table = accuracy_table(dataset, trained_models, subset="nontree")
    emit(capsys, format_table(
        table.headers(), table.rows(),
        title="Table III: wire slew/delay R^2 on NON-TREE nets "
              "(paper avg: DAC20 0.666/0.639 ... GNNTrans 0.978/0.970)"))

    averages = {m: table.average(m) for m in trained_models}
    # GNNTrans wins on delay against every baseline.
    for model, (slew, delay) in averages.items():
        if model != "GNNTrans":
            assert averages["GNNTrans"][1] > delay, (
                f"GNNTrans delay R^2 must beat {model}")
    # On slew, GNNTrans is at or near the top (our golden slew is driven
    # almost entirely by the input transition, so every model with the
    # slew feature scores high; see EXPERIMENTS.md).
    assert averages["GNNTrans"][0] >= max(
        v[0] for v in averages.values()) - 0.1
    # DAC20's loop-broken delay falls below GNNTrans by a wide margin.
    assert averages["GNNTrans"][1] - averages["DAC20"][1] > 0.1

    nontree = nontree_only(dataset.test)
    benchmark(trained_models["GNNTrans"].evaluate, nontree)


def test_table3_dac20_degrades_on_nontree(benchmark, dataset, trained_models,
                                          capsys):
    """The loop-breaking penalty: DAC20 loses more accuracy than GNNTrans
    when moving from all nets to the non-tree subset."""
    dac = trained_models["DAC20"]
    gnn = trained_models["GNNTrans"]
    nontree = nontree_only(dataset.test)

    dac_drop = (dac.evaluate(dataset.test).r2_delay
                - dac.evaluate(nontree).r2_delay)
    gnn_drop = (gnn.evaluate(dataset.test).r2_delay
                - gnn.evaluate(nontree).r2_delay)
    emit(capsys, f"Delay R^2 drop (all -> non-tree): "
                 f"DAC20 {dac_drop:+.3f}, GNNTrans {gnn_drop:+.3f}")
    assert dac_drop > gnn_drop
    benchmark(dac.evaluate, nontree)
