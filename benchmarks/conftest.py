"""Shared fixtures for the benchmark suite.

Every bench regenerates one table or figure of the paper.  Sizes default to
a CPU-friendly miniature of the full experiment; set ``REPRO_BENCH_FULL=1``
for the complete Table II suite (all 11 train + 7 test designs, more nets,
longer training), or override individual knobs:

``REPRO_BENCH_SCALE``  design down-scale factor        (default 1200)
``REPRO_BENCH_NETS``   sampled nets per design          (default 40)
``REPRO_BENCH_EPOCHS`` training epochs per model        (default 40)
"""

import os
from dataclasses import replace

import pytest

from repro.bench import MODEL_ORDER, train_all_models
from repro.core import PLAN_B
from repro.data import generate_dataset
from repro.design import TEST_BENCHMARKS, TRAIN_BENCHMARKS


def _env_int(name, default):
    return int(os.environ.get(name, default))


FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

if FULL:
    BENCH_SCALE = _env_int("REPRO_BENCH_SCALE", 800)
    BENCH_NETS = _env_int("REPRO_BENCH_NETS", 60)
    BENCH_EPOCHS = _env_int("REPRO_BENCH_EPOCHS", 80)
    BENCH_TRAIN = list(TRAIN_BENCHMARKS)
    BENCH_TEST = list(TEST_BENCHMARKS)
else:
    BENCH_SCALE = _env_int("REPRO_BENCH_SCALE", 800)
    BENCH_NETS = _env_int("REPRO_BENCH_NETS", 60)
    BENCH_EPOCHS = _env_int("REPRO_BENCH_EPOCHS", 80)
    BENCH_TRAIN = ["PCI_BRIDGE", "DMA", "B19", "SALSA", "VGA_LCD", "ECG"]
    BENCH_TEST = ["WB_DMA", "LDPC", "DES_PERT"]

BENCH_CONFIG = replace(PLAN_B, epochs=BENCH_EPOCHS)


@pytest.fixture(scope="session")
def dataset():
    """The shared train/test dataset for all accuracy benches."""
    return generate_dataset(train_names=BENCH_TRAIN, test_names=BENCH_TEST,
                            scale=BENCH_SCALE, nets_per_design=BENCH_NETS)


@pytest.fixture(scope="session")
def trained_models(dataset):
    """All six estimators of Tables III/IV, trained once per session."""
    return train_all_models(dataset, BENCH_CONFIG, include=MODEL_ORDER,
                            epochs=BENCH_EPOCHS)


@pytest.fixture(scope="session")
def library():
    from repro.liberty import make_default_library

    return make_default_library()


def emit(capsys, text):
    """Print a results table to the live terminal despite capture."""
    with capsys.disabled():
        print()
        print(text)
